"""Reproduction of "Reliable Interdomain Routing Through Multiple
Complementary Routing Processes" (Liao, Gao, Guérin, Zhang — ACM
ReArch'08 / CoNEXT 2008 workshop).

The package implements the STAMP protocol and everything it is
evaluated against: an AS-level BGP simulator with Gao-Rexford policies,
the R-BGP baseline (with and without RCI), Internet-like topology
generation, Gao's relationship-inference algorithm, data-plane walk
analysis, and the full experiment harness regenerating the paper's
figures.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.types import ASN, ASPath, Color, EventType, Outcome, Relationship
from repro.topology import (
    ASGraph,
    InternetTopologyConfig,
    generate_internet_topology,
    example_paper_topology,
)
from repro.routing import compute_stable_routes
from repro.bgp import BGPNetwork, NetworkConfig
from repro.rbgp import RBGPNetwork
from repro.stamp import STAMPConfig, STAMPNetwork
from repro.analysis import (
    analyze_transient_problems,
    phi_distribution,
    phi_for_destination,
)
from repro.experiments import (
    ExperimentConfig,
    Scenario,
    run_scenario,
    fig1_phi_cdf,
    fig2_single_link_failure,
    fig3a_two_links_distinct_as,
    fig3b_two_links_same_as,
)

__version__ = "1.0.0"

__all__ = [
    "ASN",
    "ASPath",
    "Color",
    "EventType",
    "Outcome",
    "Relationship",
    "ASGraph",
    "InternetTopologyConfig",
    "generate_internet_topology",
    "example_paper_topology",
    "compute_stable_routes",
    "BGPNetwork",
    "NetworkConfig",
    "RBGPNetwork",
    "STAMPConfig",
    "STAMPNetwork",
    "analyze_transient_problems",
    "phi_distribution",
    "phi_for_destination",
    "ExperimentConfig",
    "Scenario",
    "run_scenario",
    "fig1_phi_cdf",
    "fig2_single_link_failure",
    "fig3a_two_links_distinct_as",
    "fig3b_two_links_same_as",
    "__version__",
]
