"""Static (converged-state) routing computations.

The event-driven simulators in :mod:`repro.bgp`, :mod:`repro.rbgp` and
:mod:`repro.stamp` replay protocol dynamics; this package computes the
*stable* Gao-Rexford solution directly, which is what BGP provably
converges to under prefer-customer / valley-free policies.  It is used
to synthesize RouteViews-style tables, to seed analyses, and as an
oracle the dynamic simulators are cross-validated against.
"""

from repro.routing.static import (
    RouteClass,
    StableRoute,
    StableRoutingState,
    compute_stable_routes,
)

__all__ = [
    "RouteClass",
    "StableRoute",
    "StableRoutingState",
    "compute_stable_routes",
]
