"""Direct computation of the stable Gao-Rexford routing solution.

Under the two common policies the paper assumes — *prefer-customer*
(local preference: customer > peer > provider routes) and *valley-free*
export (routes learned from a peer or provider are only exported to
customers) — BGP is safe and converges to a unique stable state once
tie-breaking is deterministic.  That state can be computed in three
passes without simulating any message exchange:

1. **Customer routes** — breadth-first climb along customer-to-provider
   links starting from the destination; an AS has a customer route iff
   a pure downhill path to the destination exists below it.
2. **Peer routes** — one peering step off any AS whose *best* route is
   a customer route (only those are exported to peers).
3. **Provider routes** — Dijkstra-style descent: providers export their
   best route (of any class) to customers.

Tie-breaking matches the dynamic simulator's decision process exactly:
higher relationship preference, then shorter AS path, then lowest
neighbor ASN.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import UnknownASError
from repro.topology.graph import ASGraph
from repro.types import ASN, ASPath, Link, Relationship, normalize_link


class RouteClass(enum.IntEnum):
    """Gao-Rexford route class, ordered by preference (higher wins)."""

    PROVIDER = 0
    PEER = 1
    CUSTOMER = 2
    ORIGIN = 3


@dataclass(frozen=True)
class StableRoute:
    """One AS's converged best route toward the destination.

    ``path`` is in forwarding order and includes the AS itself:
    ``path[0]`` is the route's owner, ``path[-1]`` the destination.
    """

    path: ASPath
    route_class: RouteClass

    @property
    def owner(self) -> ASN:
        """The AS holding this route."""
        return self.path[0]

    @property
    def next_hop(self) -> Optional[ASN]:
        """Next AS toward the destination (``None`` at the destination)."""
        return self.path[1] if len(self.path) > 1 else None

    @property
    def length(self) -> int:
        """Number of AS hops."""
        return len(self.path) - 1


@dataclass
class StableRoutingState:
    """Converged best routes of every AS for one destination."""

    destination: ASN
    routes: Dict[ASN, StableRoute]

    def route(self, asn: ASN) -> Optional[StableRoute]:
        """Best route of an AS, or ``None`` if unreachable."""
        return self.routes.get(asn)

    def next_hop(self, asn: ASN) -> Optional[ASN]:
        """Converged forwarding next hop of an AS."""
        route = self.routes.get(asn)
        return route.next_hop if route else None

    def reachable_ases(self) -> List[ASN]:
        """All ASes with a route, sorted."""
        return sorted(self.routes)


def compute_stable_routes(
    graph: ASGraph,
    destination: ASN,
    *,
    failed_links: Iterable[Link] = (),
    failed_ases: Iterable[ASN] = (),
) -> StableRoutingState:
    """Compute the stable Gao-Rexford solution for one destination.

    ``failed_links`` / ``failed_ases`` are excluded from the topology,
    which lets callers compute post-event converged states without
    mutating the graph.
    """
    if destination not in graph:
        raise UnknownASError(f"destination AS {destination} not in graph")
    down_links: Set[Link] = {normalize_link(a, b) for a, b in failed_links}
    down_ases: Set[ASN] = set(failed_ases)
    if destination in down_ases:
        return StableRoutingState(destination, {})

    def link_up(a: ASN, b: ASN) -> bool:
        return (
            normalize_link(a, b) not in down_links
            and a not in down_ases
            and b not in down_ases
        )

    routes: Dict[ASN, StableRoute] = {
        destination: StableRoute((destination,), RouteClass.ORIGIN)
    }

    # Pass 1: customer routes, BFS by path length up the provider DAG.
    # An AS adopts the best announcement among its customers that hold
    # customer routes (or originate), preferring shorter paths then the
    # lowest customer ASN — identical to the dynamic decision process.
    frontier: List[ASN] = [destination]
    level = 0
    claimed: Set[ASN] = {destination}
    while frontier:
        level += 1
        # Collect candidate (customer -> provider) announcements.
        candidates: Dict[ASN, Tuple[int, ASN]] = {}
        for customer in frontier:
            for provider in graph.providers(customer):
                if provider in claimed or not link_up(customer, provider):
                    continue
                best = candidates.get(provider)
                if best is None or customer < best[1]:
                    candidates[provider] = (level, customer)
        next_frontier: List[ASN] = []
        for provider, (_, via) in sorted(candidates.items()):
            routes[provider] = StableRoute(
                (provider,) + routes[via].path, RouteClass.CUSTOMER
            )
            claimed.add(provider)
            next_frontier.append(provider)
        frontier = next_frontier

    # Pass 2: peer routes.  Only customer-class (or origin) routes are
    # exported across peering links.
    peer_routes: Dict[ASN, StableRoute] = {}
    for asn in graph.ases:
        if asn in routes or asn in down_ases:
            continue
        best: Optional[StableRoute] = None
        for peer in graph.peers(asn):
            exported = routes.get(peer)
            if exported is None or not link_up(asn, peer):
                continue
            if exported.route_class not in (RouteClass.CUSTOMER, RouteClass.ORIGIN):
                continue
            candidate = StableRoute((asn,) + exported.path, RouteClass.PEER)
            if best is None or _better(candidate, best):
                best = candidate
        if best is not None:
            peer_routes[asn] = best
    routes.update(peer_routes)

    # Pass 3: provider routes.  Providers export their best route of any
    # class to customers; resolve by increasing path length (Dijkstra
    # with unit weights) so an AS adopts the shortest available
    # provider-learned path, lowest provider ASN on ties.
    heap: List[Tuple[int, ASN, ASN]] = []  # (candidate length, provider, customer)
    for asn, route in routes.items():
        for customer in graph.customers(asn):
            if customer not in routes and link_up(asn, customer):
                heapq.heappush(heap, (route.length + 1, asn, customer))
    while heap:
        length, via, asn = heapq.heappop(heap)
        if asn in routes or asn in down_ases:
            continue
        routes[asn] = StableRoute((asn,) + routes[via].path, RouteClass.PROVIDER)
        for customer in graph.customers(asn):
            if customer not in routes and link_up(asn, customer):
                heapq.heappush(heap, (length + 1, asn, customer))

    return StableRoutingState(destination, routes)


def _better(a: StableRoute, b: StableRoute) -> bool:
    """Whether route ``a`` beats ``b`` under the decision process."""
    key_a = (-int(a.route_class), a.length, a.path[1] if len(a.path) > 1 else -1)
    key_b = (-int(b.route_class), b.length, b.path[1] if len(b.path) > 1 else -1)
    return key_a < key_b
