"""Test-only fault injection for the supervised experiment pool.

Chaos tests need a worker to misbehave *on demand*: raise mid-unit,
hang past the timeout, or die without a word (the OOM-reaper case).
This module provides an environment-gated hook the unit entry point
(:func:`repro.experiments.supervisor.run_unit`) calls before running a
unit; when the :data:`FAULTS_ENV` variable is unset — every production
run — the hook is a single dictionary lookup.

The spec is JSON in ``REPRO_FAULTS``::

    {"match": {"instance": 1, "protocol": "bgp"},   # any subset of
     "mode": "raise",                               # kind/seed/instance/protocol
     "times": 2,                                    # optional: stop after N firings
     "counter": "/tmp/fault.count",                 # required with "times"
     "scope": "worker",                             # optional: spare in-process runs
     "hang_seconds": 3600.0}                        # for mode "hang"

Modes: ``raise`` raises :class:`InjectedFault`; ``hang`` sleeps
``hang_seconds`` (long enough that only a supervisor timeout ends the
attempt); ``exit`` calls ``os._exit(3)`` — the worker process vanishes
without unwinding, exactly like a kill.

``times`` bounds how often the fault fires so retry paths can be
tested end-to-end (fail once, succeed on retry).  Because a retried
unit may land in a *different* worker process, the firing count lives
in a file: each firing appends one byte with ``O_APPEND`` (atomic
across processes) and the count is the file size.

``scope: "worker"`` fires only inside pool worker processes (the
supervisor marks them at startup), so degradation to the in-process
path can be tested: the fault kills every pooled attempt and the
final, degraded attempt succeeds.

The environment variable may also hold a JSON *list* of specs (see
:func:`combine_specs`); the first spec whose ``match`` covers the unit
fires.  That is how a single chaos campaign injects a crashing unit, a
hung unit, and a worker kill at once.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from repro.errors import ReproError

#: Environment variable carrying the JSON fault spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Fields of a unit identity a spec's ``match`` may constrain.
_MATCH_FIELDS = ("kind", "seed", "instance", "protocol")

#: True in processes spawned as supervised pool workers.
_IN_WORKER_PROCESS = False


class InjectedFault(ReproError):
    """The failure raised by a ``mode: "raise"`` fault injection."""


def mark_worker_process() -> None:
    """Record that this process is a pool worker (scope filtering)."""
    global _IN_WORKER_PROCESS
    _IN_WORKER_PROCESS = True


def fault_spec(
    mode: str,
    *,
    kind: Optional[str] = None,
    seed: Optional[int] = None,
    instance: Optional[int] = None,
    protocol: Optional[str] = None,
    times: Optional[int] = None,
    counter: Optional[str] = None,
    scope: str = "any",
    hang_seconds: float = 3600.0,
) -> str:
    """Build the JSON value tests set in :data:`FAULTS_ENV`."""
    if times is not None and counter is None:
        raise ValueError("a bounded fault needs a counter file path")
    match = {
        field: value
        for field, value in (
            ("kind", kind), ("seed", seed),
            ("instance", instance), ("protocol", protocol),
        )
        if value is not None
    }
    spec = {"mode": mode, "match": match, "scope": scope,
            "hang_seconds": hang_seconds}
    if times is not None:
        spec["times"] = times
        spec["counter"] = counter
    return json.dumps(spec)


def combine_specs(*specs: str) -> str:
    """Merge several :func:`fault_spec` strings into one env value."""
    return json.dumps([json.loads(spec) for spec in specs])


def _bump_counter(path: str) -> int:
    """Count one firing across processes; returns the firing ordinal."""
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, b"x")
        return os.fstat(fd).st_size
    finally:
        os.close(fd)


def _matches(spec: dict, unit: dict) -> bool:
    if spec.get("scope") == "worker" and not _IN_WORKER_PROCESS:
        return False
    match = spec.get("match", {})
    return all(
        match[field] == unit[field]
        for field in _MATCH_FIELDS
        if field in match
    )


def _fire(spec: dict, unit: dict) -> None:
    times = spec.get("times")
    if times is not None and _bump_counter(spec["counter"]) > times:
        return
    mode = spec.get("mode")
    if mode == "raise":
        raise InjectedFault(
            "injected failure for unit "
            f"{unit['kind']}:{unit['seed']}:{unit['instance']}:{unit['protocol']}"
        )
    if mode == "hang":
        time.sleep(float(spec.get("hang_seconds", 3600.0)))
        return
    if mode == "exit":
        os._exit(3)
    raise ValueError(f"unknown fault mode {mode!r}")


def maybe_inject(kind: str, seed: int, instance: int, protocol: str) -> None:
    """Fire the first matching configured fault; no-op otherwise."""
    spec_text = os.environ.get(FAULTS_ENV)
    if not spec_text:
        return
    parsed = json.loads(spec_text)
    specs = parsed if isinstance(parsed, list) else [parsed]
    unit = {"kind": kind, "seed": seed, "instance": instance,
            "protocol": protocol}
    for spec in specs:
        if _matches(spec, unit):
            _fire(spec, unit)
            return
