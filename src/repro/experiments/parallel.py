"""Parallel experiment execution: multiprocessing fan-out of runs.

A figure experiment is a grid of independent ``(instance, protocol)``
simulations over one shared topology — embarrassingly parallel.  The
:class:`ParallelRunner` fans that grid out over a ``multiprocessing``
pool:

* the topology is generated once and shipped to each worker via the
  compact binary round trip (:func:`repro.topology.serialization
  .graph_to_bytes`), so worker startup is not dominated by graph
  rebuild;
* each work unit re-derives its scenario RNG and simulation seed from
  the same deterministic ``f"{seed}:{kind}:{instance}"`` scheme the
  sequential path uses — a unit's result does not depend on which
  process runs it;
* results are merged in canonical ``(instance, protocol)`` order, so
  parallel output is byte-identical to sequential output (pinned by
  ``tests/experiments/test_parallel_runner.py`` and the golden
  determinism test).

``workers <= 1`` runs the identical unit loop in-process; the pool is
also skipped for single-unit grids, and environments that cannot spawn
processes fall back to the in-process loop.

Units run with the cyclic garbage collector paused
(:func:`_cyclic_gc_paused`): simulations allocate heavily but every
network breaks its own reference cycles on ``dispose()``, so pausing
trades no memory for a double-digit-percentage speedup.  Neither the
pool fan-out nor the GC pause can affect results — each unit is a
pure function of ``(graph, seed, kind, instance, protocol)`` and the
merge is canonical, so any configuration is byte-identical to the
sequential, collector-enabled run (golden-test pinned).
"""

from __future__ import annotations

import contextlib
import gc
import multiprocessing
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    ProtocolRun,
    clear_twin_start_cache,
    derive_run_seed,
    run_episode,
    run_scenario,
)
from repro.experiments.scenarios import Episode
from repro.topology.graph import ASGraph
from repro.topology.serialization import graph_from_bytes, graph_to_bytes

#: One work unit: (scenario/episode builder, kind, master seed,
#: instance, protocol).  The builder decides the execution path: a
#: returned :class:`Scenario` runs through ``run_scenario``, an
#: :class:`Episode` through ``run_episode`` — so campaign drivers fan
#: episode families over the identical pool/merge machinery.
WorkUnit = Tuple[Callable, str, int, int, str]

#: Topology of the current worker process, rebuilt once per worker by
#: the pool initializer.
_WORKER_GRAPH: Optional[ASGraph] = None


def _init_worker(graph_payload: bytes) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph_from_bytes(graph_payload)


@contextlib.contextmanager
def _cyclic_gc_paused() -> Iterator[None]:
    """Pause the cyclic garbage collector around simulation units.

    A protocol simulation allocates hundreds of thousands of tracked
    objects (routes, messages, event tuples); with the collector
    enabled, generational scans account for a double-digit percentage
    of end-to-end figure time.  Pausing is safe because every network
    is explicitly ``dispose()``d when its unit finishes — the cycles
    the collector would have to find are broken by hand, and memory
    returns through reference counting.  The previous collector state
    is restored on exit, even on error.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def run_unit(
    graph: ASGraph,
    builder: Callable,
    kind: str,
    seed: int,
    instance: int,
    protocol: str,
):
    """Execute one (instance, protocol) simulation deterministically.

    Both the sequential and the pooled path run exactly this function,
    which is what makes worker count irrelevant to the results: the
    scenario (or episode) is re-derived from a fresh string-seeded RNG
    and the simulation seed from :func:`derive_run_seed`.  Episode
    builders yield :class:`repro.experiments.runner.EpisodeRun`s, which
    expose the same metric surface as :class:`ProtocolRun`.
    """
    scenario_rng = random.Random(f"{seed}:{kind}:{instance}")
    scenario = builder(graph, scenario_rng)
    run_seed = derive_run_seed(seed, kind, instance)
    if isinstance(scenario, Episode):
        return run_episode(graph, scenario, protocol, seed=run_seed)
    return run_scenario(graph, scenario, protocol, seed=run_seed)


def _run_unit_in_worker(unit: WorkUnit):
    builder, kind, seed, instance, protocol = unit
    assert _WORKER_GRAPH is not None, "worker initializer did not run"
    with _cyclic_gc_paused():
        return run_unit(_WORKER_GRAPH, builder, kind, seed, instance, protocol)


@dataclass(frozen=True)
class ParallelRunner:
    """Fans (instance, protocol) work units over a process pool."""

    workers: int = 1

    @staticmethod
    def _run_inprocess(graph: ASGraph, units: List[WorkUnit]) -> List[ProtocolRun]:
        """Sequential unit loop (GC paused, twin cache grid-scoped)."""
        try:
            with _cyclic_gc_paused():
                return [run_unit(graph, *unit) for unit in units]
        finally:
            # A twin-start snapshot whose twin never ran must not
            # outlive the grid that parked it.
            clear_twin_start_cache()

    def run_units(self, graph: ASGraph, units: Sequence[WorkUnit]) -> List[ProtocolRun]:
        """Run all units; the result list matches the unit order."""
        units = list(units)
        if self.workers <= 1 or len(units) <= 1:
            return self._run_inprocess(graph, units)
        workers = min(self.workers, len(units))
        payload = graph_to_bytes(graph)
        try:
            with multiprocessing.get_context().Pool(
                workers, initializer=_init_worker, initargs=(payload,)
            ) as pool:
                # pool.map preserves unit order, which is what makes
                # the merge canonical; chunks amortize IPC per worker.
                chunksize = max(1, len(units) // (workers * 4))
                return pool.map(_run_unit_in_worker, units, chunksize=chunksize)
        except OSError:
            # Sandboxed environments without process support: degrade
            # to the identical in-process loop.
            return self._run_inprocess(graph, units)

    def run_failure_comparison(
        self,
        builder: Callable,
        kind: str,
        seed: int,
        n_instances: int,
        protocols: Sequence[str],
        graph: ASGraph,
    ) -> Dict[str, List[ProtocolRun]]:
        """All (instance, protocol) runs of one figure or campaign.

        Returns ``{protocol: [run per instance, in instance order]}``
        — the canonical merge order, independent of scheduling.  With
        an episode builder the lists hold ``EpisodeRun``s (same metric
        surface; see :func:`run_unit`).
        """
        units: List[WorkUnit] = [
            (builder, kind, seed, instance, protocol)
            for instance in range(n_instances)
            for protocol in protocols
        ]
        results = self.run_units(graph, units)
        runs: Dict[str, List[ProtocolRun]] = {p: [] for p in protocols}
        for (_, _, _, _, protocol), run in zip(units, results):
            runs[protocol].append(run)
        return runs
