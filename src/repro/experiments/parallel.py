"""Parallel experiment execution: supervised fan-out of work units.

A figure experiment is a grid of independent ``(instance, protocol)``
simulations over one shared topology — embarrassingly parallel.  The
:class:`ParallelRunner` fans that grid out over the *supervised worker
pool* of :mod:`repro.experiments.supervisor`:

* the topology is generated once and published as a shared-memory CSR
  segment (:mod:`repro.topology.shm`) that every worker attaches by
  name — zero-copy fan-out, no per-worker pickle round trip; platforms
  without shared memory (or ``REPRO_NO_SHM=1``) fall back to the
  compact binary round trip (:func:`repro.topology.serialization
  .graph_to_bytes`);
* each work unit re-derives its scenario RNG and simulation seed from
  the same deterministic ``f"{seed}:{kind}:{instance}"`` scheme the
  sequential path uses — a unit's result does not depend on which
  process runs it, how often it was retried, or where it ran;
* results are merged in canonical ``(instance, protocol)`` order, so
  parallel output is byte-identical to sequential output (pinned by
  ``tests/experiments/test_parallel_runner.py`` and the golden
  determinism test);
* a unit that raises, hangs past ``unit_timeout``, or takes its worker
  down with it is retried with exponential backoff and, if it keeps
  failing, reported as a structured
  :class:`~repro.experiments.supervisor.UnitFailure` — the rest of the
  campaign completes and is returned.

``workers <= 1`` runs the identical unit loop in-process (with the
same retry accounting); the pool is also skipped for single-unit
grids, and environments that cannot spawn processes degrade to the
in-process loop with a logged warning.

With ``ledger_path`` set, every completed unit is appended to a
crash-safe :class:`~repro.experiments.ledger.ResultLedger` keyed by
its canonical input hash, and units already present are answered from
disk — interrupted or overlapping sweeps recompute only never-seen
units (see ``docs/robustness.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import CampaignError
from repro.experiments.canonical import graph_content_hash, unit_key
from repro.experiments.ledger import ResultLedger
from repro.experiments.runner import ProtocolRun
from repro.experiments.supervisor import (
    RetryPolicy,
    Supervisor,
    SupervisedOutcome,
    UnitFailure,
    WorkerBudget,
    WorkUnit,
    _cyclic_gc_paused,
    run_unit,
)
from repro.topology.graph import ASGraph

__all__ = [
    "CampaignOutcome",
    "ParallelRunner",
    "WorkerBudget",
    "WorkUnit",
    "run_unit",
]


@dataclass
class CampaignOutcome:
    """Merged results of one campaign grid, plus its failure report.

    ``runs`` maps protocol to the per-instance run list in canonical
    instance order; a terminally failed unit is *omitted* from its
    protocol's list (so per-protocol lists may be shorter than the
    instance count) and described in ``failures``.  ``executed`` and
    ``ledger_hits`` expose how much work the sweep actually paid for.
    """

    runs: Dict[str, List[ProtocolRun]]
    failures: List[UnitFailure] = field(default_factory=list)
    executed: int = 0
    ledger_hits: int = 0
    #: True when a cooperative stop interrupted the grid: the unrun
    #: units are simply absent from ``runs`` (no failure records), and
    #: a rerun with the same ledger recomputes exactly them.
    stopped: bool = False

    @property
    def complete(self) -> bool:
        return not self.failures and not self.stopped


@dataclass(frozen=True)
class ParallelRunner:
    """Fans (instance, protocol) work units over a supervised pool.

    ``max_attempts``/``unit_timeout``/``backoff_base``/``backoff_factor``
    /``degrade_final`` configure the
    :class:`~repro.experiments.supervisor.RetryPolicy`; ``ledger_path``
    enables the crash-safe result ledger.  None of them can change the
    *value* of any result — units are pure and the merge canonical —
    only whether and where a result gets computed.
    """

    workers: int = 1
    max_attempts: int = 2
    unit_timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    degrade_final: bool = False
    ledger_path: Optional[Union[str, Path]] = None
    #: Shared machine-wide worker budget.  When set, ``workers`` is a
    #: request: the supervisor acquires up to that many slots from the
    #: budget and may be granted fewer under contention (see
    #: :class:`~repro.experiments.supervisor.WorkerBudget`).
    budget: Optional[WorkerBudget] = None

    def _policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.max_attempts,
            unit_timeout=self.unit_timeout,
            backoff_base=self.backoff_base,
            backoff_factor=self.backoff_factor,
            degrade_final=self.degrade_final,
        )

    def run_units_supervised(
        self,
        graph: ASGraph,
        units: Sequence[WorkUnit],
        *,
        stop_event=None,
        on_progress=None,
    ) -> SupervisedOutcome:
        """Run all units under supervision; never raises for unit faults.

        The returned outcome's ``results`` list matches the unit order
        (``None`` for terminal failures, which are classified in
        ``failures``).  ``stop_event`` (a ``threading.Event``) requests
        a cooperative stop from another thread — dispatch halts,
        in-flight units drain to the results and the ledger, and the
        outcome comes back partial with ``stopped=True``.
        ``on_progress`` is called as ``on_progress(resolved, total)``
        after the ledger preload and every unit resolution.
        """
        units = list(units)
        ledger = keys = None
        if self.ledger_path is not None:
            ledger = ResultLedger(self.ledger_path)
            graph_hash = graph_content_hash(graph)
            keys = [
                unit_key(graph_hash, builder, kind, seed, instance, protocol)
                for builder, kind, seed, instance, protocol in units
            ]
        try:
            supervisor = Supervisor(
                graph,
                units,
                workers=self.workers,
                policy=self._policy(),
                ledger=ledger,
                unit_keys=keys,
                stop_event=stop_event,
                on_progress=on_progress,
                budget=self.budget,
            )
            return supervisor.run()
        finally:
            if ledger is not None:
                ledger.close()

    def run_units(
        self, graph: ASGraph, units: Sequence[WorkUnit]
    ) -> List[ProtocolRun]:
        """Run all units; the result list matches the unit order.

        Raises :class:`~repro.errors.CampaignError` (carrying the
        partial results and the failure report) if any unit failed
        terminally — callers that want the partial outcome instead use
        :meth:`run_units_supervised`.
        """
        outcome = self.run_units_supervised(graph, units)
        if outcome.failures:
            raise CampaignError(
                "; ".join(f.describe() for f in outcome.failures),
                outcome=outcome,
            )
        return outcome.results

    def run_failure_comparison(
        self,
        builder: Callable,
        kind: str,
        seed: int,
        n_instances: int,
        protocols: Sequence[str],
        graph: ASGraph,
        *,
        stop_event=None,
        on_progress=None,
    ) -> CampaignOutcome:
        """All (instance, protocol) runs of one figure or campaign.

        ``runs`` holds ``{protocol: [run per instance, in instance
        order]}`` — the canonical merge order, independent of
        scheduling, retries, and ledger hits.  With an episode builder
        the lists hold ``EpisodeRun``s (same metric surface; see
        :func:`~repro.experiments.supervisor.run_unit`).  Terminally
        failed units are reported in ``failures`` instead of poisoning
        the sweep.
        """
        units: List[WorkUnit] = [
            (builder, kind, seed, instance, protocol)
            for instance in range(n_instances)
            for protocol in protocols
        ]
        outcome = self.run_units_supervised(
            graph, units, stop_event=stop_event, on_progress=on_progress
        )
        runs: Dict[str, List[ProtocolRun]] = {p: [] for p in protocols}
        for (_, _, _, _, protocol), run in zip(units, outcome.results):
            if run is not None:
                runs[protocol].append(run)
        return CampaignOutcome(
            runs=runs,
            failures=outcome.failures,
            executed=outcome.executed,
            ledger_hits=outcome.ledger_hits,
            stopped=outcome.stopped,
        )
