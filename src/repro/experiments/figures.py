"""Regeneration of every figure and reported number in the paper.

Each function returns a small dataclass with the series the paper
plots, plus convenience summaries.  The ``benchmarks/`` tree exposes
one pytest-benchmark target per figure that calls these and prints the
paper-vs-measured comparison; EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations

import dataclasses
import functools
import random
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.cdf import empirical_cdf, fraction_at_most, fraction_greater, mean
from repro.analysis.deployment import (
    full_deployment_fraction,
    partial_deployment_fraction,
)
from repro.analysis.phi import (
    PhiResult,
    phi_distribution,
    phi_with_intelligent_selection,
)
from repro.experiments.parallel import ParallelRunner
from repro.experiments.supervisor import UnitFailure
from repro.experiments.runner import (
    ExperimentConfig,
    PROTOCOLS,
    ProtocolRun,
)
from repro.experiments.scenarios import (
    Episode,
    Scenario,
    link_flap_episode,
    provider_node_failure,
    single_provider_link_failure,
    two_link_failures_distinct_as,
    two_link_failures_same_as,
)
from repro.topology.generators import generate_internet_topology
from repro.topology.graph import ASGraph

ScenarioBuilder = Callable[[ASGraph, random.Random], Scenario]
EpisodeBuilder = Callable[[ASGraph, random.Random], Episode]


# ----------------------------------------------------------------------
# Figure 1 — CDF of Φ
# ----------------------------------------------------------------------


@dataclass
class Figure1Data:
    """CDF of the disjoint-path probability Φ over destinations."""

    results: List[PhiResult]
    cdf: List[Tuple[float, float]]
    mean_phi: float
    fraction_below_070: float
    fraction_above_090: float


def fig1_phi_cdf(
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
) -> Figure1Data:
    """Figure 1: Φ for all destinations and its CDF."""
    config = config or ExperimentConfig()
    if graph is None:
        graph, _ = generate_internet_topology(config.topology)
    results = phi_distribution(graph)
    phis = [r.phi for r in results]
    return Figure1Data(
        results=results,
        cdf=empirical_cdf(phis),
        mean_phi=mean(phis),
        fraction_below_070=fraction_at_most(phis, 0.7),
        fraction_above_090=fraction_greater(phis, 0.9),
    )


# ----------------------------------------------------------------------
# Figures 2/3 — transient problems under failures
# ----------------------------------------------------------------------


@dataclass
class FailureFigureData:
    """Mean affected-AS counts per protocol for one failure class.

    ``failures`` is the campaign's structured failure report: units
    that exhausted every supervised retry.  A failed unit is omitted
    from its protocol's ``runs`` list (the aggregates below simply see
    one fewer sample) — a failure-free campaign is byte-identical to
    the pre-supervision output.
    """

    scenario_kind: str
    runs: Dict[str, List[ProtocolRun]] = field(default_factory=dict)
    failures: List[UnitFailure] = field(default_factory=list)

    def mean_affected(self) -> Dict[str, float]:
        """Protocol -> mean number of affected ASes (the bar heights)."""
        return {
            protocol: statistics.fmean(run.affected for run in runs)
            for protocol, runs in self.runs.items()
            if runs
        }

    def mean_convergence_time(self) -> Dict[str, float]:
        """Protocol -> mean simulated convergence seconds."""
        return {
            protocol: statistics.fmean(run.convergence_time for run in runs)
            for protocol, runs in self.runs.items()
            if runs
        }

    def mean_updates(self) -> Dict[str, float]:
        """Protocol -> mean update messages during the episode."""
        return {
            protocol: statistics.fmean(run.updates for run in runs)
            for protocol, runs in self.runs.items()
            if runs
        }

    def mean_initial_updates(self) -> Dict[str, float]:
        """Protocol -> mean updates to reach initial convergence."""
        return {
            protocol: statistics.fmean(run.initial_updates for run in runs)
            for protocol, runs in self.runs.items()
            if runs
        }

    def mean_disruption(self) -> Dict[str, float]:
        """Protocol -> mean data-plane disruption seconds."""
        return {
            protocol: statistics.fmean(run.disruption_duration for run in runs)
            for protocol, runs in self.runs.items()
            if runs
        }


def _failure_comparison(
    builder: ScenarioBuilder,
    kind: str,
    config: Optional[ExperimentConfig],
    graph: Optional[ASGraph],
) -> FailureFigureData:
    """Run one failure figure's (instance, protocol) grid.

    Delegates to :class:`ParallelRunner`: ``config.workers`` processes
    fan out the independent simulations under the supervised pool
    (per-unit retry/timeout, structured failure reporting, optional
    result ledger), and any worker count yields byte-identical
    statistics (results are merged in canonical order and every unit
    re-derives its seeds from the deterministic
    ``f"{seed}:{kind}:{instance}"`` scheme).
    """
    config = config or ExperimentConfig()
    if graph is None:
        graph, _ = generate_internet_topology(config.topology)
    runner = ParallelRunner(
        workers=config.workers,
        max_attempts=config.retries + 1,
        unit_timeout=config.unit_timeout,
        backoff_base=config.retry_backoff,
        ledger_path=config.ledger_path,
    )
    outcome = runner.run_failure_comparison(
        builder, kind, config.seed, config.n_instances, config.protocols, graph
    )
    return FailureFigureData(
        scenario_kind=kind, runs=outcome.runs, failures=outcome.failures
    )


def fig2_single_link_failure(
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
) -> FailureFigureData:
    """Figure 2: single provider-link failure at a multi-homed AS."""
    return _failure_comparison(
        single_provider_link_failure, "fig2-single-link", config, graph
    )


def fig3a_two_links_distinct_as(
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
) -> FailureFigureData:
    """Figure 3(a): two simultaneous link failures at distinct ASes."""
    return _failure_comparison(
        two_link_failures_distinct_as, "fig3a-distinct-as", config, graph
    )


def fig3b_two_links_same_as(
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
) -> FailureFigureData:
    """Figure 3(b): two simultaneous link failures at the same AS."""
    return _failure_comparison(
        two_link_failures_same_as, "fig3b-same-as", config, graph
    )


def node_failure_comparison(
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
) -> FailureFigureData:
    """Section 6.2.2 text: single AS (node) failure comparison."""
    return _failure_comparison(
        provider_node_failure, "node-failure", config, graph
    )


# ----------------------------------------------------------------------
# Episode campaigns — workloads beyond the paper's single instants
# ----------------------------------------------------------------------


@dataclass
class EpisodeCampaignData(FailureFigureData):
    """Per-protocol :class:`EpisodeRun` lists of one episode campaign.

    Inherits every aggregate of :class:`FailureFigureData` (episode
    runs expose the same metric surface, computed from the
    episode-wide overall report) and adds the per-phase breakdown.
    """

    def n_phases(self) -> int:
        """Number of comparable phases per episode.

        The packaged builders produce uniform phase counts; should a
        custom family vary (e.g. a degenerate instance), aggregation
        covers the common prefix rather than raising.
        """
        counts = [
            len(run.phases) for runs in self.runs.values() for run in runs
        ]
        return min(counts) if counts else 0

    def mean_affected_by_phase(self) -> Dict[str, List[float]]:
        """Protocol -> per-phase mean affected-AS counts.

        Phase ``k``'s value averages the *phase-scoped* reports (each
        re-evaluates eligibility at its injection instant), so the
        series shows which event of the episode did the damage.
        """
        return {
            protocol: [
                statistics.fmean(run.phases[k].report.affected_count for run in runs)
                for k in range(self.n_phases())
            ]
            for protocol, runs in self.runs.items()
            if runs
        }


def episode_campaign(
    builder: EpisodeBuilder,
    kind: str,
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
) -> EpisodeCampaignData:
    """Sweep one episode family over instances x protocols.

    The exact machinery of :func:`_failure_comparison` — the
    multiprocessing fan-out included — applied to an episode builder:
    every ``(instance, protocol)`` unit re-derives its episode from
    the deterministic string-seeded RNG, and any worker count yields
    byte-identical statistics (the campaign golden test pins this).
    """
    data = _failure_comparison(builder, kind, config, graph)
    return EpisodeCampaignData(
        scenario_kind=data.scenario_kind,
        runs=data.runs,
        failures=data.failures,
    )


def link_flap_comparison(
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
    period: float = 40.0,
    flaps: int = 2,
) -> EpisodeCampaignData:
    """Campaign: a provider link flaps (fail/recover x ``flaps``).

    The episode-model counterpart of Figure 2: same single-link
    population, but the link fails, partially recovers, and re-fails —
    the workload that distinguishes protocols by how they cope with
    churn *during* convergence rather than after a clean event.
    """
    builder = functools.partial(link_flap_episode, period=period, flaps=flaps)
    return episode_campaign(builder, "link-flap", config, graph=graph)


# ----------------------------------------------------------------------
# Section 6.1 / 6.3 — reported numbers
# ----------------------------------------------------------------------


@dataclass
class IntelligentSelectionData:
    """Random vs intelligent locked-blue-provider selection."""

    mean_phi_random: float
    mean_phi_intelligent: float


def sec61_intelligent_selection(
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
) -> IntelligentSelectionData:
    """Section 6.1: intelligent origin selection (92% -> 97%)."""
    config = config or ExperimentConfig()
    if graph is None:
        graph, _ = generate_internet_topology(config.topology)
    random_results = phi_distribution(graph)
    intelligent = [
        phi_with_intelligent_selection(graph, dest) for dest in graph.ases
    ]
    return IntelligentSelectionData(
        mean_phi_random=mean([r.phi for r in random_results]),
        mean_phi_intelligent=mean([r.phi for r in intelligent]),
    )


@dataclass
class PartialDeploymentData:
    """Tier-1-only deployment vs full deployment."""

    tier1_only_fraction: float
    full_deployment_fraction: float


def sec63_partial_deployment(
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
    trials: int = 16,
) -> PartialDeploymentData:
    """Section 6.3: ~75% of ASes keep disjoint paths at tier-1-only."""
    config = config or ExperimentConfig()
    if graph is None:
        graph, _ = generate_internet_topology(config.topology)
    return PartialDeploymentData(
        tier1_only_fraction=partial_deployment_fraction(
            graph, trials=trials, seed=config.seed
        ),
        full_deployment_fraction=full_deployment_fraction(graph),
    )


@dataclass
class OverheadData:
    """STAMP vs BGP update-message overhead.

    The paper's "less than twice" claim is about running two parallel
    processes; the clean analogue is the initial-convergence ratio.
    The post-event (episode) ratio is also reported: when a failure
    hits the locked blue chain the entire blue tree rebuilds, which a
    single-process BGP has no analogue for.
    """

    mean_initial_updates_bgp: float
    mean_initial_updates_stamp: float
    mean_episode_updates_bgp: float
    mean_episode_updates_stamp: float

    @property
    def initial_ratio(self) -> float:
        """STAMP/BGP update ratio for initial convergence (paper: <2)."""
        if self.mean_initial_updates_bgp == 0:
            return 0.0
        return self.mean_initial_updates_stamp / self.mean_initial_updates_bgp

    @property
    def episode_ratio(self) -> float:
        """STAMP/BGP update ratio for the failure episode."""
        if self.mean_episode_updates_bgp == 0:
            return 0.0
        return self.mean_episode_updates_stamp / self.mean_episode_updates_bgp


def sec63_message_overhead(
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
) -> OverheadData:
    """Section 6.3: two processes cost less than 2x the updates."""
    config = config or ExperimentConfig()
    restricted = dataclasses.replace(config, protocols=("bgp", "stamp"))
    data = _failure_comparison(
        single_provider_link_failure, "sec63-overhead", restricted, graph
    )
    initial = data.mean_initial_updates()
    episode = data.mean_updates()
    return OverheadData(
        mean_initial_updates_bgp=initial.get("bgp", 0.0),
        mean_initial_updates_stamp=initial.get("stamp", 0.0),
        mean_episode_updates_bgp=episode.get("bgp", 0.0),
        mean_episode_updates_stamp=episode.get("stamp", 0.0),
    )


@dataclass
class ConvergenceDelayData:
    """BGP vs STAMP convergence after the same events.

    ``mean_seconds_*`` is control-plane quiescence; ``disruption_*`` is
    the data-plane view (how long packets were actually lost), which is
    the convergence users experience and the sense in which STAMP is
    faster.
    """

    mean_seconds_bgp: float
    mean_seconds_stamp: float
    mean_disruption_bgp: float
    mean_disruption_stamp: float


def sec63_convergence_delay(
    config: Optional[ExperimentConfig] = None,
    *,
    graph: Optional[ASGraph] = None,
) -> ConvergenceDelayData:
    """Section 6.3: STAMP converges no slower than BGP (data plane)."""
    config = config or ExperimentConfig()
    restricted = dataclasses.replace(config, protocols=("bgp", "stamp"))
    data = _failure_comparison(
        single_provider_link_failure, "sec63-delay", restricted, graph
    )
    times = data.mean_convergence_time()
    disruption = data.mean_disruption()
    return ConvergenceDelayData(
        mean_seconds_bgp=times.get("bgp", 0.0),
        mean_seconds_stamp=times.get("stamp", 0.0),
        mean_disruption_bgp=disruption.get("bgp", 0.0),
        mean_disruption_stamp=disruption.get("stamp", 0.0),
    )
