"""Crash-safe, content-addressed result ledger (append-only JSONL).

The ledger maps a unit key (:func:`repro.experiments.canonical
.unit_key`) to that unit's pickled result.  It is the persistence
layer behind resumable campaigns: a sweep writes every completed unit
as it finishes, so an interruption — crash, OOM kill, ctrl-C — loses
at most the units that were in flight, and a restart with the same
ledger recomputes only what is missing.

Format: one JSON object per line, ``\\n``-terminated::

    {"v": 1, "key": "<64 hex>", "payload": "<base64 pickle>",
     "psha": "<sha256 hex of the pickle bytes>"}

Durability and recovery rules:

* **Appends are atomic-enough and fsynced.**  Each record is written
  with a single ``os.write`` to an ``O_APPEND`` descriptor and then
  ``fsync``ed, so concurrent writers (two campaign processes sharing a
  ledger) do not interleave records, and a completed append survives
  power loss.
* **Torn trailing records never crash a load.**  A crash mid-append
  leaves a final partial line; :meth:`ResultLedger.load` detects it
  (JSON parse failure, missing fields, or payload-digest mismatch),
  logs a warning, and skips it.  Corrupt *interior* records — bit rot,
  a torn record that a later append happened to follow — are likewise
  skipped with a warning: a ledger miss recomputes, a crash loses the
  whole campaign.
* **Duplicate keys: last write wins.**  Units are pure, so duplicates
  normally carry equal payloads; after a salt-less code change the
  most recent run is the one to trust, and compaction keeps it.
* **Compaction is atomic.**  :meth:`ResultLedger.compact` rewrites the
  live records to a temporary file in the same directory, fsyncs, and
  ``os.replace``s it over the ledger — readers see the old or the new
  file, never a partial one.
"""

from __future__ import annotations

import base64
import binascii
import json
import logging
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.experiments.canonical import sha256_hex

logger = logging.getLogger("repro.experiments.ledger")

#: Record format version; bump on incompatible record-shape changes.
_RECORD_VERSION = 1


class ResultLedger:
    """Append-only JSONL store of pickled unit results, keyed by hash.

    Loading reads and validates every record once; lookups
    (:meth:`__contains__`, :meth:`get`) are O(1) dictionary hits
    afterwards.  :meth:`put` appends crash-safely and updates the
    in-memory index, so a live campaign never re-reads the file.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: key -> raw pickle bytes of the most recent record (last wins).
        self._records: Dict[str, bytes] = {}
        #: Records dropped by the last load (torn/corrupt).
        self.dropped_records = 0
        self._fd: Optional[int] = None
        self.load()

    # -- loading -------------------------------------------------------

    def load(self) -> None:
        """(Re)build the index from disk, skipping torn/corrupt records."""
        self._records.clear()
        self.dropped_records = 0
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data:
            return
        lines = data.split(b"\n")
        # A well-formed ledger ends with a newline, so the final split
        # element is empty; anything else is a torn trailing record.
        for lineno, line in enumerate(lines, start=1):
            if not line:
                continue
            record = self._parse_record(line, lineno, torn=(lineno == len(lines)))
            if record is not None:
                key, payload = record
                self._records[key] = payload

    def _parse_record(self, line, lineno, torn):
        """Validate one line; return ``(key, payload)`` or ``None``."""
        where = "torn trailing" if torn else "corrupt"
        try:
            obj = json.loads(line)
        except ValueError:
            logger.warning(
                "%s: skipping %s record at line %d (unparseable JSON)",
                self.path, where, lineno,
            )
            self.dropped_records += 1
            return None
        if (
            not isinstance(obj, dict)
            or obj.get("v") != _RECORD_VERSION
            or not isinstance(obj.get("key"), str)
            or not isinstance(obj.get("payload"), str)
            or not isinstance(obj.get("psha"), str)
        ):
            logger.warning(
                "%s: skipping %s record at line %d (missing/invalid fields)",
                self.path, where, lineno,
            )
            self.dropped_records += 1
            return None
        try:
            payload = base64.b64decode(obj["payload"], validate=True)
        except (binascii.Error, ValueError):
            logger.warning(
                "%s: skipping %s record at line %d (invalid base64 payload)",
                self.path, where, lineno,
            )
            self.dropped_records += 1
            return None
        if sha256_hex(payload) != obj["psha"]:
            logger.warning(
                "%s: skipping %s record at line %d (payload digest mismatch)",
                self.path, where, lineno,
            )
            self.dropped_records += 1
            return None
        return obj["key"], payload

    # -- lookups -------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def get(self, key: str) -> Any:
        """Unpickle and return the result stored under ``key``."""
        return pickle.loads(self._records[key])

    # -- appends -------------------------------------------------------

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            self._seal_torn_tail(self._fd)
        return self._fd

    def _seal_torn_tail(self, fd: int) -> None:
        """Terminate a torn trailing record before the first append.

        A crash mid-append leaves the file ending without a newline;
        appending straight after it would glue the new record onto the
        torn fragment — losing *both* on the next load.  Writing one
        ``\\n`` turns the fragment into a lone corrupt line (skipped
        with a warning) and keeps every later append intact.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                last = handle.read(1)
        except OSError:
            return
        if last != b"\n":
            os.write(fd, b"\n")
            os.fsync(fd)

    @staticmethod
    def encode_record(key: str, payload: bytes) -> bytes:
        """One complete JSONL record (newline-terminated) for ``key``."""
        obj = {
            "v": _RECORD_VERSION,
            "key": key,
            "payload": base64.b64encode(payload).decode("ascii"),
            "psha": sha256_hex(payload),
        }
        return (json.dumps(obj, sort_keys=True) + "\n").encode("ascii")

    def put(self, key: str, value: Any) -> None:
        """Append one result crash-safely and index it (last wins).

        The record is written with one ``os.write`` on an ``O_APPEND``
        descriptor and fsynced before :meth:`put` returns — once it
        returns, the result survives a crash, and concurrent writers
        never interleave within a record.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        line = self.encode_record(key, payload)
        fd = self._ensure_fd()
        os.write(fd, line)
        os.fsync(fd)
        self._records[key] = payload

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "ResultLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- maintenance ---------------------------------------------------

    def compact(self) -> None:
        """Atomically rewrite the ledger to its deduplicated live records.

        Drops superseded duplicates and any torn/corrupt lines.  The
        replacement is written to a temporary sibling, fsynced, and
        ``os.replace``d over the ledger, then the directory entry is
        fsynced — a crash at any instant leaves either the old or the
        new complete file.
        """
        self.close()
        tmp = self.path.with_name(self.path.name + ".tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            for key, payload in self._records.items():
                os.write(fd, self.encode_record(key, payload))
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self.path)
        dir_fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        self.dropped_records = 0
