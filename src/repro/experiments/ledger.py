"""Crash-safe, content-addressed result ledger (append-only JSONL).

The ledger maps a unit key (:func:`repro.experiments.canonical
.unit_key`) to that unit's pickled result.  It is the persistence
layer behind resumable campaigns: a sweep writes every completed unit
as it finishes, so an interruption — crash, OOM kill, ctrl-C — loses
at most the units that were in flight, and a restart with the same
ledger recomputes only what is missing.

Format: one JSON object per line, ``\\n``-terminated::

    {"v": 1, "kind": "header", "salt": "repro-unit-v1"}
    {"v": 1, "key": "<64 hex>", "payload": "<base64 pickle>",
     "psha": "<sha256 hex of the pickle bytes>", "ts": 1727000000.123}

The first line of a ledger created by this module is a *header*
declaring the :data:`~repro.experiments.canonical.LEDGER_SALT` its
keys were derived under — the cross-machine merge tool refuses to
combine ledgers whose headers disagree.  ``ts`` (seconds since the
epoch, recorded at append time) feeds the age/size-bounded GC
policies of :meth:`ResultLedger.compact`.  Ledgers written before
these fields existed (no header, no ``ts``) still load: a missing
header means "salt unknown" and a missing ``ts`` sorts as oldest.

Durability and recovery rules:

* **Appends are atomic-enough and fsynced.**  Each record is written
  with a single ``os.write`` to an ``O_APPEND`` descriptor and then
  ``fsync``ed, so concurrent writers (two campaign processes sharing a
  ledger) do not interleave records, and a completed append survives
  power loss.
* **Torn trailing records never crash a load.**  A crash mid-append
  leaves a final partial line; :meth:`ResultLedger.load` detects it
  (JSON parse failure, missing fields, or payload-digest mismatch),
  logs a warning, and skips it.  Corrupt *interior* records — bit rot,
  a torn record that a later append happened to follow — are likewise
  skipped with a warning: a ledger miss recomputes, a crash loses the
  whole campaign.
* **Duplicate keys: last write wins.**  Units are pure, so duplicates
  normally carry equal payloads; after a salt-less code change the
  most recent run is the one to trust, and compaction keeps it.
* **Compaction is atomic.**  :meth:`ResultLedger.compact` rewrites the
  live records to a temporary file in the same directory, fsyncs, and
  ``os.replace``s it over the ledger — readers see the old or the new
  file, never a partial one.
"""

from __future__ import annotations

import base64
import binascii
import json
import logging
import os
import pickle
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import LedgerMergeError
from repro.experiments.canonical import LEDGER_SALT, sha256_hex

logger = logging.getLogger("repro.experiments.ledger")

#: Record format version; bump on incompatible record-shape changes.
_RECORD_VERSION = 1


class ResultLedger:
    """Append-only JSONL store of pickled unit results, keyed by hash.

    Loading reads and validates every record once; lookups
    (:meth:`__contains__`, :meth:`get`) are O(1) dictionary hits
    afterwards.  :meth:`put` appends crash-safely and updates the
    in-memory index, so a live campaign never re-reads the file.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: key -> raw pickle bytes of the most recent record (last wins).
        self._records: Dict[str, bytes] = {}
        #: key -> append timestamp of the winning record (0.0 when the
        #: record predates the ``ts`` field — sorts as oldest).
        self._ts: Dict[str, float] = {}
        #: Salt declared by the file's header record, or ``None`` for a
        #: headerless (pre-header-format) ledger.
        self.salt: Optional[str] = None
        #: Records dropped by the last load (torn/corrupt).
        self.dropped_records = 0
        self._fd: Optional[int] = None
        self.load()

    # -- loading -------------------------------------------------------

    def load(self) -> None:
        """(Re)build the index from disk, skipping torn/corrupt records."""
        self._records.clear()
        self._ts.clear()
        self.salt = None
        self.dropped_records = 0
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data:
            return
        lines = data.split(b"\n")
        # A well-formed ledger ends with a newline, so the final split
        # element is empty; anything else is a torn trailing record.
        for lineno, line in enumerate(lines, start=1):
            if not line:
                continue
            record = self._parse_record(line, lineno, torn=(lineno == len(lines)))
            if record is not None:
                key, payload, ts = record
                self._records[key] = payload
                self._ts[key] = ts

    def _parse_record(self, line, lineno, torn):
        """Validate one line; return ``(key, payload, ts)`` or ``None``.

        Header records set :attr:`salt` as a side effect and return
        ``None`` without counting as dropped.
        """
        where = "torn trailing" if torn else "corrupt"
        try:
            obj = json.loads(line)
        except ValueError:
            logger.warning(
                "%s: skipping %s record at line %d (unparseable JSON)",
                self.path, where, lineno,
            )
            self.dropped_records += 1
            return None
        if isinstance(obj, dict) and obj.get("kind") == "header":
            if obj.get("v") == _RECORD_VERSION and isinstance(
                obj.get("salt"), str
            ):
                if self.salt is None:
                    self.salt = obj["salt"]
                    if self.salt != LEDGER_SALT:
                        logger.warning(
                            "%s: ledger salt %r differs from the current "
                            "%r; its keys will miss and recompute",
                            self.path, self.salt, LEDGER_SALT,
                        )
                return None
            logger.warning(
                "%s: skipping %s header at line %d (missing/invalid fields)",
                self.path, where, lineno,
            )
            self.dropped_records += 1
            return None
        if (
            not isinstance(obj, dict)
            or obj.get("v") != _RECORD_VERSION
            or not isinstance(obj.get("key"), str)
            or not isinstance(obj.get("payload"), str)
            or not isinstance(obj.get("psha"), str)
        ):
            logger.warning(
                "%s: skipping %s record at line %d (missing/invalid fields)",
                self.path, where, lineno,
            )
            self.dropped_records += 1
            return None
        try:
            payload = base64.b64decode(obj["payload"], validate=True)
        except (binascii.Error, ValueError):
            logger.warning(
                "%s: skipping %s record at line %d (invalid base64 payload)",
                self.path, where, lineno,
            )
            self.dropped_records += 1
            return None
        if sha256_hex(payload) != obj["psha"]:
            logger.warning(
                "%s: skipping %s record at line %d (payload digest mismatch)",
                self.path, where, lineno,
            )
            self.dropped_records += 1
            return None
        ts = obj.get("ts")
        if not isinstance(ts, (int, float)):
            ts = 0.0
        return obj["key"], payload, float(ts)

    # -- lookups -------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def get(self, key: str) -> Any:
        """Unpickle and return the result stored under ``key``."""
        return pickle.loads(self._records[key])

    # -- appends -------------------------------------------------------

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            self._seal_torn_tail(self._fd)
            # A brand-new ledger starts with a header naming the salt
            # its keys were derived under (the merge tool's safety
            # check).  Two writers racing on creation may both append
            # one — duplicates are recognized and harmless on load.
            if os.fstat(self._fd).st_size == 0:
                os.write(self._fd, self.encode_header())
                self.salt = LEDGER_SALT
        return self._fd

    def _seal_torn_tail(self, fd: int) -> None:
        """Terminate a torn trailing record before the first append.

        A crash mid-append leaves the file ending without a newline;
        appending straight after it would glue the new record onto the
        torn fragment — losing *both* on the next load.  Writing one
        ``\\n`` turns the fragment into a lone corrupt line (skipped
        with a warning) and keeps every later append intact.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                last = handle.read(1)
        except OSError:
            return
        if last != b"\n":
            os.write(fd, b"\n")
            os.fsync(fd)

    @staticmethod
    def encode_header(salt: str = LEDGER_SALT) -> bytes:
        """The ledger's first line: the salt its keys were derived under."""
        obj = {"v": _RECORD_VERSION, "kind": "header", "salt": salt}
        return (json.dumps(obj, sort_keys=True) + "\n").encode("ascii")

    @staticmethod
    def encode_record(
        key: str, payload: bytes, ts: Optional[float] = None
    ) -> bytes:
        """One complete JSONL record (newline-terminated) for ``key``."""
        obj = {
            "v": _RECORD_VERSION,
            "key": key,
            "payload": base64.b64encode(payload).decode("ascii"),
            "psha": sha256_hex(payload),
        }
        if ts is not None:
            obj["ts"] = ts
        return (json.dumps(obj, sort_keys=True) + "\n").encode("ascii")

    def put(self, key: str, value: Any) -> None:
        """Append one result crash-safely and index it (last wins).

        The record is written with one ``os.write`` on an ``O_APPEND``
        descriptor and fsynced before :meth:`put` returns — once it
        returns, the result survives a crash, and concurrent writers
        never interleave within a record.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ts = time.time()
        line = self.encode_record(key, payload, ts)
        fd = self._ensure_fd()
        os.write(fd, line)
        os.fsync(fd)
        self._records[key] = payload
        self._ts[key] = ts

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "ResultLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- maintenance ---------------------------------------------------

    def compact(
        self,
        *,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> int:
        """Atomically rewrite the ledger; optionally GC old/excess records.

        Always drops superseded duplicates and any torn/corrupt lines.
        With ``max_age_seconds`` set, records appended longer ago than
        that are evicted (records predating the ``ts`` field count as
        infinitely old).  With ``max_bytes`` set, records are evicted
        oldest-first until the rewritten file fits the bound (the
        newest records always survive; a bound smaller than one record
        plus the header empties the ledger).  Both bounds compose.

        The replacement is written to a temporary sibling, fsynced, and
        ``os.replace``d over the ledger, then the directory entry is
        fsynced — a crash at any instant leaves either the old or the
        new complete file.  Returns the number of evicted records.
        """
        now = time.time() if now is None else now
        survivors: List[Tuple[str, bytes, float]] = [
            (key, payload, self._ts.get(key, 0.0))
            for key, payload in self._records.items()
        ]
        if max_age_seconds is not None:
            cutoff = now - max_age_seconds
            survivors = [rec for rec in survivors if rec[2] >= cutoff]
        encoded = [
            (key, self.encode_record(key, payload, ts or None), ts)
            for key, payload, ts in survivors
        ]
        if max_bytes is not None:
            total = len(self.encode_header()) + sum(
                len(line) for _, line, _ in encoded
            )
            # Oldest first: ties broken by append order (dict order).
            by_age = sorted(
                range(len(encoded)), key=lambda i: (encoded[i][2], i)
            )
            evict = set()
            for i in by_age:
                if total <= max_bytes:
                    break
                total -= len(encoded[i][1])
                evict.add(i)
            encoded = [rec for i, rec in enumerate(encoded) if i not in evict]
        evicted = len(self._records) - len(encoded)
        self.close()
        tmp = self.path.with_name(self.path.name + ".tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, self.encode_header(self.salt or LEDGER_SALT))
            for _, line, _ in encoded:
                os.write(fd, line)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self.path)
        dir_fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        kept = {key for key, _, _ in encoded}
        for key in list(self._records):
            if key not in kept:
                del self._records[key]
                self._ts.pop(key, None)
        self.salt = self.salt or LEDGER_SALT
        self.dropped_records = 0
        return evicted

    def stats(self) -> Dict[str, Any]:
        """Operational summary: live records, bytes, salt, age span."""
        try:
            file_bytes = self.path.stat().st_size
        except OSError:
            file_bytes = 0
        live_bytes = sum(
            len(self.encode_record(key, payload, self._ts.get(key) or None))
            for key, payload in self._records.items()
        )
        stamps = [ts for ts in self._ts.values() if ts > 0.0]
        return {
            "path": str(self.path),
            "records": len(self._records),
            "file_bytes": file_bytes,
            "live_bytes": live_bytes,
            "dropped_records": self.dropped_records,
            "salt": self.salt,
            "oldest_ts": min(stamps) if stamps else None,
            "newest_ts": max(stamps) if stamps else None,
        }


# ----------------------------------------------------------------------
# Cross-machine merge
# ----------------------------------------------------------------------


def merge_ledgers(
    out_path: Union[str, Path], in_paths: Sequence[Union[str, Path]]
) -> Dict[str, int]:
    """Merge ledgers into one, last-write-wins on duplicate keys.

    Inputs are processed in argument order and, within a file, in line
    order — so a key appearing in several places resolves to the most
    recent record of the *last* input naming it, matching the ledger's
    own duplicate policy.  Torn/corrupt lines are skipped with a
    warning, exactly as :meth:`ResultLedger.load` would.

    Safety: the merge **refuses** (:class:`~repro.errors
    .LedgerMergeError`) inputs whose headers declare different
    ``LEDGER_SALT`` values, and any record of a different format
    version — both would produce a ledger whose keys silently mean
    different things.  Headerless (legacy) inputs are compatible with
    anything; the output always carries a header.

    The output is written atomically (temp sibling + fsync +
    ``os.replace`` + directory fsync), so it may safely be one of the
    inputs.  Returns counts: ``records`` (live keys written),
    ``duplicates`` (records superseded during the merge), ``skipped``
    (torn/corrupt lines ignored).
    """
    out_path = Path(out_path)
    merged: Dict[str, Tuple[bytes, float]] = {}
    salts: Dict[str, str] = {}
    duplicates = 0
    skipped = 0
    for in_path in in_paths:
        ledger = ResultLedger.__new__(ResultLedger)
        ledger.path = Path(in_path)
        ledger._records = {}
        ledger._ts = {}
        ledger.salt = None
        ledger.dropped_records = 0
        ledger._fd = None
        if not ledger.path.exists():
            raise LedgerMergeError(f"input ledger does not exist: {in_path}")
        _refuse_version_mismatch(ledger.path)
        ledger.load()
        if ledger.salt is not None:
            salts[str(in_path)] = ledger.salt
            if len(set(salts.values())) > 1:
                detail = ", ".join(
                    f"{p}: {s!r}" for p, s in sorted(salts.items())
                )
                raise LedgerMergeError(
                    f"input ledgers declare different salts ({detail}); "
                    "their keys are not comparable"
                )
        skipped += ledger.dropped_records
        for key, payload in ledger._records.items():
            if key in merged:
                duplicates += 1
            merged[key] = (payload, ledger._ts.get(key, 0.0))
    salt = next(iter(salts.values()), LEDGER_SALT)
    tmp = out_path.with_name(out_path.name + ".tmp")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, ResultLedger.encode_header(salt))
        for key, (payload, ts) in merged.items():
            os.write(fd, ResultLedger.encode_record(key, payload, ts or None))
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, out_path)
    dir_fd = os.open(out_path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return {
        "records": len(merged), "duplicates": duplicates, "skipped": skipped
    }


def _refuse_version_mismatch(path: Path) -> None:
    """Abort the merge if any parseable record has a foreign version.

    A plain load *skips* such records (a miss only costs a recompute);
    a merge must not — silently dropping another version's records
    from the combined ledger would look like data loss.
    """
    for line in path.read_bytes().split(b"\n"):
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue  # torn/corrupt: the load pass warns and skips
        if isinstance(obj, dict) and "v" in obj and obj["v"] != _RECORD_VERSION:
            raise LedgerMergeError(
                f"{path}: contains record version {obj['v']!r} "
                f"(this tool writes version {_RECORD_VERSION}); refusing "
                "to merge across format versions"
            )
