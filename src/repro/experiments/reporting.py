"""Plain-text rendering of figure data (tables and bar charts)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def ascii_bar_chart(
    values: Dict[str, float],
    *,
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart, one row per labeled value."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        return title
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    for label, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value:,.1f}{unit}"
        )
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width table with a header separator."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    out: List[str] = []
    for index, row in enumerate(cells):
        out.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            out.append("  ".join("-" * width for width in widths))
    return "\n".join(out)


def format_failure_report(failures: Sequence) -> str:
    """Render a campaign's :class:`UnitFailure` list as a table.

    One row per terminally failed unit: its identity, how many
    attempts it burned, and the per-attempt causes in order
    (``exception`` / ``timeout`` / ``worker-death``).  Returns an
    empty string for a failure-free campaign so callers can print
    unconditionally.
    """
    if not failures:
        return ""
    rows = [
        (
            failure.kind,
            failure.instance,
            failure.protocol,
            len(failure.attempts),
            ", ".join(a.cause for a in failure.attempts),
        )
        for failure in failures
    ]
    table = format_table(
        ["kind", "instance", "protocol", "attempts", "causes"], rows
    )
    return (
        f"WARNING: {len(failures)} unit(s) failed terminally; their "
        "samples are missing from the aggregates above.\n" + table
    )


def cdf_sparkline(points: Sequence[tuple], *, buckets: int = 20) -> str:
    """Compact one-line rendering of a CDF for terminal output."""
    if not points:
        return "(empty)"
    glyphs = " .:-=+*#%@"
    values = [fraction for _, fraction in points]
    out = []
    for bucket in range(buckets):
        index = min(
            len(values) - 1, round(bucket * (len(values) - 1) / max(1, buckets - 1))
        )
        level = min(len(glyphs) - 1, int(values[index] * (len(glyphs) - 1)))
        out.append(glyphs[level])
    return "".join(out)
