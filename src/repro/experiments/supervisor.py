"""Supervised execution of experiment units: retry, timeout, backoff.

The experiment grid is embarrassingly parallel, but a bare
``pool.map`` is all-or-nothing: one unit that raises, one worker the
OOM reaper kills, or one hung simulation loses the entire campaign.
This module replaces it with a *supervised worker pool*:

* every unit is dispatched individually to a long-lived worker process
  over a dedicated pipe, so the supervisor always knows exactly which
  unit each worker is running (no shared queue a dying worker could
  poison, and failure attribution is exact);
* each attempt runs under a configurable wall-clock timeout — a hung
  worker is killed and only *its* unit is charged an attempt;
* a worker that dies (``os._exit``, OOM kill, segfault) is detected
  via its process sentinel, its unit is charged, and a replacement
  worker is spawned;
* failed units are retried up to :attr:`RetryPolicy.max_attempts`
  times with exponential backoff, optionally degrading the final
  attempt to the in-process path;
* terminal failures are classified into structured
  :class:`UnitFailure` records, so a campaign returns *all* completed
  results plus an explicit failure report instead of one opaque
  exception.

Determinism: every unit is a pure function of ``(graph, builder, kind,
seed, instance, protocol)`` (see :func:`run_unit`) and results are
returned positionally, so retries, worker placement, and worker count
are invisible in the output — a failure-free supervised run is
byte-identical to the sequential path at any worker count (pinned by
the golden determinism tests).

With a :class:`~repro.experiments.ledger.ResultLedger` attached, every
completed unit is appended crash-safely as it finishes and
already-ledgered units are never recomputed — the persistence half of
resumable campaigns (see ``docs/robustness.md``).
"""

from __future__ import annotations

import contextlib
import gc
import logging
import multiprocessing
import os
import random
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.experiments import faults
from repro.experiments.ledger import ResultLedger
from repro.experiments.runner import (
    clear_twin_start_cache,
    derive_run_seed,
    run_episode,
    run_scenario,
)
from repro.experiments.scenarios import Episode
from repro.topology import shm as topology_shm
from repro.topology.graph import ASGraph
from repro.topology.serialization import graph_from_bytes, graph_to_bytes

logger = logging.getLogger("repro.experiments.supervisor")

#: One work unit: (scenario/episode builder, kind, master seed,
#: instance, protocol).  The builder decides the execution path: a
#: returned :class:`Scenario` runs through ``run_scenario``, an
#: :class:`Episode` through ``run_episode`` — so campaign drivers fan
#: episode families over the identical pool/merge machinery.
WorkUnit = Tuple[Callable, str, int, int, str]


@contextlib.contextmanager
def _cyclic_gc_paused() -> Iterator[None]:
    """Pause the cyclic garbage collector around simulation units.

    A protocol simulation allocates hundreds of thousands of tracked
    objects (routes, messages, event tuples); with the collector
    enabled, generational scans account for a double-digit percentage
    of end-to-end figure time.  Pausing is safe because every network
    is explicitly ``dispose()``d when its unit finishes — the cycles
    the collector would have to find are broken by hand, and memory
    returns through reference counting.  The previous collector state
    is restored on exit, even on error.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def run_unit(
    graph: ASGraph,
    builder: Callable,
    kind: str,
    seed: int,
    instance: int,
    protocol: str,
):
    """Execute one (instance, protocol) simulation deterministically.

    Every execution path — sequential, pooled, retried, degraded —
    runs exactly this function, which is what makes scheduling
    invisible in the results: the scenario (or episode) is re-derived
    from a fresh string-seeded RNG and the simulation seed from
    :func:`~repro.experiments.runner.derive_run_seed`.  Episode
    builders yield :class:`repro.experiments.runner.EpisodeRun`s, which
    expose the same metric surface as
    :class:`~repro.experiments.runner.ProtocolRun`.
    """
    faults.maybe_inject(kind, seed, instance, protocol)
    scenario_rng = random.Random(f"{seed}:{kind}:{instance}")
    scenario = builder(graph, scenario_rng)
    run_seed = derive_run_seed(seed, kind, instance)
    if isinstance(scenario, Episode):
        return run_episode(graph, scenario, protocol, seed=run_seed)
    return run_scenario(graph, scenario, protocol, seed=run_seed)


# ----------------------------------------------------------------------
# Shared worker budget
# ----------------------------------------------------------------------


class WorkerBudget:
    """A machine-wide pool of worker slots shared by concurrent grids.

    When several campaigns execute at once (the service's concurrent
    lanes), each one sizing its own pool independently would
    oversubscribe the machine: K campaigns × W workers each.  Instead
    every supervisor draws from one shared budget: :meth:`acquire`
    grants ``min(requested, free)`` slots — fewer than asked under
    contention — **without blocking**, flooring the grant at one slot
    so no campaign ever starves outright (a one-slot grant runs the
    grid on the caller's own thread, so the floor costs one thread, not
    an extra worker process).  Worker count is result-invariant
    throughout the experiment stack, so a stingy grant changes only
    wall-clock time, never bytes.

    Thread-safe; allocation may transiently exceed ``total`` only
    through the one-slot floor.
    """

    def __init__(self, total: int) -> None:
        self.total = max(1, int(total))
        self._allocated = 0
        self._lock = threading.Lock()

    def acquire(self, requested: int, *, minimum: int = 1) -> int:
        """Grant up to ``requested`` slots now; at least ``minimum``."""
        requested = max(1, int(requested))
        with self._lock:
            free = self.total - self._allocated
            granted = max(minimum, min(requested, free))
            self._allocated += granted
            return granted

    def release(self, granted: int) -> None:
        """Return slots granted by :meth:`acquire`."""
        with self._lock:
            self._allocated = max(0, self._allocated - granted)

    def utilization(self) -> Dict[str, int]:
        """Operational snapshot: ``{"total", "allocated", "free"}``."""
        with self._lock:
            return {
                "total": self.total,
                "allocated": self._allocated,
                "free": max(0, self.total - self._allocated),
            }


# ----------------------------------------------------------------------
# Policy and outcome types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor reacts when a unit attempt fails.

    ``max_attempts`` bounds total attempts per unit (1 = no retries).
    ``unit_timeout`` is the per-attempt wall-clock limit in seconds
    (``None`` disables it; it is only enforceable for pooled attempts —
    an in-process attempt cannot be interrupted).  Retry ``k`` (1-based)
    waits ``backoff_base * backoff_factor**(k-1)`` seconds before
    redispatch.  With ``degrade_final`` set, a unit's last attempt runs
    in the supervisor process itself — the escape hatch when the pool
    environment (not the unit) is what keeps failing.
    """

    max_attempts: int = 2
    unit_timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    degrade_final: bool = False


@dataclass(frozen=True)
class AttemptFailure:
    """One failed attempt: why, and what the worker left behind."""

    #: ``"exception"`` (unit raised), ``"timeout"`` (attempt exceeded
    #: the wall-clock limit and the worker was killed), or
    #: ``"worker-death"`` (the worker process vanished mid-unit).
    cause: str
    #: Traceback text for exceptions, a description otherwise.
    detail: str


@dataclass(frozen=True)
class UnitFailure:
    """A unit that exhausted every attempt, with its full history."""

    index: int
    kind: str
    seed: int
    instance: int
    protocol: str
    attempts: Tuple[AttemptFailure, ...]

    def describe(self) -> str:
        causes = ", ".join(a.cause for a in self.attempts)
        return (
            f"unit {self.kind}:{self.seed}:{self.instance}:{self.protocol} "
            f"failed after {len(self.attempts)} attempt(s) [{causes}]"
        )


@dataclass
class SupervisedOutcome:
    """Everything a supervised campaign produced.

    ``results`` is positionally aligned with the submitted units;
    entries of terminally failed units are ``None`` and described in
    ``failures``.  ``executed`` counts attempts that actually simulated
    to completion; ``ledger_hits`` counts units answered from the
    ledger without computing.
    """

    results: List[Optional[object]]
    failures: List[UnitFailure] = field(default_factory=list)
    executed: int = 0
    ledger_hits: int = 0
    #: True when a cooperative stop (:meth:`Supervisor.request_stop`
    #: or an external ``stop_event``) interrupted the grid with units
    #: still unresolved.  Every completed result — including those
    #: that were in flight when the stop arrived — is present in
    #: ``results`` (and in the ledger, when one is attached); the
    #: interrupted units are simply ``None`` without a failure record,
    #: so a rerun recomputes exactly them.
    stopped: bool = False

    @property
    def complete(self) -> bool:
        return not self.failures and not self.stopped


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _worker_main(conn, graph_payload: Tuple[str, object]) -> None:
    """Worker loop: receive ``(index, unit)``, send back the outcome.

    ``graph_payload`` is how the campaign topology reaches the worker:
    ``("shm", segment_name)`` attaches the shared CSR segment by name
    (zero-copy, the default), ``("pickle", bytes)`` is the legacy
    per-worker deserialization (``REPRO_NO_SHM=1`` or platforms
    without shared memory).  The worker only ever *attaches* — segment
    ownership (and unlinking) stays with the supervisor, which is what
    makes a ``kill -9`` of any worker leak-free.

    The worker owns a private duplex pipe; a unit that raises reports
    ``(index, "error", traceback)`` and the worker survives for the
    next unit.  Only process death (or a ``None`` shutdown message)
    ends the loop — and death is exactly what the supervisor's
    sentinel watch detects.
    """
    faults.mark_worker_process()
    transport, payload = graph_payload
    attached = None
    if transport == "shm":
        attached = topology_shm.attach_graph(payload)
        graph = attached.graph
    else:
        graph = graph_from_bytes(payload)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            index, unit = message
            try:
                with _cyclic_gc_paused():
                    result = run_unit(graph, *unit)
                conn.send((index, "ok", result))
            except Exception:
                conn.send((index, "error", traceback.format_exc()))
    finally:
        if attached is not None:
            del graph
            attached.close()


class _Worker:
    """Supervisor-side handle of one worker process."""

    __slots__ = ("process", "conn", "assignment", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: Unit index currently running in the worker, or None (idle).
        self.assignment: Optional[int] = None
        #: Monotonic instant the running attempt times out, or None.
        self.deadline: Optional[float] = None


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------


class Supervisor:
    """Runs a unit grid to completion under a :class:`RetryPolicy`.

    ``workers <= 0`` (or a pool that cannot be created — see
    ``use_pool`` handling in :meth:`run`) executes everything
    in-process with the same retry accounting; timeouts then cannot be
    enforced and are ignored with a warning.
    """

    def __init__(
        self,
        graph: ASGraph,
        units: Sequence[WorkUnit],
        *,
        workers: int,
        policy: Optional[RetryPolicy] = None,
        ledger: Optional[ResultLedger] = None,
        unit_keys: Optional[Sequence[str]] = None,
        stop_event: Optional[threading.Event] = None,
        on_progress: Optional[Callable[[int, int], None]] = None,
        budget: Optional[WorkerBudget] = None,
    ) -> None:
        self._graph = graph
        self._units: List[WorkUnit] = list(units)
        self._target_workers = workers
        #: With a shared budget attached, ``workers`` is a *request*:
        #: the grant acquired in :meth:`run` caps the actual pool size.
        self._budget = budget
        self._pool_cap = workers
        self._policy = policy or RetryPolicy()
        if self._policy.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._ledger = ledger
        if unit_keys is not None and len(unit_keys) != len(self._units):
            raise ValueError("unit_keys must align with units")
        self._keys = list(unit_keys) if unit_keys is not None else None

        n = len(self._units)
        self._results: List[Optional[object]] = [None] * n
        self._resolved = [False] * n
        self._attempts: List[List[AttemptFailure]] = [[] for _ in range(n)]
        self._not_before = [0.0] * n
        self._pending: List[int] = []
        self._failures: List[UnitFailure] = []
        self._executed = 0
        self._ledger_hits = 0
        self._workers: List[_Worker] = []
        #: Topology transport handed to every spawned worker:
        #: ``("shm", name)`` or ``("pickle", bytes)`` — see
        #: :func:`_worker_main`.  Set by :meth:`_run_pool`.
        self._payload: Optional[Tuple[str, object]] = None
        self._spawn_failed = False
        #: Cooperative interrupt: settable from any thread (a SIGTERM
        #: handler, the service's cancel endpoint).  Once set, no new
        #: unit is dispatched; in-flight attempts drain normally and
        #: their results are completed (and ledgered) before the run
        #: returns a partial outcome.
        self._stop = stop_event if stop_event is not None else threading.Event()
        self._on_progress = on_progress

    # -- cooperative stop ----------------------------------------------

    def request_stop(self) -> None:
        """Ask the running grid to wind down (thread/signal-safe).

        Equivalent to setting the ``stop_event`` passed at
        construction: dispatch stops immediately, in-flight units run
        to completion and are drained to the results (and the ledger),
        and :meth:`run` returns a partial outcome with
        ``stopped=True``.  Already-completed units are never lost.
        """
        self._stop.set()

    def _stop_requested(self) -> bool:
        return self._stop.is_set()

    def _notify_progress(self) -> None:
        if self._on_progress is None:
            return
        try:
            self._on_progress(sum(self._resolved), len(self._resolved))
        except Exception:
            logger.exception("progress callback raised; continuing")

    # -- bookkeeping ---------------------------------------------------

    def _unit_identity(self, index: int) -> Tuple[str, int, int, str]:
        _, kind, seed, instance, protocol = self._units[index]
        return kind, seed, instance, protocol

    def _complete(self, index: int, result: object) -> None:
        if self._resolved[index]:
            return
        self._results[index] = result
        self._resolved[index] = True
        self._executed += 1
        if self._ledger is not None and self._keys is not None:
            self._ledger.put(self._keys[index], result)
        self._notify_progress()

    def _attempt_failed(self, index: int, cause: str, detail: str) -> None:
        if self._resolved[index]:
            return
        records = self._attempts[index]
        records.append(AttemptFailure(cause=cause, detail=detail))
        kind, seed, instance, protocol = self._unit_identity(index)
        if len(records) >= self._policy.max_attempts:
            failure = UnitFailure(
                index=index,
                kind=kind,
                seed=seed,
                instance=instance,
                protocol=protocol,
                attempts=tuple(records),
            )
            self._failures.append(failure)
            self._resolved[index] = True
            logger.warning("terminal failure: %s", failure.describe())
            self._notify_progress()
        else:
            retry = len(records)  # 1-based retry ordinal
            delay = (
                self._policy.backoff_base
                * self._policy.backoff_factor ** (retry - 1)
            )
            self._not_before[index] = time.monotonic() + delay
            self._pending.append(index)
            logger.warning(
                "unit %s:%s:%s:%s attempt %d failed (%s); retrying in %.2fs",
                kind, seed, instance, protocol, retry, cause, delay,
            )

    def _is_final_attempt(self, index: int) -> bool:
        return len(self._attempts[index]) == self._policy.max_attempts - 1

    def _run_attempt_inprocess(self, index: int) -> None:
        """One attempt in the supervisor process (degraded/pool-less)."""
        try:
            with _cyclic_gc_paused():
                result = run_unit(self._graph, *self._units[index])
        except Exception:
            self._attempt_failed(index, "exception", traceback.format_exc())
        else:
            self._complete(index, result)

    # -- ledger preload ------------------------------------------------

    def _preload_from_ledger(self) -> None:
        if self._ledger is None or self._keys is None:
            for index in range(len(self._units)):
                self._pending.append(index)
            return
        for index, key in enumerate(self._keys):
            if key in self._ledger:
                self._results[index] = self._ledger.get(key)
                self._resolved[index] = True
                self._ledger_hits += 1
            else:
                self._pending.append(index)

    # -- pool management -----------------------------------------------

    def _spawn_worker(self) -> Optional[_Worker]:
        """Start one worker; on spawn failure, remember and warn once."""
        if self._spawn_failed:
            return None
        context = multiprocessing.get_context()
        try:
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, self._payload),
                daemon=True,
            )
            process.start()
        except OSError as exc:
            # Narrow degradation point: only *pool creation* failures
            # (sandboxes without process support) fall back in-process;
            # worker-side crashes are supervised, never swallowed.
            self._spawn_failed = True
            logger.warning(
                "cannot spawn worker processes (%s); degrading to "
                "in-process execution", exc,
            )
            return None
        child_conn.close()
        worker = _Worker(process, parent_conn)
        self._workers.append(worker)
        return worker

    def _discard_worker(self, worker: _Worker, *, kill: bool) -> None:
        self._workers.remove(worker)
        if kill and worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
        worker.process.join(timeout=2.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def _shutdown_pool(self) -> None:
        for worker in list(self._workers):
            try:
                worker.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for worker in list(self._workers):
            self._discard_worker(worker, kill=True)

    # -- message handling ----------------------------------------------

    def _handle_message(self, worker: _Worker, message) -> None:
        index, status, payload = message
        if worker.assignment == index:
            worker.assignment = None
            worker.deadline = None
        if status == "ok":
            self._complete(index, payload)
        else:
            self._attempt_failed(index, "exception", payload)

    def _drain(self, worker: _Worker) -> None:
        while True:
            try:
                if not worker.conn.poll():
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                return
            except Exception:
                # A worker that died mid-send leaves a truncated pickle;
                # the sentinel path will charge its assignment.
                return
            self._handle_message(worker, message)

    # -- scheduling ----------------------------------------------------

    def _next_eligible(self, now: float) -> Optional[int]:
        for position, index in enumerate(self._pending):
            if self._not_before[index] <= now:
                return self._pending.pop(position)
        return None

    def _earliest_backoff(self) -> Optional[float]:
        if not self._pending:
            return None
        return min(self._not_before[index] for index in self._pending)

    def _dispatch(self) -> None:
        """Hand eligible pending units to idle (or new) workers."""
        while self._pending:
            now = time.monotonic()
            index = self._next_eligible(now)
            if index is None:
                return
            if self._policy.degrade_final and self._is_final_attempt(index):
                # Last chance: bypass the pool entirely.
                logger.warning(
                    "degrading final attempt of unit %s:%s:%s:%s to the "
                    "in-process path", *self._unit_identity(index),
                )
                self._run_attempt_inprocess(index)
                continue
            worker = next(
                (w for w in self._workers if w.assignment is None), None
            )
            if worker is None and len(self._workers) < self._pool_cap:
                worker = self._spawn_worker()
            if worker is None:
                if not self._workers:
                    # No pool at all: run the attempt where we stand.
                    self._run_attempt_inprocess(index)
                    continue
                self._pending.insert(0, index)
                return
            try:
                worker.conn.send((index, self._units[index]))
            except (OSError, ValueError, BrokenPipeError):
                # The worker died between tasks; charge nothing, retire
                # it, and redispatch on the next loop pass.
                self._pending.insert(0, index)
                self._discard_worker(worker, kill=True)
                continue
            worker.assignment = index
            worker.deadline = (
                time.monotonic() + self._policy.unit_timeout
                if self._policy.unit_timeout is not None
                else None
            )

    def _wait_timeout(self) -> Optional[float]:
        now = time.monotonic()
        instants = [
            w.deadline for w in self._workers if w.deadline is not None
        ]
        backoff = self._earliest_backoff()
        if backoff is not None and any(
            w.assignment is None for w in self._workers
        ):
            instants.append(backoff)
        if not instants:
            return None
        return max(0.0, min(instants) - now)

    def _reap_timeouts(self) -> None:
        if self._policy.unit_timeout is None:
            return
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.assignment is None or worker.deadline is None:
                continue
            if now < worker.deadline:
                continue
            self._drain(worker)
            if worker.assignment is None:
                continue  # the result arrived just in time
            index = worker.assignment
            worker.assignment = None
            self._discard_worker(worker, kill=True)
            self._attempt_failed(
                index,
                "timeout",
                f"attempt exceeded the {self._policy.unit_timeout:g}s "
                "wall-clock limit; worker killed",
            )

    def _reap_deaths(self, dead: List[_Worker]) -> None:
        for worker in dead:
            # A result may have been sent before the process died.
            self._drain(worker)
            index = worker.assignment
            exitcode = worker.process.exitcode
            worker.assignment = None
            self._discard_worker(worker, kill=False)
            if index is not None:
                self._attempt_failed(
                    index,
                    "worker-death",
                    f"worker process died (exit code {exitcode}) while "
                    "running the unit",
                )

    # -- main loop -----------------------------------------------------

    def _outcome(self) -> SupervisedOutcome:
        return SupervisedOutcome(
            results=self._results,
            failures=self._failures,
            executed=self._executed,
            ledger_hits=self._ledger_hits,
            stopped=self._stop_requested() and not all(self._resolved),
        )

    def _share_topology(self) -> Optional[topology_shm.SharedGraph]:
        """Publish the graph for zero-copy worker attach, if possible.

        Returns the owning handle (to destroy in the pool's
        ``finally``) or ``None`` when shared memory is disabled
        (``REPRO_NO_SHM=1``) or unavailable — the pickle fallback then
        applies.  Export failure is never fatal: the campaign still
        runs, just without the zero-copy fan-out.
        """
        if os.environ.get("REPRO_NO_SHM") == "1":
            return None
        try:
            return topology_shm.share_graph(self._graph)
        except Exception as exc:
            logger.warning(
                "shared-memory topology export unavailable (%s); "
                "falling back to pickled topology", exc,
            )
            return None

    def _run_pool(self) -> None:
        shared = self._share_topology()
        if shared is not None:
            self._payload = ("shm", shared.name)
        else:
            self._payload = ("pickle", graph_to_bytes(self._graph))
        try:
            while self._pending or any(
                w.assignment is not None for w in self._workers
            ):
                stopping = self._stop_requested()
                if not stopping:
                    self._dispatch()
                busy = [w for w in self._workers if w.assignment is not None]
                if stopping and not busy:
                    # Every in-flight unit has drained (completed and,
                    # with a ledger attached, persisted); the rest of
                    # the grid is left unresolved for a resume.
                    break
                if not busy:
                    if not self._pending:
                        break
                    backoff = self._earliest_backoff()
                    if backoff is not None and not any(
                        w.assignment is None for w in self._workers
                    ) and not self._spawn_failed:
                        # Dispatch will spawn/assign next pass.
                        continue
                    if backoff is not None:
                        # Event.wait, not sleep: a stop request cuts
                        # the backoff pause short.
                        self._stop.wait(max(0.0, backoff - time.monotonic()))
                    continue
                watch: Dict[object, _Worker] = {}
                for worker in busy:
                    watch[worker.conn] = worker
                    watch[worker.process.sentinel] = worker
                ready = connection.wait(
                    list(watch), timeout=self._wait_timeout()
                )
                dead: List[_Worker] = []
                for obj in ready:
                    worker = watch[obj]
                    if obj is worker.conn:
                        self._drain(worker)
                    elif worker in self._workers and worker not in dead:
                        dead.append(worker)
                self._reap_deaths([w for w in dead if w in self._workers])
                self._reap_timeouts()
        finally:
            self._shutdown_pool()
            if shared is not None:
                # Unlink *after* the pool is down, no matter how the
                # grid ended (completion, stop, worker massacre): the
                # supervisor is the single owner, so no campaign ever
                # leaves an orphaned segment behind.
                shared.destroy()
            self._payload = None
            clear_twin_start_cache()

    def _run_inprocess(self) -> None:
        if self._policy.unit_timeout is not None:
            logger.warning(
                "unit_timeout is not enforceable on the in-process path; "
                "attempts run to completion"
            )
        try:
            with _cyclic_gc_paused():
                while self._pending:
                    if self._stop_requested():
                        # Between units is the only interruption point
                        # on this path (an attempt cannot be unwound);
                        # everything already completed stays completed.
                        break
                    now = time.monotonic()
                    index = self._next_eligible(now)
                    if index is None:
                        earliest = self._earliest_backoff()
                        # Event.wait, not sleep: a stop request cuts
                        # the backoff pause short.
                        self._stop.wait(max(0.0, earliest - now))
                        continue
                    self._run_attempt_inprocess(index)
        finally:
            # A twin-start snapshot whose twin never ran must not
            # outlive the grid that parked it.
            clear_twin_start_cache()

    def run(self) -> SupervisedOutcome:
        """Execute every unit; never raises for unit-level failures.

        A cooperative stop (see :meth:`request_stop`) returns early
        with ``stopped=True`` on the outcome: completed units (and the
        structured failures so far) are all present, unrun units are
        ``None``, and a rerun — same grid, same ledger — recomputes
        exactly the remainder.

        With a shared :class:`WorkerBudget`, slots are acquired here —
        after the ledger preload, so a fully-ledgered resume holds zero
        slots — and released when the grid ends.  The grant (never more
        than the pending unit count needs) caps the pool; a one-slot
        grant degrades to the in-process path.  Worker count is
        result-invariant, so contention shapes only the schedule.
        """
        self._preload_from_ledger()
        self._notify_progress()
        if not self._pending:
            return self._outcome()
        granted = None
        if self._budget is not None:
            want = max(1, min(self._target_workers, len(self._pending)))
            granted = self._budget.acquire(want)
            self._pool_cap = granted
        try:
            if self._pool_cap >= 2 and len(self._pending) > 1:
                self._run_pool()
            else:
                self._run_inprocess()
        finally:
            if granted is not None:
                self._budget.release(granted)
        return self._outcome()
