"""Run one failure scenario or timed episode under one protocol.

Two execution paths share the network construction and the twin-start
cache:

* :func:`run_scenario` — the paper's single-instant path.  **When
  events apply**: links listed under ``Scenario.restored_links`` are
  failed *before* initial convergence; after the network converges and
  its trace is cleared, the scenario's failures and restorations are
  applied synchronously (``failed_links`` → ``failed_ases`` →
  ``restored_links``, in that order, with no simulated time between
  them) and the run drains to convergence once.
* :func:`run_episode` — the timed multi-phase path.  **When events
  apply**: ``Episode.pre_failed_links`` are failed before initial
  convergence; each episode step is then *scheduled* on the engine
  (:meth:`repro.sim.engine.Engine.post_at`) at its absolute offset
  from the post-convergence instant and fires mid-run as an ordinary
  event — ordered against protocol timers by the engine's total
  ``(time, insertion-seq)`` order — before a single drain runs the
  whole episode to quiescence.

The two R-BGP variants (``rbgp`` / ``rbgp-norci``) differ only in how
they react to root-cause information, which cannot exist before the
first failure — so their *initial convergence* is one and the same
computation.  Both paths exploit that: after starting one variant they
snapshot the converged network (a pickle with the topology shared by
reference) and restore the snapshot for the twin, flipping the ``rci``
flag, instead of re-simulating an identical start.  The cache key is
the complete pre-convergence input — graph identity/version,
destination, seed, and the *pre-failed link set* (a scenario's
``restored_links``, an episode's ``pre_failed_links``) — so runs whose
starts could differ never share; sharing is additionally gated on
:meth:`repro.rbgp.network.RBGPNetwork.start_is_rci_invariant` — a
per-speaker runtime proof that no RCI-sensitive code path was reached
— and falls back to a fresh start otherwise, so results are
byte-identical either way (the golden determinism tests pin this).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.transient import (
    EpisodeSegment,
    TransientReport,
    analyze_episode_transient_problems,
    analyze_transient_problems,
)
from repro.bgp.network import BGPNetwork, NetworkConfig
from repro.errors import ConfigurationError
from repro.forwarding.bgp_plane import BGPDataPlane
from repro.forwarding.rbgp_plane import PRIMARY, RBGPDataPlane
from repro.forwarding.stamp_plane import STAMPDataPlane
from repro.forwarding.walk import WalkClassifier
from repro.rbgp.network import RBGPNetwork
from repro.experiments.scenarios import (
    Episode,
    EpisodeEvent,
    EventKind,
    Scenario,
)
from repro.sim.tracing import ForwardingTrace
from repro.stamp.network import STAMPConfig, STAMPNetwork
from repro.topology.generators import InternetTopologyConfig
from repro.topology.graph import ASGraph
from repro.types import Link, normalize_link

#: Protocols compared in Figures 2-3, in the paper's display order.
PROTOCOLS: Tuple[str, ...] = ("bgp", "rbgp-norci", "rbgp", "stamp")

#: Human-readable labels matching the paper's legends.
PROTOCOL_LABELS: Dict[str, str] = {
    "bgp": "BGP",
    "rbgp-norci": "R-BGP without RCI",
    "rbgp": "R-BGP",
    "stamp": "STAMP",
    "stamp-intelligent": "STAMP (intelligent blue provider)",
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and seeding of a figure-reproduction experiment.

    The paper simulates the full measured AS graph (~27k ASes) over 100
    instances; defaults here are laptop-sized (see DESIGN.md section 4
    on the scale substitution) and every knob is adjustable.
    """

    seed: int = 0
    topology: InternetTopologyConfig = field(
        default_factory=InternetTopologyConfig
    )
    n_instances: int = 20
    protocols: Tuple[str, ...] = PROTOCOLS
    #: Worker processes for the (instance, protocol) fan-out; 1 runs
    #: in-process.  Results are merged in canonical order, so any
    #: worker count produces byte-identical statistics.
    workers: int = 1
    #: Re-attempts after a unit's first failure (attempts = retries+1).
    #: Retries cannot change results — units are pure — only whether a
    #: transient fault (worker killed, hung simulation) loses a unit.
    retries: int = 1
    #: Per-attempt wall-clock limit in seconds (None disables; only
    #: enforceable when a worker pool is in use).
    unit_timeout: Optional[float] = None
    #: Base of the exponential retry backoff, in seconds.
    retry_backoff: float = 0.5
    #: Path of the crash-safe content-addressed result ledger; set to
    #: make campaigns resumable and overlapping sweeps incremental
    #: (see docs/robustness.md).
    ledger_path: Optional[str] = None


def derive_run_seed(seed: int, kind: str, instance: int) -> int:
    """Per-run simulation seed, disjoint across experiment kinds.

    Hashes the same ``f"{seed}:{kind}:{instance}"`` scheme the scenario
    RNGs are seeded with (the former ``seed * 1_000 + instance`` stride
    collided across kinds and overflowed at ``n_instances >= 1000``).
    """
    digest = hashlib.sha256(f"{seed}:{kind}:{instance}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class ProtocolRun:
    """Outcome of one (scenario, protocol) simulation."""

    protocol: str
    scenario: Scenario
    report: TransientReport
    convergence_time: float
    announcements: int
    withdrawals: int
    #: Updates needed to reach the *initial* converged state.
    initial_updates: int = 0
    #: Simulated seconds of initial convergence.
    initial_convergence_time: float = 0.0

    @property
    def affected(self) -> int:
        """ASes that experienced transient problems."""
        return self.report.affected_count

    @property
    def updates(self) -> int:
        """Update messages sent during the post-event episode."""
        return self.announcements + self.withdrawals

    @property
    def disruption_duration(self) -> float:
        """Seconds the data plane kept dropping packets (see report)."""
        return self.report.disruption_duration


def build_network(
    protocol: str,
    graph: ASGraph,
    destination,
    *,
    seed: int = 0,
    network_config: Optional[NetworkConfig] = None,
) -> Tuple[object, WalkClassifier]:
    """Instantiate the network and matching data plane for a protocol."""
    if protocol == "bgp":
        config = network_config or NetworkConfig(seed=seed)
        return BGPNetwork(graph, destination, config), BGPDataPlane(destination)
    if protocol == "rbgp":
        config = network_config or NetworkConfig(seed=seed)
        return (
            RBGPNetwork(graph, destination, config, rci=True),
            RBGPDataPlane(destination, rci=True, graph=graph),
        )
    if protocol == "rbgp-norci":
        config = network_config or NetworkConfig(seed=seed)
        return (
            RBGPNetwork(graph, destination, config, rci=False),
            RBGPDataPlane(destination, rci=False, graph=graph),
        )
    if protocol in ("stamp", "stamp-intelligent"):
        if isinstance(network_config, STAMPConfig):
            config = network_config
        else:
            config = STAMPConfig(
                seed=seed,
                intelligent_selection=(protocol == "stamp-intelligent"),
            )
        return STAMPNetwork(graph, destination, config), STAMPDataPlane(destination)
    raise ConfigurationError(f"unknown protocol {protocol!r}")


class _StartSnapshot:
    """A started network, pickled with the topology shared by reference.

    The graph is detached during pickling — the network's own
    reference is swapped out and every speaker's ``__getstate__``
    drops its copy — and re-bound to the *same* :class:`ASGraph`
    object on restore.  The snapshot therefore costs only the protocol
    state (RIBs, channels, RNG), not a topology copy, the restored
    network keeps using the caller's indexed graph views, and the
    pickled object graph never contains the topology at all (a
    per-object ``persistent_id`` hook would cost one Python call per
    pickled object — six figures per snapshot).
    """

    def __init__(self, network, graph: ASGraph) -> None:
        network.graph = None
        try:
            self._payload = pickle.dumps(
                network, protocol=pickle.HIGHEST_PROTOCOL
            )
        finally:
            network.graph = graph
        self._graph = graph

    def restore(self):
        network = pickle.loads(self._payload)
        graph = self._graph
        network.graph = graph
        for speaker in network.speakers.values():
            speaker.graph = graph
        return network


#: Single-slot cache for R-BGP twin-start sharing:
#: (graph, graph version, destination, seed, pre-failed links) ->
#: (snapshot, initial convergence time).  One slot suffices — the twin
#: runs back-to-back within one instance — and bounds memory to one
#: pickled payload (sub-MB; the graph is held by reference, and the
#: network itself is never retained live).  A new rbgp-family start
#: overwrites it; grid runners clear it when a figure completes (see
#: :func:`clear_twin_start_cache`), so a snapshot whose twin never ran
#: does not outlive its figure.
_RBGP_START_SLOT: Optional[Tuple[Tuple, _StartSnapshot, float]] = None


def clear_twin_start_cache() -> None:
    """Drop any parked twin-start snapshot (end of a figure grid)."""
    global _RBGP_START_SLOT
    _RBGP_START_SLOT = None

_RBGP_PROTOCOLS = frozenset({"rbgp", "rbgp-norci"})


def _rbgp_start_key(
    graph: ASGraph, destination, seed: int, pre_failed: Tuple[Link, ...]
) -> Tuple:
    """Twin-start cache key: the complete pre-convergence input.

    ``pre_failed`` is the normalized, sorted tuple of links that start
    out failed — a scenario's ``restored_links`` or an episode's
    ``pre_failed_links``.  Everything applied *after* initial
    convergence (the scenario's instantaneous events, the episode's
    scheduled steps) cannot influence the snapshot and is deliberately
    excluded; everything that shapes the start is included, so two runs
    whose initial convergence could differ never share a snapshot.
    """
    return (graph, graph.version, destination, seed, pre_failed)


def _normalized_pre_failed(links) -> Tuple[Link, ...]:
    return tuple(sorted(normalize_link(a, b) for a, b in links))


def _acquire_started_network(
    graph: ASGraph,
    destination,
    protocol: str,
    seed: int,
    network_config: Optional[NetworkConfig],
    pre_failed_links,
):
    """Build — or restore from the twin-start slot — a started network.

    ``pre_failed_links`` start out failed before initial convergence
    (in the caller's order; the cache key uses the normalized sorted
    tuple).  Returns ``(network, plane, initial_convergence_time)``
    with the trace already cleared of initial churn.
    """
    global _RBGP_START_SLOT
    pre_failed = _normalized_pre_failed(pre_failed_links)
    network = None
    plane = None
    initial_convergence_time = 0.0
    shareable = protocol in _RBGP_PROTOCOLS and network_config is None
    if shareable:
        key = _rbgp_start_key(graph, destination, seed, pre_failed)
        slot = _RBGP_START_SLOT
        if (
            slot is not None
            and slot[0][0] is key[0]
            and slot[0][1:] == key[1:]
        ):
            _RBGP_START_SLOT = None  # consume: the twin runs once
            network = slot[1].restore()
            network.set_rci(protocol == "rbgp")
            initial_convergence_time = slot[2]
            plane = RBGPDataPlane(
                destination, rci=(protocol == "rbgp"), graph=graph
            )
    if network is None:
        network, plane = build_network(
            protocol,
            graph,
            destination,
            seed=seed,
            network_config=network_config,
        )
        # Links that will *recover* during the run start out failed.
        for a, b in pre_failed_links:
            network.transport.fail_link(a, b)
        initial_convergence_time = network.start()
        if shareable and network.start_is_rci_invariant():
            _RBGP_START_SLOT = (
                _rbgp_start_key(graph, destination, seed, pre_failed),
                _StartSnapshot(network, graph),
                initial_convergence_time,
            )
    return network, plane, initial_convergence_time


def run_scenario(
    graph: ASGraph,
    scenario: Scenario,
    protocol: str,
    *,
    seed: int = 0,
    network_config: Optional[NetworkConfig] = None,
) -> ProtocolRun:
    """Simulate one single-instant scenario; analyze the trace.

    Exact event timing: ``scenario.restored_links`` are failed before
    the network is started; initial convergence runs and the trace is
    cleared; then — at the converged instant, with no engine event in
    between — ``failed_links`` fail, ``failed_ases`` fail, and
    ``restored_links`` are restored, synchronously and in that order.
    A single drain then runs the reaction to convergence.  Events at
    *different* simulated times are :func:`run_episode`'s job.
    """
    network, plane, initial_convergence_time = _acquire_started_network(
        graph,
        scenario.destination,
        protocol,
        seed,
        network_config,
        scenario.restored_links,
    )

    initial_state = network.forwarding_state()
    announcements_before = network.stats.announcements
    withdrawals_before = network.stats.withdrawals

    for a, b in scenario.failed_links:
        network.fail_link(a, b)
    for asn in scenario.failed_ases:
        network.fail_as(asn)
    for a, b in scenario.restored_links:
        network.restore_link(a, b)
    convergence_time = network.run_to_convergence()

    failed_links = frozenset(
        normalize_link(a, b) for a, b in scenario.failed_links
    )
    failed_ases = frozenset(scenario.failed_ases)
    report = analyze_transient_problems(
        network.trace,
        initial_state,
        plane,
        graph.ases,
        failed_links=failed_links,
        failed_ases=failed_ases,
    )
    announcements_after = network.stats.announcements
    withdrawals_after = network.stats.withdrawals
    # The run is fully extracted; break the network's cycles so its
    # memory frees by refcount even while cyclic GC is paused.
    network.dispose()
    return ProtocolRun(
        protocol=protocol,
        scenario=scenario,
        report=report,
        convergence_time=convergence_time,
        announcements=announcements_after - announcements_before,
        withdrawals=withdrawals_after - withdrawals_before,
        initial_updates=announcements_before + withdrawals_before,
        initial_convergence_time=initial_convergence_time,
    )


# ----------------------------------------------------------------------
# Timed episodes
# ----------------------------------------------------------------------


@dataclass
class EpisodePhase:
    """One injection instant of an episode run and its attribution."""

    #: Phase index (position among the episode's distinct instants).
    index: int
    #: Indices into ``episode.steps`` applied at this instant.
    step_indices: Tuple[int, ...]
    #: Absolute simulated time the events were injected.
    time: float
    events: Tuple[EpisodeEvent, ...]
    #: Phase-scoped transient analysis (eligibility re-evaluated at
    #: the phase's start), so disruption is attributable per event.
    report: TransientReport


@dataclass
class EpisodeRun:
    """Outcome of one (episode, protocol) simulation.

    Exposes the same metric surface as :class:`ProtocolRun`
    (``affected``, ``updates``, ``disruption_duration``, ...) computed
    from the episode-wide overall report, so campaign drivers aggregate
    episode runs exactly like scenario runs — plus the per-phase
    breakdown under :attr:`phases`.
    """

    protocol: str
    episode: Episode
    #: Episode-wide report (problem intervals span phase boundaries).
    report: TransientReport
    phases: Tuple[EpisodePhase, ...]
    #: Simulated seconds from the post-initial-convergence instant to
    #: final quiescence (includes any idle offset before the first
    #: step; the packaged builders all start at offset 0.0).
    convergence_time: float
    announcements: int
    withdrawals: int
    initial_updates: int = 0
    initial_convergence_time: float = 0.0

    @property
    def affected(self) -> int:
        """ASes with transient problems at any point of the episode."""
        return self.report.affected_count

    @property
    def updates(self) -> int:
        """Update messages sent across all phases of the episode."""
        return self.announcements + self.withdrawals

    @property
    def disruption_duration(self) -> float:
        """Seconds the data plane kept dropping packets (all phases)."""
        return self.report.disruption_duration


def _apply_episode_event(network, event: EpisodeEvent) -> None:
    """Apply one episode event to a network (any protocol plane)."""
    kind = event.kind
    if kind is EventKind.LINK_FAIL:
        network.fail_link(*event.link)
    elif kind is EventKind.LINK_RESTORE:
        network.restore_link(*event.link)
    elif kind is EventKind.AS_FAIL:
        network.fail_as(event.asn)
    elif kind is EventKind.AS_RESTORE:
        network.restore_as(event.asn)
    else:  # pragma: no cover - exhaustive over EventKind
        raise ConfigurationError(f"unknown episode event kind {kind!r}")


def collect_episode_segments(
    network, episode: Episode, instants=None
) -> Tuple[List[EpisodeSegment], float]:
    """Drive one started network through an episode; return its phases.

    Schedules one injector per distinct step offset (via the engine's
    handle-free ``post_at`` at ``now + offset``), drains the run to
    quiescence, and slices the trace into per-phase
    :class:`~repro.analysis.transient.EpisodeSegment` values — the
    exact input both episode analyzers consume.  Shared by
    :func:`run_episode` (which passes its already-computed
    ``episode.instants()`` so both stay one derivation) and the perf
    bench (which needs the segments without the analysis).  Returns
    ``(segments, convergence_time)``.
    """
    engine = network.engine
    trace = network.trace
    transport = network.transport
    base = engine.now
    if instants is None:
        instants = episode.instants()
    #: Per-phase marks captured by the injectors at fire time:
    #: (time, pre-injection state, trace start index, post-injection
    #: failed links, post-injection failed ASes, pre-injection failed
    #: ASes).
    marks: List[Tuple[float, Dict, int, frozenset, frozenset, frozenset]] = []

    def _make_injector(events: Tuple[EpisodeEvent, ...]):
        def inject() -> None:
            time = engine.now
            state = network.forwarding_state()
            trace_start = len(trace.changes)
            failed_ases_before = frozenset(transport.failed_ases)
            for event in events:
                _apply_episode_event(network, event)
            marks.append(
                (
                    time,
                    state,
                    trace_start,
                    frozenset(transport.failed_links),
                    frozenset(transport.failed_ases),
                    failed_ases_before,
                )
            )
        return inject

    for offset, _, events in instants:
        engine.post_at(base + offset, _make_injector(events))
    convergence_time = network.run_to_convergence()

    segments: List[EpisodeSegment] = []
    for k, (
        time, state, trace_start, failed_links, failed_ases, failed_before
    ) in enumerate(marks):
        trace_end = marks[k + 1][2] if k + 1 < len(marks) else len(trace.changes)
        segments.append(
            EpisodeSegment(
                trace=ForwardingTrace(changes=trace.changes[trace_start:trace_end]),
                initial_state=state,
                failed_links=failed_links,
                failed_ases=failed_ases,
                start_time=time,
                failed_ases_at_start=failed_before,
            )
        )
    return segments, convergence_time


def run_episode(
    graph: ASGraph,
    episode: Episode,
    protocol: str,
    *,
    seed: int = 0,
    network_config: Optional[NetworkConfig] = None,
) -> EpisodeRun:
    """Simulate one timed episode under one protocol; analyze per phase.

    Exact event timing: ``episode.pre_failed_links`` are failed before
    the network starts; after initial convergence (trace cleared), one
    injector per distinct step offset is scheduled via
    :meth:`repro.sim.engine.Engine.post_at` at ``converged_time +
    offset``.  A single engine drain then runs the whole episode:
    injectors fire mid-run as ordinary events, snapshot the
    pre-injection forwarding state, and apply their instant's events
    synchronously (in step order).  Because injectors are scheduled
    before any post-convergence protocol activity, an injection tied
    with a protocol timer at the exact same instant fires *first*
    (lower insertion seq) — the one scheduling rule episode authors
    need to know; see ``docs/scenarios.md``.

    The R-BGP twin-start snapshot cache is keyed on the episode's
    pre-convergence input (destination, seed, ``pre_failed_links``),
    so two different episodes share a start only when their initial
    convergence is provably the same computation.
    """
    network, plane, initial_convergence_time = _acquire_started_network(
        graph,
        episode.destination,
        protocol,
        seed,
        network_config,
        episode.pre_failed_links,
    )

    announcements_before = network.stats.announcements
    withdrawals_before = network.stats.withdrawals

    instants = episode.instants()
    segments, convergence_time = collect_episode_segments(
        network, episode, instants
    )
    analysis = analyze_episode_transient_problems(segments, plane, graph.ases)
    phases = tuple(
        EpisodePhase(
            index=k,
            step_indices=instants[k][1],
            time=segments[k].start_time,
            events=instants[k][2],
            report=analysis.phases[k],
        )
        for k in range(len(segments))
    )

    announcements_after = network.stats.announcements
    withdrawals_after = network.stats.withdrawals
    network.dispose()
    return EpisodeRun(
        protocol=protocol,
        episode=episode,
        report=analysis.overall,
        phases=phases,
        convergence_time=convergence_time,
        announcements=announcements_after - announcements_before,
        withdrawals=withdrawals_after - withdrawals_before,
        initial_updates=announcements_before + withdrawals_before,
        initial_convergence_time=initial_convergence_time,
    )
