"""Run one failure scenario under one protocol and count the damage.

The two R-BGP variants (``rbgp`` / ``rbgp-norci``) differ only in how
they react to root-cause information, which cannot exist before the
first failure — so their *initial convergence* is one and the same
computation.  ``run_scenario`` exploits that: after starting one
variant it snapshots the converged network (a pickle with the topology
shared by reference) and restores the snapshot for the twin, flipping
the ``rci`` flag, instead of re-simulating an identical start.  The
sharing is gated on :meth:`repro.rbgp.network.RBGPNetwork
.start_is_rci_invariant` — a per-speaker runtime proof that no
RCI-sensitive code path was reached — and falls back to a fresh start
otherwise, so results are byte-identical either way (the golden
determinism test pins this).
"""

from __future__ import annotations

import hashlib
import io
import pickle
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.transient import TransientReport, analyze_transient_problems
from repro.bgp.network import BGPNetwork, NetworkConfig
from repro.errors import ConfigurationError
from repro.forwarding.bgp_plane import BGPDataPlane
from repro.forwarding.rbgp_plane import PRIMARY, RBGPDataPlane
from repro.forwarding.stamp_plane import STAMPDataPlane
from repro.forwarding.walk import WalkClassifier
from repro.rbgp.network import RBGPNetwork
from repro.experiments.scenarios import Scenario
from repro.stamp.network import STAMPConfig, STAMPNetwork
from repro.topology.generators import InternetTopologyConfig
from repro.topology.graph import ASGraph
from repro.types import normalize_link

#: Protocols compared in Figures 2-3, in the paper's display order.
PROTOCOLS: Tuple[str, ...] = ("bgp", "rbgp-norci", "rbgp", "stamp")

#: Human-readable labels matching the paper's legends.
PROTOCOL_LABELS: Dict[str, str] = {
    "bgp": "BGP",
    "rbgp-norci": "R-BGP without RCI",
    "rbgp": "R-BGP",
    "stamp": "STAMP",
    "stamp-intelligent": "STAMP (intelligent blue provider)",
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and seeding of a figure-reproduction experiment.

    The paper simulates the full measured AS graph (~27k ASes) over 100
    instances; defaults here are laptop-sized (see DESIGN.md section 4
    on the scale substitution) and every knob is adjustable.
    """

    seed: int = 0
    topology: InternetTopologyConfig = field(
        default_factory=InternetTopologyConfig
    )
    n_instances: int = 20
    protocols: Tuple[str, ...] = PROTOCOLS
    #: Worker processes for the (instance, protocol) fan-out; 1 runs
    #: in-process.  Results are merged in canonical order, so any
    #: worker count produces byte-identical statistics.
    workers: int = 1


def derive_run_seed(seed: int, kind: str, instance: int) -> int:
    """Per-run simulation seed, disjoint across experiment kinds.

    Hashes the same ``f"{seed}:{kind}:{instance}"`` scheme the scenario
    RNGs are seeded with (the former ``seed * 1_000 + instance`` stride
    collided across kinds and overflowed at ``n_instances >= 1000``).
    """
    digest = hashlib.sha256(f"{seed}:{kind}:{instance}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class ProtocolRun:
    """Outcome of one (scenario, protocol) simulation."""

    protocol: str
    scenario: Scenario
    report: TransientReport
    convergence_time: float
    announcements: int
    withdrawals: int
    #: Updates needed to reach the *initial* converged state.
    initial_updates: int = 0
    #: Simulated seconds of initial convergence.
    initial_convergence_time: float = 0.0

    @property
    def affected(self) -> int:
        """ASes that experienced transient problems."""
        return self.report.affected_count

    @property
    def updates(self) -> int:
        """Update messages sent during the post-event episode."""
        return self.announcements + self.withdrawals

    @property
    def disruption_duration(self) -> float:
        """Seconds the data plane kept dropping packets (see report)."""
        return self.report.disruption_duration


def build_network(
    protocol: str,
    graph: ASGraph,
    destination,
    *,
    seed: int = 0,
    network_config: Optional[NetworkConfig] = None,
) -> Tuple[object, WalkClassifier]:
    """Instantiate the network and matching data plane for a protocol."""
    if protocol == "bgp":
        config = network_config or NetworkConfig(seed=seed)
        return BGPNetwork(graph, destination, config), BGPDataPlane(destination)
    if protocol == "rbgp":
        config = network_config or NetworkConfig(seed=seed)
        return (
            RBGPNetwork(graph, destination, config, rci=True),
            RBGPDataPlane(destination, rci=True, graph=graph),
        )
    if protocol == "rbgp-norci":
        config = network_config or NetworkConfig(seed=seed)
        return (
            RBGPNetwork(graph, destination, config, rci=False),
            RBGPDataPlane(destination, rci=False, graph=graph),
        )
    if protocol in ("stamp", "stamp-intelligent"):
        if isinstance(network_config, STAMPConfig):
            config = network_config
        else:
            config = STAMPConfig(
                seed=seed,
                intelligent_selection=(protocol == "stamp-intelligent"),
            )
        return STAMPNetwork(graph, destination, config), STAMPDataPlane(destination)
    raise ConfigurationError(f"unknown protocol {protocol!r}")


class _StartSnapshot:
    """A started network, pickled with the topology shared by reference.

    The graph is replaced by a persistent-id token during pickling and
    re-bound to the *same* :class:`ASGraph` object on restore, so the
    snapshot costs only the protocol state (RIBs, channels, RNG), not a
    topology copy — and the restored network keeps using the caller's
    indexed graph views.
    """

    _GRAPH_TOKEN = "graph"

    def __init__(self, network, graph: ASGraph) -> None:
        buffer = io.BytesIO()
        pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        pickler.persistent_id = (
            lambda obj: self._GRAPH_TOKEN if obj is graph else None
        )
        pickler.dump(network)
        self._payload = buffer.getvalue()
        self._graph = graph

    def restore(self):
        unpickler = pickle.Unpickler(io.BytesIO(self._payload))
        unpickler.persistent_load = lambda pid: self._graph
        return unpickler.load()


#: Single-slot cache for R-BGP twin-start sharing:
#: (graph, graph version, destination, seed, restored links) ->
#: (snapshot, initial convergence time).  One slot suffices — the twin
#: runs back-to-back within one instance — and bounds memory to one
#: pickled payload (sub-MB; the graph is held by reference, and the
#: network itself is never retained live).  A new rbgp-family start
#: overwrites it; grid runners clear it when a figure completes (see
#: :func:`clear_twin_start_cache`), so a snapshot whose twin never ran
#: does not outlive its figure.
_RBGP_START_SLOT: Optional[Tuple[Tuple, _StartSnapshot, float]] = None


def clear_twin_start_cache() -> None:
    """Drop any parked twin-start snapshot (end of a figure grid)."""
    global _RBGP_START_SLOT
    _RBGP_START_SLOT = None

_RBGP_PROTOCOLS = frozenset({"rbgp", "rbgp-norci"})


def _rbgp_start_key(graph: ASGraph, scenario: Scenario, seed: int) -> Tuple:
    restored = tuple(
        sorted(normalize_link(a, b) for a, b in scenario.restored_links)
    )
    return (graph, graph.version, scenario.destination, seed, restored)


def run_scenario(
    graph: ASGraph,
    scenario: Scenario,
    protocol: str,
    *,
    seed: int = 0,
    network_config: Optional[NetworkConfig] = None,
) -> ProtocolRun:
    """Simulate one scenario under one protocol; analyze the trace."""
    global _RBGP_START_SLOT
    network = None
    plane = None
    initial_convergence_time = 0.0
    shareable = protocol in _RBGP_PROTOCOLS and network_config is None
    if shareable:
        key = _rbgp_start_key(graph, scenario, seed)
        slot = _RBGP_START_SLOT
        if (
            slot is not None
            and slot[0][0] is key[0]
            and slot[0][1:] == key[1:]
        ):
            _RBGP_START_SLOT = None  # consume: the twin runs once
            network = slot[1].restore()
            network.set_rci(protocol == "rbgp")
            initial_convergence_time = slot[2]
            plane = RBGPDataPlane(
                scenario.destination, rci=(protocol == "rbgp"), graph=graph
            )
    if network is None:
        network, plane = build_network(
            protocol,
            graph,
            scenario.destination,
            seed=seed,
            network_config=network_config,
        )
        # Links that will *recover* during the event start out failed.
        for a, b in scenario.restored_links:
            network.transport.fail_link(a, b)
        initial_convergence_time = network.start()
        if shareable and network.start_is_rci_invariant():
            _RBGP_START_SLOT = (
                _rbgp_start_key(graph, scenario, seed),
                _StartSnapshot(network, graph),
                initial_convergence_time,
            )

    initial_state = network.forwarding_state()
    announcements_before = network.stats.announcements
    withdrawals_before = network.stats.withdrawals

    for a, b in scenario.failed_links:
        network.fail_link(a, b)
    for asn in scenario.failed_ases:
        network.fail_as(asn)
    for a, b in scenario.restored_links:
        network.restore_link(a, b)
    convergence_time = network.run_to_convergence()

    failed_links = frozenset(
        normalize_link(a, b) for a, b in scenario.failed_links
    )
    failed_ases = frozenset(scenario.failed_ases)
    report = analyze_transient_problems(
        network.trace,
        initial_state,
        plane,
        graph.ases,
        failed_links=failed_links,
        failed_ases=failed_ases,
    )
    announcements_after = network.stats.announcements
    withdrawals_after = network.stats.withdrawals
    # The run is fully extracted; break the network's cycles so its
    # memory frees by refcount even while cyclic GC is paused.
    network.dispose()
    return ProtocolRun(
        protocol=protocol,
        scenario=scenario,
        report=report,
        convergence_time=convergence_time,
        announcements=announcements_after - announcements_before,
        withdrawals=withdrawals_after - withdrawals_before,
        initial_updates=announcements_before + withdrawals_before,
        initial_convergence_time=initial_convergence_time,
    )
