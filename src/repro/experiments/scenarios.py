"""Failure scenarios and timed failure episodes.

Two workload shapes live here, both drawn from seeded RNGs:

* :class:`Scenario` — the paper's single-instant events (section 6.2):
  every listed failure/restoration is applied at one instant, right
  after initial convergence, by :func:`repro.experiments.runner
  .run_scenario`.  Scenario builders:

  - Figure 2 — a multi-homed destination fails one provider link;
  - Figure 3(a) — additionally, a random *indirect* provider link
    (multi-hop away) fails simultaneously;
  - Figure 3(b) — the destination fails a provider link and that same
    provider fails one of its own provider links;
  - text — a single AS (node) failure;
  - Lemma 3.1 sanity — a link recovery (route addition event).

* :class:`Episode` — a timed, multi-phase generalization: an ordered
  tuple of ``(time_offset, event)`` steps where each event fails or
  restores a link or an AS, injected *mid-run* by the engine-scheduled
  injector of :func:`repro.experiments.runner.run_episode`.  Episodes
  express workloads the single-instant model cannot: link flaps
  (fail → recover → re-fail), staggered maintenance windows, and
  correlated outages that unfold over time.  Episode builders:

  - :func:`link_flap_episode` — a provider link flaps N times;
  - :func:`staggered_maintenance_episode` — two providers are taken
    down and restored in consecutive maintenance windows;
  - :func:`correlated_outage_episode` — Figure 3(a)'s two links, but
    the second failure lands a configurable delay after the first.

See ``docs/scenarios.md`` for the full event model and the exact
timing/determinism rules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.topology.graph import ASGraph
from repro.types import ASN, Link


@dataclass(frozen=True)
class Scenario:
    """One single-instant failure scenario for one destination prefix.

    Timing semantics (see :func:`repro.experiments.runner.run_scenario`
    for the authoritative sequence): ``restored_links`` start out
    *failed before initial convergence*; then, at one instant right
    after the converged network's trace is cleared, ``failed_links``
    fail, ``failed_ases`` fail, and ``restored_links`` are restored —
    in that order, synchronously, with no simulated time passing
    between them.  For events at *different* times, use
    :class:`Episode`.
    """

    destination: ASN
    failed_links: Tuple[Link, ...] = ()
    failed_ases: Tuple[ASN, ...] = ()
    restored_links: Tuple[Link, ...] = ()
    description: str = ""


# ----------------------------------------------------------------------
# Timed episodes
# ----------------------------------------------------------------------


class EventKind(Enum):
    """What one episode event does to the network."""

    LINK_FAIL = "link_fail"
    LINK_RESTORE = "link_restore"
    AS_FAIL = "as_fail"
    AS_RESTORE = "as_restore"


_LINK_KINDS = frozenset({EventKind.LINK_FAIL, EventKind.LINK_RESTORE})


@dataclass(frozen=True)
class EpisodeEvent:
    """One atomic routing event: fail/restore one link or one AS.

    Use the factories :func:`fail_link`, :func:`restore_link`,
    :func:`fail_as`, :func:`restore_as` instead of constructing
    directly; link events carry ``link`` and AS events carry ``asn``.
    """

    kind: EventKind
    link: Optional[Link] = None
    asn: Optional[ASN] = None

    def __post_init__(self) -> None:
        if self.kind in _LINK_KINDS:
            if self.link is None or self.asn is not None:
                raise ConfigurationError(
                    f"{self.kind.value} event must carry a link and no AS"
                )
        else:
            if self.asn is None or self.link is not None:
                raise ConfigurationError(
                    f"{self.kind.value} event must carry an AS and no link"
                )


def fail_link(a: ASN, b: ASN) -> EpisodeEvent:
    """Event: the a-b link fails."""
    return EpisodeEvent(kind=EventKind.LINK_FAIL, link=(a, b))


def restore_link(a: ASN, b: ASN) -> EpisodeEvent:
    """Event: the a-b link comes back up (sessions re-establish)."""
    return EpisodeEvent(kind=EventKind.LINK_RESTORE, link=(a, b))


def fail_as(asn: ASN) -> EpisodeEvent:
    """Event: an entire AS fails (all of its sessions reset)."""
    return EpisodeEvent(kind=EventKind.AS_FAIL, asn=asn)


def restore_as(asn: ASN) -> EpisodeEvent:
    """Event: a failed AS comes back (maintenance over; cold restart)."""
    return EpisodeEvent(kind=EventKind.AS_RESTORE, asn=asn)


@dataclass(frozen=True)
class Episode:
    """A timed, multi-phase failure episode for one destination prefix.

    ``steps`` is an ordered tuple of ``(time_offset, event)`` pairs;
    offsets are simulated seconds *after initial convergence* and must
    be non-negative and non-decreasing.  Steps sharing one offset are
    applied at the same instant, in tuple order, and form one *phase*
    of the episode (see :meth:`instants`).

    ``pre_failed_links`` start out failed before initial convergence —
    the episode-model generalization of ``Scenario.restored_links`` —
    so a later ``restore_link`` step can model recovery of a link the
    network never converged over.  Because they shape the *initial*
    convergence, they are part of the R-BGP twin-start cache key (see
    :func:`repro.experiments.runner.run_episode`).
    """

    destination: ASN
    steps: Tuple[Tuple[float, EpisodeEvent], ...] = ()
    pre_failed_links: Tuple[Link, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        previous = 0.0
        for offset, event in self.steps:
            if offset < 0:
                raise ConfigurationError(
                    f"episode step offset {offset} is negative"
                )
            if offset < previous:
                raise ConfigurationError(
                    "episode steps must be ordered by non-decreasing offset"
                )
            if not isinstance(event, EpisodeEvent):
                raise ConfigurationError(
                    f"episode step carries a non-event: {event!r}"
                )
            previous = offset

    def instants(
        self,
    ) -> List[Tuple[float, Tuple[int, ...], Tuple[EpisodeEvent, ...]]]:
        """Steps grouped by injection instant.

        Returns ``[(offset, step_indices, events), ...]`` — one entry
        per distinct offset, preserving step order within an instant.
        Each entry is one *phase* of the episode: the runner injects
        its events atomically and the analyzer attributes disruption to
        it separately.
        """
        grouped: List[Tuple[float, List[int], List[EpisodeEvent]]] = []
        for index, (offset, event) in enumerate(self.steps):
            if grouped and grouped[-1][0] == offset:
                grouped[-1][1].append(index)
                grouped[-1][2].append(event)
            else:
                grouped.append((offset, [index], [event]))
        return [
            (offset, tuple(indices), tuple(events))
            for offset, indices, events in grouped
        ]


def episode_from_scenario(scenario: Scenario) -> Episode:
    """Express a single-instant :class:`Scenario` as an :class:`Episode`.

    All events land in one phase at offset ``0.0``, in the exact order
    :func:`repro.experiments.runner.run_scenario` applies them (failed
    links, failed ASes, restored links), and the scenario's
    ``restored_links`` become the episode's ``pre_failed_links``.
    """
    events: List[EpisodeEvent] = []
    for a, b in scenario.failed_links:
        events.append(fail_link(a, b))
    for asn in scenario.failed_ases:
        events.append(fail_as(asn))
    for a, b in scenario.restored_links:
        events.append(restore_link(a, b))
    return Episode(
        destination=scenario.destination,
        steps=tuple((0.0, event) for event in events),
        pre_failed_links=scenario.restored_links,
        description=scenario.description or "single-instant scenario",
    )


def _multihomed_candidates(graph: ASGraph) -> List[ASN]:
    return [asn for asn in graph.ases if graph.is_multihomed(asn)]


def _pick_multihomed(graph: ASGraph, rng: random.Random) -> ASN:
    candidates = _multihomed_candidates(graph)
    if not candidates:
        raise ConfigurationError("graph has no multi-homed AS")
    return rng.choice(candidates)


def single_provider_link_failure(graph: ASGraph, rng: random.Random) -> Scenario:
    """Figure 2: a multi-homed destination loses one provider link."""
    destination = _pick_multihomed(graph, rng)
    provider = rng.choice(graph.providers(destination))
    return Scenario(
        destination=destination,
        failed_links=((destination, provider),),
        description=f"single provider-link failure {destination}-{provider}",
    )


def _uphill_cone(graph: ASGraph, start: ASN) -> Set[ASN]:
    """All direct and indirect providers of an AS (excluding itself)."""
    cone: Set[ASN] = set()
    stack = list(graph.providers(start))
    while stack:
        node = stack.pop()
        if node in cone:
            continue
        cone.add(node)
        stack.extend(graph.providers(node))
    return cone


def two_link_failures_distinct_as(
    graph: ASGraph, rng: random.Random
) -> Scenario:
    """Figure 3(a): provider link + an indirect provider link elsewhere.

    The second failed link is a c2p link in the destination's uphill
    cone that shares no endpoint with the first failed link and is not
    adjacent to the destination.
    """
    destination = _pick_multihomed(graph, rng)
    provider = rng.choice(graph.providers(destination))
    first = (destination, provider)
    # "Multi-hop away": the second link must not touch the destination
    # or any of its direct providers (a provider-adjacent second
    # failure is Figure 3(b)'s same-AS case, not this one).
    nearby = {destination, *graph.providers(destination)}
    cone = _uphill_cone(graph, destination)
    candidates = [
        (customer, upper)
        for customer in sorted(cone)
        for upper in graph.providers(customer)
        if customer not in nearby and upper not in nearby
    ]
    if not candidates:
        # Degenerate graphs: fall back to a single failure.
        return Scenario(
            destination=destination,
            failed_links=(first,),
            description="two-link (distinct AS) degenerated to single",
        )
    second = rng.choice(candidates)
    return Scenario(
        destination=destination,
        failed_links=(first, second),
        description=(
            f"two links at distinct ASes: {first[0]}-{first[1]} and "
            f"{second[0]}-{second[1]}"
        ),
    )


def two_link_failures_same_as(graph: ASGraph, rng: random.Random) -> Scenario:
    """Figure 3(b): destination-provider link + that provider's own
    provider link — both failures touch the same AS."""
    destination = _pick_multihomed(graph, rng)
    providers_with_uplinks = [
        p for p in graph.providers(destination) if graph.providers(p)
    ]
    if not providers_with_uplinks:
        provider = rng.choice(graph.providers(destination))
        return Scenario(
            destination=destination,
            failed_links=((destination, provider),),
            description="two-link (same AS) degenerated to single",
        )
    provider = rng.choice(providers_with_uplinks)
    upper = rng.choice(graph.providers(provider))
    return Scenario(
        destination=destination,
        failed_links=((destination, provider), (provider, upper)),
        description=(
            f"two links at the same AS {provider}: "
            f"{destination}-{provider} and {provider}-{upper}"
        ),
    )


def provider_node_failure(graph: ASGraph, rng: random.Random) -> Scenario:
    """Section 6.2.2 text: one of the destination's providers fails
    entirely (withdraws from all neighbors)."""
    destination = _pick_multihomed(graph, rng)
    provider = rng.choice(graph.providers(destination))
    return Scenario(
        destination=destination,
        failed_ases=(provider,),
        description=f"node failure of provider {provider}",
    )


def link_recovery(graph: ASGraph, rng: random.Random) -> Scenario:
    """Route addition event (Lemma 3.1): a provider link comes back.

    The scenario lists the link under ``restored_links``; runners fail
    it before initial convergence and restore it as the event.
    """
    destination = _pick_multihomed(graph, rng)
    provider = rng.choice(graph.providers(destination))
    return Scenario(
        destination=destination,
        restored_links=((destination, provider),),
        description=f"recovery of provider link {destination}-{provider}",
    )


# ----------------------------------------------------------------------
# Episode builders
# ----------------------------------------------------------------------


def link_flap_episode(
    graph: ASGraph,
    rng: random.Random,
    *,
    period: float = 40.0,
    flaps: int = 2,
) -> Episode:
    """A multi-homed destination's provider link flaps ``flaps`` times.

    The link fails at offset 0, recovers ``period`` seconds later,
    re-fails after another ``period``, and so on — ``2 * flaps`` phases
    in total, ending restored.  With the default 30 s MRAI, a period of
    ~40 s gives the network time to partially (but not always fully)
    converge between events, which is exactly the regime where a flap
    compounds transient disruption.
    """
    if flaps < 1:
        raise ConfigurationError("a flap episode needs at least one flap")
    if period <= 0:
        raise ConfigurationError("flap period must be positive")
    destination = _pick_multihomed(graph, rng)
    provider = rng.choice(graph.providers(destination))
    steps: List[Tuple[float, EpisodeEvent]] = []
    offset = 0.0
    for _ in range(flaps):
        steps.append((offset, fail_link(destination, provider)))
        offset += period
        steps.append((offset, restore_link(destination, provider)))
        offset += period
    return Episode(
        destination=destination,
        steps=tuple(steps),
        description=(
            f"provider link {destination}-{provider} flaps {flaps}x "
            f"(period {period}s)"
        ),
    )


def staggered_maintenance_episode(
    graph: ASGraph,
    rng: random.Random,
    *,
    window: float = 60.0,
    gap: float = 30.0,
) -> Episode:
    """Two providers go down for maintenance in consecutive windows.

    The first provider AS fails at offset 0 and is restored after
    ``window`` seconds; ``gap`` seconds later the second provider fails
    for its own ``window``.  The windows never overlap, so a correctly
    operated maintenance plan should keep the destination reachable
    throughout — any transient problems are pure convergence damage.
    (A multi-homed destination always has two distinct providers, so
    every episode of this family has exactly four phases — campaigns
    rely on uniform phase counts.)
    """
    if window <= 0 or gap < 0:
        raise ConfigurationError(
            "maintenance window must be positive and gap non-negative"
        )
    destination = _pick_multihomed(graph, rng)
    providers = list(graph.providers(destination))
    first = rng.choice(providers)
    second = rng.choice([p for p in providers if p != first])
    return Episode(
        destination=destination,
        steps=(
            (0.0, fail_as(first)),
            (window, restore_as(first)),
            (window + gap, fail_as(second)),
            (2 * window + gap, restore_as(second)),
        ),
        description=(
            f"staggered maintenance of providers {first} and {second} "
            f"(window {window}s, gap {gap}s)"
        ),
    )


def correlated_outage_episode(
    graph: ASGraph,
    rng: random.Random,
    *,
    delay: float = 15.0,
) -> Episode:
    """Figure 3(a)'s two link failures, the second ``delay`` s later.

    Reuses :func:`two_link_failures_distinct_as` to draw the link pair
    — handing both builders the *same* ``random.Random`` object yields
    the same pair, since the draw order is identical — then staggers
    the second failure instead of applying both simultaneously: a
    correlated outage unfolding over time, e.g. a shared-risk group
    failing sequentially.  (Across *campaigns* the instances do not
    align: campaign RNGs are seeded per ``kind`` string, and this
    episode's kind necessarily differs from ``fig3a-distinct-as``.)
    """
    if delay < 0:
        raise ConfigurationError("outage delay must be non-negative")
    scenario = two_link_failures_distinct_as(graph, rng)
    steps: List[Tuple[float, EpisodeEvent]] = [
        (0.0, fail_link(*scenario.failed_links[0]))
    ]
    for link in scenario.failed_links[1:]:
        steps.append((delay, fail_link(*link)))
    return Episode(
        destination=scenario.destination,
        steps=tuple(steps),
        description=f"correlated outage ({delay}s apart): {scenario.description}",
    )
