"""Failure scenario builders matching the paper's evaluation setups.

All builders draw from a seeded RNG and return a :class:`Scenario`
describing the destination and the resources that fail.  The paper's
scenarios (section 6.2):

* Figure 2 — a multi-homed destination fails one of its provider links;
* Figure 3(a) — additionally, a random *indirect* provider link
  (multi-hop away) fails simultaneously;
* Figure 3(b) — the destination fails a provider link and that same
  provider fails one of its own provider links;
* text — a single AS (node) failure;
* Lemma 3.1 sanity — a link recovery (route addition event).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.topology.graph import ASGraph
from repro.types import ASN, Link


@dataclass(frozen=True)
class Scenario:
    """One failure scenario for one destination prefix."""

    destination: ASN
    failed_links: Tuple[Link, ...] = ()
    failed_ases: Tuple[ASN, ...] = ()
    restored_links: Tuple[Link, ...] = ()
    description: str = ""


def _multihomed_candidates(graph: ASGraph) -> List[ASN]:
    return [asn for asn in graph.ases if graph.is_multihomed(asn)]


def _pick_multihomed(graph: ASGraph, rng: random.Random) -> ASN:
    candidates = _multihomed_candidates(graph)
    if not candidates:
        raise ConfigurationError("graph has no multi-homed AS")
    return rng.choice(candidates)


def single_provider_link_failure(graph: ASGraph, rng: random.Random) -> Scenario:
    """Figure 2: a multi-homed destination loses one provider link."""
    destination = _pick_multihomed(graph, rng)
    provider = rng.choice(graph.providers(destination))
    return Scenario(
        destination=destination,
        failed_links=((destination, provider),),
        description=f"single provider-link failure {destination}-{provider}",
    )


def _uphill_cone(graph: ASGraph, start: ASN) -> Set[ASN]:
    """All direct and indirect providers of an AS (excluding itself)."""
    cone: Set[ASN] = set()
    stack = list(graph.providers(start))
    while stack:
        node = stack.pop()
        if node in cone:
            continue
        cone.add(node)
        stack.extend(graph.providers(node))
    return cone


def two_link_failures_distinct_as(
    graph: ASGraph, rng: random.Random
) -> Scenario:
    """Figure 3(a): provider link + an indirect provider link elsewhere.

    The second failed link is a c2p link in the destination's uphill
    cone that shares no endpoint with the first failed link and is not
    adjacent to the destination.
    """
    destination = _pick_multihomed(graph, rng)
    provider = rng.choice(graph.providers(destination))
    first = (destination, provider)
    # "Multi-hop away": the second link must not touch the destination
    # or any of its direct providers (a provider-adjacent second
    # failure is Figure 3(b)'s same-AS case, not this one).
    nearby = {destination, *graph.providers(destination)}
    cone = _uphill_cone(graph, destination)
    candidates = [
        (customer, upper)
        for customer in sorted(cone)
        for upper in graph.providers(customer)
        if customer not in nearby and upper not in nearby
    ]
    if not candidates:
        # Degenerate graphs: fall back to a single failure.
        return Scenario(
            destination=destination,
            failed_links=(first,),
            description="two-link (distinct AS) degenerated to single",
        )
    second = rng.choice(candidates)
    return Scenario(
        destination=destination,
        failed_links=(first, second),
        description=(
            f"two links at distinct ASes: {first[0]}-{first[1]} and "
            f"{second[0]}-{second[1]}"
        ),
    )


def two_link_failures_same_as(graph: ASGraph, rng: random.Random) -> Scenario:
    """Figure 3(b): destination-provider link + that provider's own
    provider link — both failures touch the same AS."""
    destination = _pick_multihomed(graph, rng)
    providers_with_uplinks = [
        p for p in graph.providers(destination) if graph.providers(p)
    ]
    if not providers_with_uplinks:
        provider = rng.choice(graph.providers(destination))
        return Scenario(
            destination=destination,
            failed_links=((destination, provider),),
            description="two-link (same AS) degenerated to single",
        )
    provider = rng.choice(providers_with_uplinks)
    upper = rng.choice(graph.providers(provider))
    return Scenario(
        destination=destination,
        failed_links=((destination, provider), (provider, upper)),
        description=(
            f"two links at the same AS {provider}: "
            f"{destination}-{provider} and {provider}-{upper}"
        ),
    )


def provider_node_failure(graph: ASGraph, rng: random.Random) -> Scenario:
    """Section 6.2.2 text: one of the destination's providers fails
    entirely (withdraws from all neighbors)."""
    destination = _pick_multihomed(graph, rng)
    provider = rng.choice(graph.providers(destination))
    return Scenario(
        destination=destination,
        failed_ases=(provider,),
        description=f"node failure of provider {provider}",
    )


def link_recovery(graph: ASGraph, rng: random.Random) -> Scenario:
    """Route addition event (Lemma 3.1): a provider link comes back.

    The scenario lists the link under ``restored_links``; runners fail
    it before initial convergence and restore it as the event.
    """
    destination = _pick_multihomed(graph, rng)
    provider = rng.choice(graph.providers(destination))
    return Scenario(
        destination=destination,
        restored_links=((destination, provider),),
        description=f"recovery of provider link {destination}-{provider}",
    )
