"""Experiment harness: scenarios, protocol runners, figure regeneration.

Each figure/table of the paper's evaluation maps to one function in
:mod:`repro.experiments.figures`; the pytest-benchmark targets under
``benchmarks/`` call these and print the paper-shaped series.
"""

from repro.experiments.scenarios import (
    Scenario,
    single_provider_link_failure,
    two_link_failures_distinct_as,
    two_link_failures_same_as,
    provider_node_failure,
    link_recovery,
)
from repro.experiments.runner import (
    ExperimentConfig,
    ProtocolRun,
    run_scenario,
    PROTOCOLS,
)
from repro.experiments.figures import (
    Figure1Data,
    FailureFigureData,
    fig1_phi_cdf,
    fig2_single_link_failure,
    fig3a_two_links_distinct_as,
    fig3b_two_links_same_as,
    node_failure_comparison,
    sec61_intelligent_selection,
    sec63_partial_deployment,
    sec63_message_overhead,
    sec63_convergence_delay,
)
from repro.experiments.reporting import ascii_bar_chart, format_table

__all__ = [
    "Scenario",
    "single_provider_link_failure",
    "two_link_failures_distinct_as",
    "two_link_failures_same_as",
    "provider_node_failure",
    "link_recovery",
    "ExperimentConfig",
    "ProtocolRun",
    "run_scenario",
    "PROTOCOLS",
    "Figure1Data",
    "FailureFigureData",
    "fig1_phi_cdf",
    "fig2_single_link_failure",
    "fig3a_two_links_distinct_as",
    "fig3b_two_links_same_as",
    "node_failure_comparison",
    "sec61_intelligent_selection",
    "sec63_partial_deployment",
    "sec63_message_overhead",
    "sec63_convergence_delay",
    "ascii_bar_chart",
    "format_table",
]
