"""Canonical JSON serialization and content-addressed unit keys.

Every experiment unit is a pure function of ``(topology, builder,
kind, seed, instance, protocol)`` — the whole reason campaigns can be
cached, resumed, and retried safely.  This module turns that input
into a stable identity:

* :func:`canonical_json` — a deterministic JSON encoding (sorted keys,
  compact separators, ASCII-only, finite numbers) so the same value
  always serializes to the same bytes, on any machine;
* :func:`describe_builder` — a canonical description of a scenario or
  episode builder (importable name plus any ``functools.partial``
  arguments), because the builder closure itself is not hashable
  content;
* :func:`unit_key` — the SHA-256 of the canonical serialization of the
  unit's *complete* input: graph content hash, builder description,
  kind, master seed, instance, protocol, and a code-version salt.

The salt (:data:`LEDGER_SALT`) names the result schema.  Bump it when
a change makes previously stored results stale (different metrics,
different simulation semantics) — every old key then misses and the
ledger recomputes, which is exactly the safe behavior.

Doctest-pinned canonical form::

    >>> canonical_json({"b": 1, "a": [1.5, True, None, "x"]})
    '{"a":[1.5,true,null,"x"],"b":1}'
    >>> import functools
    >>> from repro.experiments.scenarios import link_flap_episode
    >>> spec = describe_builder(functools.partial(link_flap_episode, flaps=3))
    >>> spec["qualname"], spec["kwargs"]
    ('link_flap_episode', {'flaps': 3})
"""

from __future__ import annotations

import functools
import hashlib
import json
import math
from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.topology.graph import ASGraph
from repro.topology.serialization import graph_to_bytes

#: Code-version salt folded into every unit key.  Bump when the result
#: schema or the simulation semantics change in a result-visible way:
#: all previously ledgered results then become unreachable (recomputed
#: on demand) instead of silently wrong.
LEDGER_SALT = "repro-unit-v1"


def _check_canonical(value: Any, path: str) -> Any:
    """Validate that ``value`` has exactly one canonical encoding."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ConfigurationError(
                f"canonical JSON forbids non-finite float at {path}: {value!r}"
            )
        return value
    if isinstance(value, (list, tuple)):
        return [
            _check_canonical(item, f"{path}[{i}]")
            for i, item in enumerate(value)
        ]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"canonical JSON requires string keys at {path}: {key!r}"
                )
            out[key] = _check_canonical(item, f"{path}.{key}")
        return out
    raise ConfigurationError(
        f"type {type(value).__name__} at {path} has no canonical JSON form"
    )


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to its unique canonical JSON string.

    Allowed types: ``dict`` (string keys), ``list``/``tuple``, ``str``,
    ``int``, finite ``float``, ``bool``, ``None``.  Keys are sorted,
    separators are compact, output is ASCII-only, and floats use
    Python's shortest round-trip ``repr`` — so equal values always
    produce identical bytes.  Anything else (sets, NaN, objects) is
    rejected with :class:`~repro.errors.ConfigurationError` rather than
    encoded ambiguously.
    """
    checked = _check_canonical(value, "$")
    return json.dumps(
        checked,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def canonical_bytes(value: Any) -> bytes:
    """UTF-8 bytes of :func:`canonical_json` (the hashing input)."""
    return canonical_json(value).encode("utf-8")


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 — the hash every key and payload digest uses."""
    return hashlib.sha256(data).hexdigest()


def graph_content_hash(graph: ASGraph) -> str:
    """Content hash of a topology via its deterministic binary form.

    :func:`repro.topology.serialization.graph_to_bytes` serializes the
    sorted link lists plus the full AS set, so two graphs with equal
    content hash equally regardless of construction order.
    """
    return sha256_hex(graph_to_bytes(graph))


def describe_builder(builder: Callable) -> Dict[str, Any]:
    """Canonical description of a scenario/episode builder.

    Plain functions are described by ``(module, qualname)``;
    ``functools.partial`` wrappers additionally record their bound
    positional and keyword arguments (which must themselves be
    canonical-JSON values).  Lambdas and locally defined functions are
    rejected: their qualnames (``<lambda>``, ``...<locals>...``) do not
    identify behavior across runs, so a ledger keyed on them could
    return a stale result for different code.  Ledger-backed campaigns
    therefore need importable, module-level builders.
    """
    if isinstance(builder, functools.partial):
        inner = describe_builder(builder.func)
        return {
            "module": inner["module"],
            "qualname": inner["qualname"],
            "args": _check_canonical(list(builder.args), "$.partial.args"),
            "kwargs": _check_canonical(
                dict(builder.keywords or {}), "$.partial.kwargs"
            ),
        }
    module = getattr(builder, "__module__", None)
    qualname = getattr(builder, "__qualname__", None)
    if not module or not qualname:
        raise ConfigurationError(
            f"builder {builder!r} has no importable identity"
        )
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise ConfigurationError(
            f"builder {module}.{qualname} is not module-level; ledger keys "
            "need an importable builder whose name identifies its behavior"
        )
    return {"module": module, "qualname": qualname, "args": [], "kwargs": {}}


def unit_spec(
    graph_hash: str,
    builder: Callable,
    kind: str,
    seed: int,
    instance: int,
    protocol: str,
    *,
    salt: str = LEDGER_SALT,
) -> Dict[str, Any]:
    """The complete canonical input of one experiment unit."""
    return {
        "salt": salt,
        "graph": graph_hash,
        "builder": describe_builder(builder),
        "kind": kind,
        "seed": seed,
        "instance": instance,
        "protocol": protocol,
    }


def unit_key(
    graph_hash: str,
    builder: Callable,
    kind: str,
    seed: int,
    instance: int,
    protocol: str,
    *,
    salt: str = LEDGER_SALT,
) -> str:
    """SHA-256 unit key: the ledger address of one unit's result.

    Hashes the canonical JSON of :func:`unit_spec` — so the key changes
    exactly when any input that could change the result changes
    (topology content, builder identity or bound arguments, seeds,
    protocol, code-version salt), and never otherwise.
    """
    return sha256_hex(
        canonical_bytes(
            unit_spec(
                graph_hash, builder, kind, seed, instance, protocol, salt=salt
            )
        )
    )
