"""STAMP — the SelecTive Announcement Multi-Process routing protocol.

The paper's primary contribution: every AS runs two mostly-unchanged
BGP processes (red and blue) whose announcements toward *providers* are
made selective so the two processes compute complementary routes.  The
Lock attribute guarantees one blue downhill chain to a tier-1; the ET
attribute tells the data plane which process currently has stable
routes.
"""

from repro.stamp.coloring import (
    BlueProviderSelector,
    RandomBlueSelector,
    IntelligentBlueSelector,
)
from repro.stamp.node import STAMPNode
from repro.stamp.network import STAMPNetwork, STAMPConfig

__all__ = [
    "BlueProviderSelector",
    "RandomBlueSelector",
    "IntelligentBlueSelector",
    "STAMPNode",
    "STAMPNetwork",
    "STAMPConfig",
]
