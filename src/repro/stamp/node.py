"""One STAMP-running AS: two coordinated color processes.

The node owns the paper's selective-announcement coordination (section
4.1).  Toward customers and peers both processes export freely; toward
providers the node enforces:

* the Lock chain — if the blue process holds a Lock-carrying route (or
  originates), exactly one provider (the *locked blue provider*)
  receives the blue announcement with Lock set;
* red precedence — every other provider receives the red route when
  the red process has an exportable one;
* blue fallback — providers that cannot be served red may receive the
  blue route with Lock unset ("not required to propagate" downstream);
* the single-homed exception (footnote 4) — an AS with one provider
  announces both colors to it, deferring the coloring split to its
  first multi-homed (direct or indirect) provider.

The node also maintains the per-process instability flag driven by the
ET attribute (section 5.2), which the data plane consults.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bgp.ribs import Route
from repro.bgp.speaker import BGPSpeaker, ProtocolStats, SpeakerConfig
from repro.sim.engine import Engine
from repro.sim.tracing import ForwardingTrace
from repro.sim.transport import Transport
from repro.stamp.coloring import BlueProviderSelector, RandomBlueSelector
from repro.topology.graph import ASGraph
from repro.types import ASN, Color, EventType

from repro.forwarding.stamp_plane import unstable_key


class STAMPNode:
    """The pair of red/blue processes of one AS, plus coordination."""

    def __init__(
        self,
        asn: ASN,
        graph: ASGraph,
        engine: Engine,
        transport: Transport,
        *,
        speaker_config: Optional[SpeakerConfig] = None,
        trace: Optional[ForwardingTrace] = None,
        stats: Optional[ProtocolStats] = None,
        selector: Optional[BlueProviderSelector] = None,
        permissive_blue: bool = False,
        recolor_delay: float = 0.15,
    ) -> None:
        self.asn = asn
        self.graph = graph
        self.engine = engine
        self.selector = selector or RandomBlueSelector()
        #: Paper 4.1: providers other than the locked target may
        #: "possibly" receive the blue route without Lock.  Strict mode
        #: (default) skips this optional propagation — the locked chain
        #: already guarantees blue reachability everywhere, and the
        #: optional announcements add red/blue reassignment churn.
        self.permissive_blue = permissive_blue
        #: Graceful re-coloring (make-before-break): when a provider
        #: session flips color (e.g. the Lock chain migrates after a
        #: failure), the newly-assigned color is announced immediately
        #: while the old color's withdrawal is deferred by this many
        #: seconds.  Without it, the red teardown can race ahead of the
        #: blue build-up on the separate session, leaving downstream
        #: ASes with neither color for a few message delays — a STAMP
        #: dynamics wrinkle this reproduction surfaced (EXPERIMENTS.md).
        self.recolor_delay = recolor_delay
        self.trace = trace
        #: Static relationship views (the graph topology never changes
        #: during a simulation; failures are session events).
        self._providers: Tuple[ASN, ...] = tuple(graph.providers(asn))
        self._provider_set = frozenset(self._providers)
        self._customer_set = frozenset(graph.customers(asn))
        self._live_providers_cache: Optional[Tuple[int, List[ASN]]] = None
        self.locked_blue_provider: Optional[ASN] = None
        self.unstable: Dict[Color, bool] = {Color.RED: False, Color.BLUE: False}
        base_config = speaker_config or SpeakerConfig()

        def make(color: Color, prefer_locked: bool) -> BGPSpeaker:
            config = SpeakerConfig(
                mrai=base_config.mrai, prefer_locked=prefer_locked
            )
            return BGPSpeaker(
                asn,
                graph,
                engine,
                transport,
                config=config,
                tag=color,
                trace=trace,
                stats=stats,
                export_gate=lambda peer, route, c=color: self._gate(c, peer, route),
                # Selective announcement only restricts the provider
                # direction; customers and peers always get (True, False),
                # so the speaker may batch-export to them gate-free.
                gate_peers=graph.providers(asn),
                on_best_change=lambda spk, old, new, et, c=color: self._on_change(
                    c, old, new, et
                ),
            )

        self.processes: Dict[Color, BGPSpeaker] = {
            Color.RED: make(Color.RED, prefer_locked=False),
            Color.BLUE: make(Color.BLUE, prefer_locked=True),
        }

    @property
    def red(self) -> BGPSpeaker:
        """The red routing process."""
        return self.processes[Color.RED]

    @property
    def blue(self) -> BGPSpeaker:
        """The blue routing process."""
        return self.processes[Color.BLUE]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def originate(self) -> None:
        """Originate the prefix on both processes."""
        self.red.originate()
        self.blue.originate()

    def on_session_down(self, peer: ASN) -> None:
        """A physical link to a neighbor went down: both sessions reset."""
        if self.locked_blue_provider == peer:
            self.locked_blue_provider = None
        self.red.on_session_down(peer)
        self.blue.on_session_down(peer)
        self._refresh_providers(EventType.LOSS)

    def on_session_up(self, peer: ASN) -> None:
        """A link came (back) up: both sessions re-establish."""
        self.red.on_session_up(peer)
        self.blue.on_session_up(peer)
        self._refresh_providers(EventType.NO_LOSS)

    def reboot(self, peers) -> None:
        """Restart both color processes with empty state (AS restore).

        Red reboots first, then blue (the processes' fixed iteration
        order) — both as pure state resets, so no export or gate
        decision ever observes a half-rebooted sibling — then the
        locked-blue-provider assignment is forgotten (a restarted node
        re-selects when its blue process next holds a Lock obligation)
        and both instability flags clear.  Only after all of that does
        an origin node re-originate, red then blue: by then every gate
        evaluation runs against fully reset processes.
        """
        self.locked_blue_provider = None
        self._live_providers_cache = None
        for process in self.processes.values():
            process.reboot(peers)
        self.clear_instability()
        for process in self.processes.values():
            if process.is_origin:
                process.originate()

    # ------------------------------------------------------------------
    # Coordination: selective announcement toward providers
    # ------------------------------------------------------------------

    def _live_providers(self) -> List[ASN]:
        """Providers with a live physical link, cached per session churn.

        The gate consults this on every provider-direction export
        evaluation; both processes share physical links, so the red
        process's ``sessions_version`` validates the cache.  Callers
        must not mutate the returned list.
        """
        version = self.red.sessions_version
        cached = self._live_providers_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        sessions = self.red.sessions
        live = [p for p in self._providers if p in sessions]
        self._live_providers_cache = (version, live)
        return live

    def _blue_has_lock(self) -> bool:
        """Whether blue holds a Lock obligation (or originates)."""
        blue = self.blue
        if blue.is_origin:
            return True
        return blue.best is not None and blue.best.lock

    def _red_exportable_to_providers(self) -> bool:
        """Whether red has a route it may announce to providers."""
        red = self.red
        if red.is_origin:
            return True
        if red.best is None:
            return False
        return red.best.learned_from in self._customer_set

    def _locked_target(self, live_providers: List[ASN]) -> Optional[ASN]:
        """The provider currently chosen for the Lock chain."""
        if not live_providers:
            return None
        if (
            self.locked_blue_provider is not None
            and self.locked_blue_provider in live_providers
        ):
            return self.locked_blue_provider
        self.locked_blue_provider = self.selector.select(
            self.asn,
            live_providers,
            is_origin=self.blue.is_origin,
            rng=self.engine.rng,
        )
        return self.locked_blue_provider

    def _gate(self, color: Color, peer: ASN, route: Route) -> Tuple[bool, bool]:
        """Selective-announcement decision for one (color, neighbor).

        Called by the speaker only after the valley-free export filter
        passed.  Returns ``(allow, lock)``.
        """
        if peer not in self._provider_set:
            return (True, False)
        live = self._live_providers()
        has_lock = self._blue_has_lock()
        if len(live) <= 1:
            # Single-homed: both colors to the sole provider; the Lock
            # obligation transfers upward (footnote 4).
            return (True, color is Color.BLUE and has_lock)
        if color is Color.BLUE:
            if has_lock:
                target = self._locked_target(live)
                if peer == target:
                    return (True, True)
            if not self.permissive_blue:
                return (False, False)
            # Permissive: non-target providers get blue (unlocked) only
            # when red cannot serve them (red precedence, section 4.1).
            return (not self._red_exportable_to_providers(), False)
        # Red process: all providers except the locked blue target.
        if has_lock and peer == self._locked_target(live):
            return (False, False)
        return (True, False)

    def _refresh_providers(self, et: EventType) -> None:
        """Re-evaluate provider-direction exports of both processes.

        When a provider's session flips from one color to the other,
        the gaining color announces first and the losing color's
        withdrawal is deferred (`recolor_delay`), so downstream ASes
        never sit between the two sessions with no route at all.
        """
        for provider in self._providers:
            gains: List[Tuple[BGPSpeaker, object]] = []
            losses: List[BGPSpeaker] = []
            for process in self.processes.values():
                advertising = process.is_advertising(provider)
                desired = process.export_for(provider)
                if desired is not None and not advertising:
                    gains.append((process, desired))
                elif advertising and desired is None:
                    losses.append(process)
                else:
                    # Same-color refresh (e.g. path change): immediate.
                    # The export was just evaluated; hand it through so
                    # the speaker does not re-run the gate.
                    process.refresh_peer(provider, et=et, desired=desired)
            for process, desired in gains:
                process.refresh_peer(provider, et=et, desired=desired)
            for process in losses:
                if gains and self.recolor_delay > 0:
                    # Deferred: state may shift before the timer fires,
                    # so the late refresh re-evaluates from scratch.
                    self.engine.schedule(
                        self.recolor_delay,
                        lambda p=provider, proc=process: proc.refresh_peer(p),
                    )
                else:
                    process.refresh_peer(provider, et=et, desired=None)

    # ------------------------------------------------------------------
    # ET-driven instability tracking
    # ------------------------------------------------------------------

    def _on_change(
        self,
        color: Color,
        old: Optional[Route],
        new: Optional[Route],
        et: EventType,
    ) -> None:
        self._set_unstable(color, et is EventType.LOSS)
        # Any best change may flip provider color assignments (red
        # precedence / lock chain), so both processes re-check.
        self._refresh_providers(et)

    def _set_unstable(self, color: Color, flag: bool) -> None:
        if self.unstable[color] == flag:
            return
        self.unstable[color] = flag
        if self.trace is not None:
            self.trace.record(
                self.engine.now, self.asn, unstable_key(color), flag
            )

    def clear_instability(self) -> None:
        """Reset both flags (convergence reached; routes are stable)."""
        for color in (Color.RED, Color.BLUE):
            self._set_unstable(color, False)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def best_path(self, color: Color):
        """Full forwarding path of one color including this AS."""
        best = self.processes[color].best
        if best is None:
            return None
        return (self.asn,) + best.path

    def forwarding_state(self) -> Dict:
        """This node's slice of the trace key space."""
        state: Dict = {}
        for color, process in self.processes.items():
            state[(self.asn, color)] = process.forwarding_path
            state[(self.asn, unstable_key(color))] = self.unstable[color]
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"STAMPNode(asn={self.asn}, "
            f"red={self.red.forwarding_path}, blue={self.blue.forwarding_path}, "
            f"lock_target={self.locked_blue_provider})"
        )
