"""One STAMP-running AS: two coordinated color processes.

The node owns the paper's selective-announcement coordination (section
4.1).  Toward customers and peers both processes export freely; toward
providers the node enforces:

* the Lock chain — if the blue process holds a Lock-carrying route (or
  originates), exactly one provider (the *locked blue provider*)
  receives the blue announcement with Lock set;
* red precedence — every other provider receives the red route when
  the red process has an exportable one;
* blue fallback — providers that cannot be served red may receive the
  blue route with Lock unset ("not required to propagate" downstream);
* the single-homed exception (footnote 4) — an AS with one provider
  announces both colors to it, deferring the coloring split to its
  first multi-homed (direct or indirect) provider.

The node also maintains the per-process instability flag driven by the
ET attribute (section 5.2), which the data plane consults.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bgp.ribs import Route
from repro.bgp.speaker import BGPSpeaker, ProtocolStats, SpeakerConfig
from repro.sim.engine import Engine
from repro.sim.tracing import ForwardingTrace
from repro.sim.transport import Transport
from repro.sim.timers import MRAIConfig
from repro.stamp.coloring import BlueProviderSelector, RandomBlueSelector
from repro.topology.graph import ASGraph
from repro.types import ASN, Color, EventType, Link, RELATIONSHIP_PREFERENCE

from repro.forwarding.stamp_plane import unstable_key


def build_speaker_configs(
    mrai: MRAIConfig,
) -> Tuple[SpeakerConfig, SpeakerConfig]:
    """The (red, blue) speaker-config pair for one MRAI setting.

    Every STAMP node of a network uses the same two immutable configs,
    so the network builds this pair once and pools it across its nodes
    (and the nodes' reboots) instead of allocating two per AS.
    """
    return (
        SpeakerConfig(mrai=mrai, prefer_locked=False),
        SpeakerConfig(mrai=mrai, prefer_locked=True),
    )


class STAMPNode:
    """The pair of red/blue processes of one AS, plus coordination."""

    #: Class-level switch for the gate-signature refresh cache; the
    #: equivalence test flips it off to pin cached == uncached traces.
    _gate_sig_enabled = True

    def __init__(
        self,
        asn: ASN,
        graph: ASGraph,
        engine: Engine,
        transport: Transport,
        *,
        speaker_config: Optional[SpeakerConfig] = None,
        trace: Optional[ForwardingTrace] = None,
        stats: Optional[ProtocolStats] = None,
        selector: Optional[BlueProviderSelector] = None,
        permissive_blue: bool = False,
        recolor_delay: float = 0.15,
        speaker_configs: Optional[Tuple[SpeakerConfig, SpeakerConfig]] = None,
    ) -> None:
        self.asn = asn
        self.graph = graph
        self.engine = engine
        self.selector = selector or RandomBlueSelector()
        #: Paper 4.1: providers other than the locked target may
        #: "possibly" receive the blue route without Lock.  Strict mode
        #: (default) skips this optional propagation — the locked chain
        #: already guarantees blue reachability everywhere, and the
        #: optional announcements add red/blue reassignment churn.
        self.permissive_blue = permissive_blue
        #: Graceful re-coloring (make-before-break): when a provider
        #: session flips color (e.g. the Lock chain migrates after a
        #: failure), the newly-assigned color is announced immediately
        #: while the old color's withdrawal is deferred by this many
        #: seconds.  Without it, the red teardown can race ahead of the
        #: blue build-up on the separate session, leaving downstream
        #: ASes with neither color for a few message delays — a STAMP
        #: dynamics wrinkle this reproduction surfaced (EXPERIMENTS.md).
        self.recolor_delay = recolor_delay
        self.trace = trace
        #: Static relationship views (the graph topology never changes
        #: during a simulation; failures are session events).  The
        #: graph's indexed views already hand out tuples, so they are
        #: referenced, not copied.
        self._providers: Tuple[ASN, ...] = graph.providers(asn)
        self._provider_set = frozenset(self._providers)
        self._customer_set = frozenset(graph.customers(asn))
        self._live_providers_cache: Optional[Tuple[int, List[ASN]]] = None
        #: Per-color gate-input signature of the last provider refresh
        #: that completed as a provable no-op (see _refresh_providers).
        self._sig_red: Optional[tuple] = None
        self._sig_blue: Optional[tuple] = None
        self.locked_blue_provider: Optional[ASN] = None
        self.unstable: Dict[Color, bool] = {Color.RED: False, Color.BLUE: False}
        if speaker_configs is None:
            base_config = speaker_config or SpeakerConfig()
            speaker_configs = build_speaker_configs(base_config.mrai)
        # Both color processes of one AS see identical per-neighbor
        # preferences and relationships: derive the tables once and
        # share the dicts (the network-level pool hands every node the
        # same two SpeakerConfig instances the same way).
        rel_table = graph.neighbor_relationships(asn)
        pref_table = {
            neighbor: RELATIONSHIP_PREFERENCE[rel]
            for neighbor, rel in rel_table.items()
        }
        shared_tables = (pref_table, rel_table)

        def make(color: Color, config: SpeakerConfig) -> BGPSpeaker:
            return BGPSpeaker(
                asn,
                graph,
                engine,
                transport,
                config=config,
                tag=color,
                trace=trace,
                stats=stats,
                export_gate=lambda peer, route, c=color: self._gate(c, peer, route),
                # Selective announcement only restricts the provider
                # direction; customers and peers always get (True, False),
                # so the speaker may batch-export to them gate-free.
                # _provider_set is already a frozenset: no copy is made.
                gate_peers=self._provider_set,
                on_best_change=(
                    lambda spk, old, new, et, rc, c=color: self._on_change(
                        c, old, new, et, rc
                    )
                ),
                shared_tables=shared_tables,
                # _on_change refreshes every provider synchronously
                # with the decision's exact (et, root cause) context,
                # so the speaker's own fan-out skips its gate peers.
                gate_refresh_delegated=True,
            )

        self.processes: Dict[Color, BGPSpeaker] = {
            Color.RED: make(Color.RED, speaker_configs[0]),
            Color.BLUE: make(Color.BLUE, speaker_configs[1]),
        }
        #: The (red, blue) pair as a tuple for allocation-free iteration
        #: on the refresh hot path.
        self._procs: Tuple[BGPSpeaker, BGPSpeaker] = (
            self.processes[Color.RED],
            self.processes[Color.BLUE],
        )

    @property
    def red(self) -> BGPSpeaker:
        """The red routing process."""
        return self.processes[Color.RED]

    @property
    def blue(self) -> BGPSpeaker:
        """The blue routing process."""
        return self.processes[Color.BLUE]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def originate(self) -> None:
        """Originate the prefix on both processes."""
        self.red.originate()
        self.blue.originate()

    def on_session_down(self, peer: ASN) -> None:
        """A physical link to a neighbor went down: both sessions reset."""
        if self.locked_blue_provider == peer:
            self.locked_blue_provider = None
        self.red.on_session_down(peer)
        self.blue.on_session_down(peer)
        self._refresh_providers(EventType.LOSS)

    def on_session_up(self, peer: ASN) -> None:
        """A link came (back) up: both sessions re-establish."""
        self.red.on_session_up(peer)
        self.blue.on_session_up(peer)
        self._refresh_providers(EventType.NO_LOSS)

    def reboot(self, peers) -> None:
        """Restart both color processes with empty state (AS restore).

        Red reboots first, then blue (the processes' fixed iteration
        order) — both as pure state resets, so no export or gate
        decision ever observes a half-rebooted sibling — then the
        locked-blue-provider assignment is forgotten (a restarted node
        re-selects when its blue process next holds a Lock obligation)
        and both instability flags clear.  Only after all of that does
        an origin node re-originate, red then blue: by then every gate
        evaluation runs against fully reset processes.
        """
        self.locked_blue_provider = None
        self._live_providers_cache = None
        self._sig_red = self._sig_blue = None
        for process in self.processes.values():
            process.reboot(peers)
        self.clear_instability()
        for process in self.processes.values():
            if process.is_origin:
                process.originate()

    # ------------------------------------------------------------------
    # Coordination: selective announcement toward providers
    # ------------------------------------------------------------------

    def _live_providers(self) -> List[ASN]:
        """Providers with a live physical link, cached per session churn.

        The gate consults this on every provider-direction export
        evaluation; both processes share physical links, so the red
        process's ``sessions_version`` validates the cache.  Callers
        must not mutate the returned list.
        """
        version = self.red.sessions_version
        cached = self._live_providers_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        sessions = self.red.sessions
        live = [p for p in self._providers if p in sessions]
        self._live_providers_cache = (version, live)
        return live

    def _blue_has_lock(self) -> bool:
        """Whether blue holds a Lock obligation (or originates)."""
        blue = self.blue
        if blue.is_origin:
            return True
        return blue.best is not None and blue.best.lock

    def _red_exportable_to_providers(self) -> bool:
        """Whether red has a route it may announce to providers."""
        red = self.red
        if red.is_origin:
            return True
        if red.best is None:
            return False
        return red.best.learned_from in self._customer_set

    def _locked_target(self, live_providers: List[ASN]) -> Optional[ASN]:
        """The provider currently chosen for the Lock chain."""
        if not live_providers:
            return None
        if (
            self.locked_blue_provider is not None
            and self.locked_blue_provider in live_providers
        ):
            return self.locked_blue_provider
        self.locked_blue_provider = self.selector.select(
            self.asn,
            live_providers,
            is_origin=self.blue.is_origin,
            rng=self.engine.rng,
        )
        return self.locked_blue_provider

    def _gate(self, color: Color, peer: ASN, route: Route) -> Tuple[bool, bool]:
        """Selective-announcement decision for one (color, neighbor).

        Called by the speaker only after the valley-free export filter
        passed.  Returns ``(allow, lock)``.
        """
        if peer not in self._provider_set:
            return (True, False)
        live = self._live_providers()
        has_lock = self._blue_has_lock()
        if len(live) <= 1:
            # Single-homed: both colors to the sole provider; the Lock
            # obligation transfers upward (footnote 4).
            return (True, color is Color.BLUE and has_lock)
        if color is Color.BLUE:
            if has_lock:
                target = self._locked_target(live)
                if peer == target:
                    return (True, True)
            if not self.permissive_blue:
                return (False, False)
            # Permissive: non-target providers get blue (unlocked) only
            # when red cannot serve them (red precedence, section 4.1).
            return (not self._red_exportable_to_providers(), False)
        # Red process: all providers except the locked blue target.
        if has_lock and peer == self._locked_target(live):
            return (False, False)
        return (True, False)

    def _refresh_providers(
        self,
        et: EventType,
        root_cause: Optional[Link] = None,
        changing: Optional[BGPSpeaker] = None,
    ) -> None:
        """Re-evaluate provider-direction exports of both processes.

        When a provider's session flips from one color to the other,
        the gaining color announces first and the losing color's
        withdrawal is deferred (`recolor_delay`), so downstream ASes
        never sit between the two sessions with no route at all.

        Gate-signature caching: a refresh whose whole per-provider loop
        was a provable no-op records that process's gate-input
        signature — its best route, the live-provider set (via the
        shared physical ``sessions_version``), the Lock obligation, the
        locked target, and (permissive mode only) red exportability —
        and a later refresh with an unchanged signature skips the
        process entirely.  The elision is draw-order-neutral by
        construction: a skip additionally requires that no gate call
        could re-select the locked blue target (the target is live, or
        blue holds no Lock, or the node is single-homed), since
        re-selection is the one RNG draw on this path.  It is
        export-neutral because the signature captures every gate input
        while the recorded no-op run proved the advertised state
        already matched the desired exports with nothing pending
        behind MRAI (a pending context must keep merging event
        contexts, so it blocks the certificate; a retained certificate
        stays valid because with an equal signature the desired
        exports are equal and the Adj-RIB-Out can only move *toward*
        them).  The golden traces and the dedicated cache-on/off
        equivalence test pin this.
        """
        if not self._providers:
            return  # tier-1 / destination-like: nothing to coordinate
        red, blue = self._procs
        skip_red = skip_blue = False
        sig_red = sig_blue = None
        certify = False
        if self._gate_sig_enabled:
            has_lock = self._blue_has_lock()
            live = self._live_providers()
            locked = self.locked_blue_provider
            # Certify/skip only when no gate call can draw from the
            # RNG: the locked target cannot change during this refresh.
            if (
                (locked is not None and locked in live)
                or not has_lock
                or len(live) <= 1
            ):
                certify = True
                version = red.sessions_version
                sig_red = (red.best, version, has_lock, locked, red.is_origin)
                sig_blue = (
                    blue.best,
                    version,
                    has_lock,
                    locked,
                    blue.is_origin,
                    self._red_exportable_to_providers()
                    if self.permissive_blue
                    else None,
                )
                skip_red = sig_red == self._sig_red
                skip_blue = sig_blue == self._sig_blue
                if skip_red and skip_blue:
                    return
        noop_red = not skip_red
        noop_blue = not skip_blue
        recolor_delay = self.recolor_delay
        for provider in self._providers:
            gains: Optional[List[Tuple[BGPSpeaker, object]]] = None
            losses: Optional[List[BGPSpeaker]] = None
            for process in self._procs:
                if skip_red if process is red else skip_blue:
                    continue
                advertising = process.is_advertising(provider)
                desired = process.export_for(provider)
                if desired is not None and not advertising:
                    if gains is None:
                        gains = []
                    gains.append((process, desired))
                elif advertising and desired is None:
                    if losses is None:
                        losses = []
                    losses.append(process)
                else:
                    # Same-color refresh (e.g. path change): immediate.
                    # The export was just evaluated; hand it through so
                    # the speaker does not re-run the gate.
                    if process.is_settled(provider, desired):
                        continue  # provably nothing to do
                    process.refresh_peer(
                        provider, et=et, root_cause=root_cause, desired=desired
                    )
                if process is red:
                    noop_red = False
                else:
                    noop_blue = False
            if gains is not None:
                for process, desired in gains:
                    process.refresh_peer(
                        provider, et=et, root_cause=root_cause, desired=desired
                    )
            if losses is not None:
                for process in losses:
                    if gains is not None and recolor_delay > 0:
                        # Deferred: state may shift before the timer
                        # fires, so the late refresh re-evaluates from
                        # scratch.  A deferred loss of the *deciding*
                        # process is additionally handed back to its
                        # own export fan-out (which runs right after
                        # this listener and would otherwise skip its
                        # delegated gate peers): the speaker withdraws
                        # in its usual sorted-session position, exactly
                        # as the undelegated fan-out always has.
                        self.engine.schedule(
                            recolor_delay,
                            lambda p=provider, proc=process: proc.refresh_peer(p),
                        )
                        if process is changing:
                            process.gate_refresh_queue(provider)
                    else:
                        process.refresh_peer(
                            provider, et=et, root_cause=root_cause, desired=None
                        )
        if certify:
            # The signatures cannot have changed during the loop: the
            # certifying branch excluded RNG re-selection, refreshes
            # send asynchronously, and sessions are stable here.
            if not skip_red:
                self._sig_red = sig_red if noop_red else None
            if not skip_blue:
                self._sig_blue = sig_blue if noop_blue else None

    # ------------------------------------------------------------------
    # ET-driven instability tracking
    # ------------------------------------------------------------------

    def _on_change(
        self,
        color: Color,
        old: Optional[Route],
        new: Optional[Route],
        et: EventType,
        root_cause: Optional[Link] = None,
    ) -> None:
        self._set_unstable(color, et is EventType.LOSS)
        # Any best change may flip provider color assignments (red
        # precedence / lock chain), so both processes re-check — with
        # the decision's exact event context, which lets the changing
        # speaker's own export fan-out skip its (already refreshed)
        # gate peers (``gate_refresh_delegated``).
        self._refresh_providers(et, root_cause, changing=self.processes[color])

    def _set_unstable(self, color: Color, flag: bool) -> None:
        if self.unstable[color] == flag:
            return
        self.unstable[color] = flag
        if self.trace is not None:
            self.trace.record(
                self.engine.now, self.asn, unstable_key(color), flag
            )

    def clear_instability(self) -> None:
        """Reset both flags (convergence reached; routes are stable)."""
        for color in (Color.RED, Color.BLUE):
            self._set_unstable(color, False)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def best_path(self, color: Color):
        """Full forwarding path of one color including this AS."""
        best = self.processes[color].best
        if best is None:
            return None
        return (self.asn,) + best.path

    def forwarding_state(self) -> Dict:
        """This node's slice of the trace key space."""
        state: Dict = {}
        for color, process in self.processes.items():
            state[(self.asn, color)] = process.forwarding_path
            state[(self.asn, unstable_key(color))] = self.unstable[color]
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"STAMPNode(asn={self.asn}, "
            f"red={self.red.forwarding_path}, blue={self.blue.forwarding_path}, "
            f"lock_target={self.locked_blue_provider})"
        )
