"""A full STAMP network: one node (two processes) per AS."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.bgp.network import NetworkConfig
from repro.bgp.speaker import ProtocolStats
from repro.errors import ConvergenceError, SimulationError
from repro.sim.engine import Engine
from repro.sim.tracing import ForwardingTrace
from repro.sim.transport import Transport
from repro.stamp.coloring import (
    BlueProviderSelector,
    IntelligentBlueSelector,
    RandomBlueSelector,
)
from repro.stamp.node import STAMPNode, build_speaker_configs
from repro.topology.graph import ASGraph
from repro.types import ASN, Color


@dataclass(frozen=True)
class STAMPConfig(NetworkConfig):
    """STAMP-specific knobs on top of the shared network config."""

    #: Use the intelligent locked-blue-provider selection at the origin
    #: (paper section 6.1, raises disjointness odds 92% -> 97%).
    intelligent_selection: bool = False
    #: Allow the optional unlocked-blue announcements toward non-target
    #: providers (paper 4.1 "possibly ... without the Lock attribute").
    permissive_blue: bool = False
    #: Make-before-break delay when a provider session changes color
    #: (see :class:`repro.stamp.node.STAMPNode`).
    recolor_delay: float = 0.15


class STAMPNetwork:
    """All STAMP nodes of a simulated network for one prefix."""

    def __init__(
        self,
        graph: ASGraph,
        destination: ASN,
        config: Optional[STAMPConfig] = None,
        *,
        selector: Optional[BlueProviderSelector] = None,
    ) -> None:
        if destination not in graph:
            raise ValueError(f"destination AS {destination} not in graph")
        self.graph = graph
        self.destination = destination
        self.config = config or STAMPConfig()
        self.engine = Engine(self.config.seed)
        self.transport = Transport(self.engine, self.config.delay)
        self.trace = ForwardingTrace()
        self.stats = ProtocolStats()
        if selector is None:
            if self.config.intelligent_selection:
                selector = IntelligentBlueSelector(graph)
            else:
                selector = RandomBlueSelector()
        self.selector = selector

        # One immutable (red, blue) config pair serves every node.
        speaker_configs = build_speaker_configs(self.config.mrai)
        self.nodes: Dict[ASN, STAMPNode] = {}
        for asn in graph.ases:
            node = STAMPNode(
                asn,
                graph,
                self.engine,
                self.transport,
                speaker_configs=speaker_configs,
                trace=self.trace,
                stats=self.stats,
                selector=self.selector,
                permissive_blue=self.config.permissive_blue,
                recolor_delay=self.config.recolor_delay,
            )
            self.nodes[asn] = node
            self.transport.register_session_down_listener(
                asn, node.on_session_down
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> float:
        """Originate at the destination; run initial convergence.

        Recording is suspended for the initial convergence — the trace
        is cleared afterwards anyway (see
        :meth:`repro.bgp.network.BGPNetwork.start`).
        """
        self.trace.suspend()
        try:
            self.nodes[self.destination].originate()
            self.run_to_convergence()
        finally:
            self.trace.resume()
        self.trace.clear()
        return self.engine.now

    def run_to_convergence(self) -> float:
        """Drain protocol activity; clear instability flags afterwards.

        The flags are a *during convergence* signal (Lemma 3.1/3.2
        territory); once the network is quiescent every selected route
        is stable again.
        """
        started = self.engine.now
        try:
            self.engine.run(max_events=self.config.max_events_per_phase)
        except SimulationError as exc:
            # Only the engine's backstop means "did not converge"; real
            # bugs in event callbacks must propagate unmasked.
            raise ConvergenceError(
                f"no convergence after {self.config.max_events_per_phase} events"
            ) from exc
        for node in self.nodes.values():
            node.clear_instability()
        return self.engine.now - started

    def dispose(self) -> None:
        """Break reference cycles (see :meth:`BGPNetwork.dispose`).

        STAMP adds node ↔ speaker cycles through the export-gate and
        best-change closures, which the speakers' dispose drops.
        """
        self.transport.dispose()
        for node in self.nodes.values():
            for process in node.processes.values():
                process.dispose()
            node.processes.clear()
        self.nodes.clear()

    # ------------------------------------------------------------------
    # Event injection
    # ------------------------------------------------------------------

    def fail_link(self, a: ASN, b: ASN) -> None:
        """Fail a physical link: both colors' sessions reset."""
        self.transport.fail_link(a, b)

    def restore_link(self, a: ASN, b: ASN) -> None:
        """Restore a link; both endpoints re-establish both sessions.

        Deterministic order: ``a``'s node first, then ``b``'s (each
        node brings red up before blue and re-runs the provider gate).
        No session forms while either endpoint AS is itself failed —
        those wait for the endpoint's ``restore_as``.
        """
        self.transport.restore_link(a, b)
        if self.transport.link_is_up(a, b):
            self.nodes[a].on_session_up(b)
            self.nodes[b].on_session_up(a)

    def fail_as(self, asn: ASN) -> None:
        """Fail an AS entirely (its node freezes; neighbors reset).

        Same semantics as :meth:`repro.bgp.network.BGPNetwork.fail_as`,
        including the armed-timer caveat documented there.
        """
        self.transport.fail_as(asn, self.graph.neighbors(asn))

    def restore_as(self, asn: ASN) -> None:
        """Bring a failed AS back (cold restart of both processes).

        Mirrors :meth:`repro.bgp.network.BGPNetwork.restore_as`: the
        node reboots with empty state (forgetting its locked blue
        provider), then each live neighbor re-establishes both color
        sessions in ascending-ASN order.  No-op when the AS is up.
        """
        if self.transport.as_is_up(asn):
            return
        self.transport.restore_as(asn)
        live = [
            nbr
            for nbr in sorted(self.graph.neighbors(asn))
            if self.transport.link_is_up(asn, nbr)
        ]
        self.nodes[asn].reboot(live)
        for nbr in live:
            self.nodes[nbr].on_session_up(asn)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def forwarding_state(self) -> Dict[Tuple[ASN, Hashable], object]:
        """Full trace-key-space snapshot across all nodes."""
        state: Dict[Tuple[ASN, Hashable], object] = {}
        for node in self.nodes.values():
            state.update(node.forwarding_state())
        return state

    def best_path(self, asn: ASN, color: Color):
        """Full forwarding path of one AS and color, or ``None``."""
        return self.nodes[asn].best_path(color)

    def has_both_colors(self, asn: ASN) -> bool:
        """Whether an AS currently holds both red and blue routes."""
        node = self.nodes[asn]
        return node.red.best is not None and node.blue.best is not None
