"""Locked-blue-provider selection strategies.

When an AS holds a locked blue route (or originates the prefix) and has
several providers, it must pick the single provider that receives the
Lock-carrying blue announcement.  The paper evaluates random selection
(section 6.1, mean disjointness probability 0.92) and an "intelligent"
variant where the *origin* picks the provider that maximizes the odds
of a disjoint red path existing (raising the mean to about 0.97).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.topology.graph import ASGraph
from repro.types import ASN


class BlueProviderSelector:
    """Strategy interface: pick the locked blue provider."""

    def select(
        self,
        asn: ASN,
        providers: Sequence[ASN],
        *,
        is_origin: bool,
        rng: random.Random,
    ) -> ASN:
        """Choose one of ``providers`` (non-empty) for the Lock chain."""
        raise NotImplementedError


class RandomBlueSelector(BlueProviderSelector):
    """Uniform random choice — the paper's default behavior."""

    def select(
        self,
        asn: ASN,
        providers: Sequence[ASN],
        *,
        is_origin: bool,
        rng: random.Random,
    ) -> ASN:
        return rng.choice(list(providers))


class IntelligentBlueSelector(BlueProviderSelector):
    """Origin picks the provider that best preserves red-path odds.

    For the origin AS we score each provider ``p`` by the conditional
    disjointness probability Φ(p): the fraction of uphill tier-1 chains
    through ``p`` that leave a node-disjoint chain to another tier-1
    available (see :mod:`repro.analysis.phi`).  Non-origin ASes fall
    back to random choice, exactly as the paper describes ("rather than
    select it randomly as other ASes do").
    """

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        self._cache: Dict[ASN, Optional[ASN]] = {}
        self._fallback = RandomBlueSelector()

    def select(
        self,
        asn: ASN,
        providers: Sequence[ASN],
        *,
        is_origin: bool,
        rng: random.Random,
    ) -> ASN:
        if not is_origin:
            return self._fallback.select(
                asn, providers, is_origin=is_origin, rng=rng
            )
        best = self._best_for_origin(asn)
        if best is not None and best in providers:
            return best
        return self._fallback.select(asn, providers, is_origin=is_origin, rng=rng)

    def _best_for_origin(self, asn: ASN) -> Optional[ASN]:
        if asn not in self._cache:
            from repro.analysis.phi import best_blue_provider  # lazy: avoid cycle

            self._cache[asn] = best_blue_provider(self.graph, asn)
        return self._cache[asn]
