"""RouteViews-style BGP table synthesis and parsing.

The paper builds its AS graph from BGP routing tables collected by the
RouteViews project.  Real dumps are unavailable offline, so this module
closes the loop synthetically: given a ground-truth annotated graph we
compute every vantage point's converged best path to every destination
(the same information a table dump carries) and emit it in a simple
``vantage|destination|as-path`` text format that
:func:`repro.topology.inference.infer_relationships` consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.errors import ParseError
from repro.topology.graph import ASGraph
from repro.types import ASN, ASPath


@dataclass
class RouteViewsTable:
    """One vantage point's view: destination AS -> AS path.

    Paths are vantage-first (the vantage AS itself is included), origin
    last — the shape of an AS_PATH with the collector's peer prepended.
    """

    vantage: ASN
    paths: Dict[ASN, ASPath] = field(default_factory=dict)

    def as_paths(self) -> List[ASPath]:
        """All AS paths of this table, deterministic order."""
        return [self.paths[dest] for dest in sorted(self.paths)]


def synthesize_routeviews_tables(
    graph: ASGraph,
    *,
    vantages: Optional[Sequence[ASN]] = None,
    n_vantages: int = 10,
    destinations: Optional[Sequence[ASN]] = None,
    seed: int = 0,
) -> List[RouteViewsTable]:
    """Build synthetic RouteViews tables from a ground-truth graph.

    Vantage points default to a random sample biased toward the core
    (RouteViews peers are predominantly large transit networks): all
    tier-1s plus random transit ASes up to ``n_vantages``.
    """
    from repro.routing import compute_stable_routes  # local: avoids import cycle

    rng = random.Random(seed)
    if vantages is None:
        chosen: List[ASN] = list(graph.tier1s())
        transit = [asn for asn in graph.ases if not graph.is_stub(asn)]
        pool = [asn for asn in transit if asn not in chosen]
        rng.shuffle(pool)
        chosen.extend(pool[: max(0, n_vantages - len(chosen))])
        vantages = chosen[:n_vantages] if len(chosen) > n_vantages else chosen
    dests = list(destinations) if destinations is not None else graph.ases

    tables = [RouteViewsTable(vantage=v) for v in vantages]
    for dest in dests:
        state = compute_stable_routes(graph, dest)
        for table in tables:
            if table.vantage == dest:
                continue
            route = state.route(table.vantage)
            if route is not None:
                table.paths[dest] = route.path
    return tables


def dump_tables(tables: Iterable[RouteViewsTable], stream: TextIO) -> int:
    """Write tables in ``vantage|destination|a b c`` format.

    Returns the number of lines written.
    """
    written = 0
    for table in tables:
        for dest in sorted(table.paths):
            path = " ".join(str(asn) for asn in table.paths[dest])
            stream.write(f"{table.vantage}|{dest}|{path}\n")
            written += 1
    return written


def parse_tables(stream: TextIO) -> List[RouteViewsTable]:
    """Parse tables previously written by :func:`dump_tables`."""
    by_vantage: Dict[ASN, RouteViewsTable] = {}
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) != 3:
            raise ParseError(f"line {lineno}: expected 3 fields, got {len(parts)}")
        try:
            vantage = int(parts[0])
            dest = int(parts[1])
            path = tuple(int(tok) for tok in parts[2].split())
        except ValueError as exc:
            raise ParseError(f"line {lineno}: {exc}") from None
        if not path:
            raise ParseError(f"line {lineno}: empty AS path")
        if path[0] != vantage:
            raise ParseError(
                f"line {lineno}: path must start at the vantage AS {vantage}"
            )
        if path[-1] != dest:
            raise ParseError(f"line {lineno}: path must end at destination {dest}")
        table = by_vantage.setdefault(vantage, RouteViewsTable(vantage=vantage))
        table.paths[dest] = path
    return [by_vantage[v] for v in sorted(by_vantage)]


def all_paths(tables: Iterable[RouteViewsTable]) -> List[ASPath]:
    """Flatten tables into the path list inference consumes."""
    out: List[ASPath] = []
    for table in tables:
        out.extend(table.as_paths())
    return out
