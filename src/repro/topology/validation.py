"""Structural validation of AS topologies.

Checks the assumptions the paper's analysis rests on: an acyclic
customer-provider hierarchy, a connected (peered) tier-1 core, and
uphill tier-1 reachability from every AS — the property that makes a
locked blue path always terminate at a tier-1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import CyclicHierarchyError
from repro.topology.graph import ASGraph
from repro.types import ASN


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_graph`."""

    acyclic: bool = True
    tier1_core_peered: bool = True
    all_reach_tier1: bool = True
    isolated_ases: List[ASN] = field(default_factory=list)
    unreachable_tier1: List[ASN] = field(default_factory=list)
    unpeered_tier1_pairs: List[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every structural assumption holds."""
        return (
            self.acyclic
            and self.tier1_core_peered
            and self.all_reach_tier1
            and not self.isolated_ases
        )

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        if self.ok:
            return "topology OK: acyclic hierarchy, peered core, full uphill reach"
        problems: List[str] = []
        if not self.acyclic:
            problems.append("c2p hierarchy is cyclic")
        if not self.tier1_core_peered:
            problems.append(
                f"{len(self.unpeered_tier1_pairs)} unpeered tier-1 pairs"
            )
        if not self.all_reach_tier1:
            problems.append(
                f"{len(self.unreachable_tier1)} ASes cannot reach a tier-1 uphill"
            )
        if self.isolated_ases:
            problems.append(f"{len(self.isolated_ases)} isolated ASes")
        return "topology problems: " + "; ".join(problems)


def validate_graph(graph: ASGraph) -> ValidationReport:
    """Check all structural assumptions; never raises."""
    report = ValidationReport()

    try:
        graph.check_acyclic_hierarchy()
    except CyclicHierarchyError:
        report.acyclic = False

    report.isolated_ases = [
        asn for asn in graph.ases if graph.degree(asn) == 0 and len(graph) > 1
    ]

    tier1s = graph.tier1s()
    for i, a in enumerate(tier1s):
        for b in tier1s[i + 1 :]:
            if not graph.has_link(a, b):
                report.unpeered_tier1_pairs.append((a, b))
    report.tier1_core_peered = not report.unpeered_tier1_pairs

    if report.acyclic:
        for asn in graph.ases:
            if not graph.uphill_reachable_tier1s(asn):
                report.unreachable_tier1.append(asn)
        report.all_reach_tier1 = not report.unreachable_tier1
    else:
        report.all_reach_tier1 = False

    return report
