"""Zero-copy topology fan-out over ``multiprocessing.shared_memory``.

The supervised pool used to hand every worker its own pickled copy of
the AS graph (``graph_to_bytes`` → fork → ``graph_from_bytes``): at
Internet scale that is tens of megabytes deserialized once per worker,
again after every worker death.  With the CSR core the entire adjacency
is a handful of flat int arrays, so the campaign can instead publish
them **once** into a named shared-memory segment and have each worker
map the same physical pages read-only — attach is O(1) in topology
size when numpy is available (``frombuffer`` views straight into the
segment), and a plain copy otherwise.

Segment layout (native byte order — a segment never leaves the
machine that created it)::

    magic   8 bytes   b"RPROCSR1"
    header  5 int64   n_as, n_nbr, n_prov, n_cust, n_peer
    int64   asns[n_as]                    dense index -> ASN
    int64   nbr_off[n_as+1]               insertion-order neighbor CSR
    int64   nbr_tgt[n_nbr]                  (targets are dense indices)
    int64   prov_off[n_as+1], prov_tgt[n_prov]   sorted-ASN rows per
    int64   cust_off[n_as+1], cust_tgt[n_cust]   relationship class
    int64   peer_off[n_as+1], peer_tgt[n_peer]
    int8    nbr_rel[n_nbr]                relationship codes (trailing
                                          so every int64 array stays
                                          8-byte aligned)

Lifecycle contract:

* the **campaign** (supervisor) is the only creator and the only
  unlinker: :func:`share_graph` before the first dispatch,
  ``SharedGraph.destroy()`` in the pool's ``finally`` — so the segment
  is removed even when every worker was ``kill -9``-ed mid-unit;
* **workers** only ever attach (:func:`attach_graph`) and close; an
  attach explicitly unregisters from the ``resource_tracker`` because
  Python < 3.13 registers attachers as if they were owners, and a
  tracker-driven unlink at worker exit would tear the segment out from
  under its siblings;
* the graph a worker gets is served from read-only array views —
  simulations never mutate the topology, and even a mutation would go
  through the graph's copy-on-write overlay, never the shared pages.

``REPRO_NO_SHM=1`` (checked by the supervisor, not here) forces the
legacy pickled-bytes path; :func:`shared_memory_available` probes
whether the platform can create segments at all (some sandboxes mount
no ``/dev/shm``).
"""

from __future__ import annotations

from array import array
from typing import List, Optional

from repro.topology.graph import ASGraph, _CSRBase, _np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]

_MAGIC = b"RPROCSR1"
_HEADER_FIELDS = 5
_HEADER_END = len(_MAGIC) + _HEADER_FIELDS * 8


def shared_memory_available() -> bool:
    """Whether this platform can create shared-memory segments."""
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=16)
    except Exception:
        return False
    try:
        probe.close()
        probe.unlink()
    except Exception:
        pass
    return True


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _i64_bytes(seq) -> bytes:
    if _np is not None and isinstance(seq, _np.ndarray):
        return seq.tobytes()
    if isinstance(seq, array):
        return seq.tobytes()
    return array("q", seq).tobytes()


def _i8_bytes(seq) -> bytes:
    if _np is not None and isinstance(seq, _np.ndarray):
        return seq.tobytes()
    if isinstance(seq, array):
        return seq.tobytes()
    return array("b", seq).tobytes()


def _encode_base(base: _CSRBase) -> bytes:
    n_as = len(base.asns)
    n_nbr = len(base.nbr_tgt)
    header = array(
        "q", [n_as, n_nbr, len(base.prov_tgt), len(base.cust_tgt),
              len(base.peer_tgt)],
    )
    return b"".join(
        (
            _MAGIC,
            header.tobytes(),
            _i64_bytes(base.asns),
            _i64_bytes(base.nbr_off),
            _i64_bytes(base.nbr_tgt),
            _i64_bytes(base.prov_off),
            _i64_bytes(base.prov_tgt),
            _i64_bytes(base.cust_off),
            _i64_bytes(base.cust_tgt),
            _i64_bytes(base.peer_off),
            _i64_bytes(base.peer_tgt),
            _i8_bytes(base.nbr_rel),
        )
    )


def _decode_base(buf) -> _CSRBase:
    view = memoryview(buf)
    if bytes(view[: len(_MAGIC)]) != _MAGIC:
        view.release()  # keep the mapping closeable on the error path
        raise ValueError("shared topology segment has wrong magic")
    header = array("q")
    header.frombytes(view[len(_MAGIC):_HEADER_END].tobytes())
    n_as, n_nbr, n_prov, n_cust, n_peer = header.tolist()
    offset = _HEADER_END

    if _np is not None:
        def take_i64(count: int):
            nonlocal offset
            arr = _np.frombuffer(
                view, dtype=_np.int64, count=count, offset=offset
            )
            arr.flags.writeable = False
            offset += count * 8
            return arr

        def take_i8(count: int):
            nonlocal offset
            arr = _np.frombuffer(
                view, dtype=_np.int8, count=count, offset=offset
            )
            arr.flags.writeable = False
            offset += count
            return arr
    else:
        def take_i64(count: int):
            nonlocal offset
            arr = array("q")
            arr.frombytes(view[offset:offset + count * 8].tobytes())
            offset += count * 8
            return arr

        def take_i8(count: int):
            nonlocal offset
            arr = array("b")
            arr.frombytes(view[offset:offset + count].tobytes())
            offset += count
            return arr

    asns = take_i64(n_as).tolist()
    nbr_off = take_i64(n_as + 1)
    nbr_tgt = take_i64(n_nbr)
    prov_off = take_i64(n_as + 1)
    prov_tgt = take_i64(n_prov)
    cust_off = take_i64(n_as + 1)
    cust_tgt = take_i64(n_cust)
    peer_off = take_i64(n_as + 1)
    peer_tgt = take_i64(n_peer)
    nbr_rel = take_i8(n_nbr)
    return _CSRBase(
        asns, nbr_off, nbr_tgt, nbr_rel,
        prov_off, prov_tgt, cust_off, cust_tgt, peer_off, peer_tgt,
    )


# ----------------------------------------------------------------------
# Creator side
# ----------------------------------------------------------------------


class SharedGraph:
    """Creator-side handle of a published topology segment.

    Owns the segment: :meth:`destroy` (or exiting the context manager)
    closes the local mapping **and unlinks the name**, which is what
    guarantees zero orphaned segments even after worker crashes — the
    supervisor holds this handle, and workers never own anything.
    """

    def __init__(self, shm, size: int) -> None:
        self._shm = shm
        self.size = size
        #: The attach-by-name key workers receive instead of a pickle.
        #: Kept readable after :meth:`destroy` so callers can assert
        #: the segment is really gone.
        self.name: str = shm.name

    def destroy(self) -> None:
        """Close the mapping and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # already gone; nothing leaked
                pass

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()


def share_graph(graph: ASGraph) -> SharedGraph:
    """Publish a graph's CSR arrays into a fresh shared-memory segment.

    The graph is compacted first (folding any pending overlay edits),
    so the segment reflects the topology exactly as of this call; later
    mutations of ``graph`` do not leak into it.
    """
    if shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    payload = _encode_base(graph.csr_base())
    shm = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        shm.buf[: len(payload)] = payload
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return SharedGraph(shm, len(payload))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class AttachedGraph:
    """Worker-side handle: the graph plus the mapping that backs it."""

    def __init__(self, graph: ASGraph, shm) -> None:
        self.graph = graph
        self._shm = shm

    def close(self) -> None:
        """Drop the local mapping (never unlinks — the creator does).

        Safe to call with array views still referenced somewhere: the
        unmap is then deferred to process exit instead of raising.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self.graph = None  # type: ignore[assignment]
        try:
            shm.close()
        except BufferError:
            # numpy views into the segment are still referenced (e.g.
            # the worker's graph is still in scope).  Defer the unmap
            # to process exit, and disarm SharedMemory.__del__ so it
            # does not retry and spray "Exception ignored" noise.
            shm._buf = None
            shm._mmap = None

    def __enter__(self) -> "AttachedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_graph(name: str) -> AttachedGraph:
    """Attach to a published topology segment by name (zero-copy).

    With numpy present the returned graph's CSR arrays are read-only
    views directly into the shared pages; the pure-Python fallback
    copies them out (correct, just not zero-copy).  Raises
    ``FileNotFoundError`` when no segment of that name exists — e.g.
    after the owning campaign destroyed it.
    """
    if shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    shm = shared_memory.SharedMemory(name=name)
    # Python < 3.13 registers *attachers* with the resource tracker as
    # if they owned the segment.  Within one fork family that is
    # harmless — every process talks to the same tracker, whose cache
    # is a set, so N attach registrations deduplicate against the
    # creator's and the creator's unlink retires the name exactly once.
    # It is even useful: if the whole family dies without unlinking,
    # the tracker reaps the segment at shutdown (crash-safe cleanup).
    # Explicitly unregistering here would instead *remove* the
    # creator's registration and make its own unlink race the tracker.
    try:
        base = _decode_base(shm.buf)
    except BaseException:
        try:
            shm.close()
        except BufferError:
            # The raised exception's traceback frames can pin a view of
            # the buffer; defer the unmap to process exit (see
            # AttachedGraph.close) rather than masking the real error.
            shm._buf = None
            shm._mmap = None
        raise
    return AttachedGraph(ASGraph._from_csr_base(base), shm)
