"""AS-level Internet topology substrate.

Provides the annotated AS graph (customer-provider and peer-peer
relationships), Internet-like synthetic generators, Gao's relationship
inference algorithm, RouteViews-style table synthesis, valley-free path
utilities, and (de)serialization.
"""

from repro.topology.graph import ASGraph
from repro.topology.generators import (
    InternetTopologyConfig,
    generate_internet_topology,
    chain_topology,
    clique_topology,
    example_paper_topology,
)
from repro.topology.paths import (
    is_valley_free,
    split_uphill_downhill,
    downhill_nodes,
    downhill_node_disjoint,
    path_is_loop_free,
)
from repro.topology.inference import InferenceResult, infer_relationships
from repro.topology.routeviews import (
    RouteViewsTable,
    synthesize_routeviews_tables,
    dump_tables,
    parse_tables,
)
from repro.topology.serialization import load_graph, save_graph, graph_to_lines
from repro.topology.validation import ValidationReport, validate_graph
from repro.topology.caida import CAIDAFormatError, CAIDALoadReport, load_caida
from repro.topology.shm import (
    AttachedGraph,
    SharedGraph,
    attach_graph,
    share_graph,
    shared_memory_available,
)

__all__ = [
    "ASGraph",
    "InternetTopologyConfig",
    "generate_internet_topology",
    "chain_topology",
    "clique_topology",
    "example_paper_topology",
    "is_valley_free",
    "split_uphill_downhill",
    "downhill_nodes",
    "downhill_node_disjoint",
    "path_is_loop_free",
    "InferenceResult",
    "infer_relationships",
    "RouteViewsTable",
    "synthesize_routeviews_tables",
    "dump_tables",
    "parse_tables",
    "load_graph",
    "save_graph",
    "graph_to_lines",
    "ValidationReport",
    "validate_graph",
    "CAIDAFormatError",
    "CAIDALoadReport",
    "load_caida",
    "AttachedGraph",
    "SharedGraph",
    "attach_graph",
    "share_graph",
    "shared_memory_available",
]
