"""CAIDA AS-relationship dataset loader.

CAIDA publishes inferred AS relationships as ``|``-delimited text —
one link per line, ``#`` comment lines::

    # source: CAIDA serial-1 as-rel
    1|2|-1        # AS1 is the provider of AS2 (p2c)
    2|3|0         # AS2 and AS3 peer (p2p)
    1|4|-1|bgp    # serial-2 adds an inference-source field (ignored)

This is the same convention :func:`repro.topology.serialization
.load_graph` speaks (and :func:`~repro.topology.serialization
.save_graph` writes), but the serialization module is deliberately a
thin round-trip codec.  Real datasets deserve a stricter front door,
and that is this module:

* every rejected line carries a structured :class:`CAIDAFormatError`
  (``lineno`` / ``line`` / ``reason``), so a 400k-line download with
  one bad record is diagnosable without a text diff;
* duplicate links — even two identical restatements, which the graph
  itself would tolerate — and self-loops are rejected outright: in a
  relationship dump they always mean a corrupted or doubly
  concatenated file;
* the result is delivered through the existing validation path
  (:func:`repro.topology.validation.validate_graph`) on request, so
  the structural assumptions the paper's analysis needs (acyclic
  hierarchy, peered tier-1 core, uphill reachability) are checked on
  the real topology before any campaign spends hours on it.

The loaded graph is an ordinary CSR-backed :class:`ASGraph`: it can be
campaigned, shared to workers over shared memory, and re-saved with
``save_graph`` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Set, TextIO, Union

from repro.errors import ParseError
from repro.topology.graph import ASGraph
from repro.topology.validation import ValidationReport, validate_graph
from repro.types import Link, normalize_link

#: CAIDA relationship codes.
_P2C = -1  # a|b|-1: a is the provider of b
_P2P = 0   # a|b|0: a and b peer


class CAIDAFormatError(ParseError):
    """A rejected line of a CAIDA AS-relationship file.

    Carries the failing ``lineno`` (1-based), the raw ``line``, and a
    human-readable ``reason`` as attributes, so callers can report or
    aggregate rejections structurally instead of parsing the message.
    """

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


@dataclass(frozen=True)
class CAIDALoadReport:
    """What :func:`load_caida` read, and what it thought of it."""

    graph: ASGraph
    #: Customer-provider links loaded (``-1`` lines).
    p2c_links: int
    #: Peering links loaded (``0`` lines).
    p2p_links: int
    #: Comment/blank lines skipped.
    skipped_lines: int
    #: Structural validation outcome, when requested (else ``None``).
    validation: Optional[ValidationReport] = None

    def summary(self) -> str:
        text = (
            f"{len(self.graph)} ASes, {self.p2c_links} c2p + "
            f"{self.p2p_links} p2p links"
        )
        if self.validation is not None:
            text += f"; {self.validation.summary()}"
        return text


def _iter_lines(
    source: Union[str, Path, TextIO, Iterable[str]],
) -> Iterable[str]:
    if hasattr(source, "read"):
        return source.read().splitlines()
    if isinstance(source, (str, Path)):
        return Path(source).read_text(encoding="utf-8").splitlines()
    return source


def load_caida(
    source: Union[str, Path, TextIO, Iterable[str]],
    *,
    validate: bool = False,
) -> CAIDALoadReport:
    """Parse a CAIDA AS-relationship file into an :class:`ASGraph`.

    ``source`` is a path, an open text stream, or an iterable of lines.
    Lines must be ``a|b|rel`` (serial-1) or ``a|b|rel|source``
    (serial-2; the trailing inference-source field is ignored) with
    ``rel`` ``-1`` (*a* provides for *b*) or ``0`` (peers); ``#``
    comments and blank lines are skipped.  Raises
    :class:`CAIDAFormatError` on the first malformed, self-looping, or
    duplicated link.  With ``validate=True`` the report also carries a
    :class:`~repro.topology.validation.ValidationReport` for the loaded
    topology (never raising — real AS graphs routinely violate e.g.
    the fully-peered-core idealization).
    """
    graph = ASGraph()
    seen: Set[Link] = set()
    p2c = p2p = skipped = 0
    for lineno, raw in enumerate(_iter_lines(source), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            skipped += 1
            continue
        parts = line.split("|")
        if len(parts) not in (3, 4):
            raise CAIDAFormatError(
                lineno, raw, "expected 'a|b|rel' or 'a|b|rel|source'"
            )
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError:
            raise CAIDAFormatError(lineno, raw, "non-integer field") from None
        if a < 0 or b < 0:
            raise CAIDAFormatError(lineno, raw, "negative AS number")
        if a == b:
            raise CAIDAFormatError(lineno, raw, f"self-loop at AS {a}")
        key = normalize_link(a, b)
        if key in seen:
            raise CAIDAFormatError(
                lineno, raw, f"duplicate link {key[0]}-{key[1]}"
            )
        seen.add(key)
        if rel == _P2C:
            graph.add_c2p(customer=b, provider=a)
            p2c += 1
        elif rel == _P2P:
            graph.add_p2p(a, b)
            p2p += 1
        else:
            raise CAIDAFormatError(
                lineno, raw,
                f"unknown relationship code {rel} (expected -1 or 0)",
            )
    report = validate_graph(graph) if validate else None
    return CAIDALoadReport(
        graph=graph,
        p2c_links=p2c,
        p2p_links=p2p,
        skipped_lines=skipped,
        validation=report,
    )
