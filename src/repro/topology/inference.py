"""Gao's AS relationship inference algorithm.

The paper derives its AS topology from RouteViews BGP tables and infers
customer-provider / peer-peer relationships "using Gao's algorithm"
[Gao 2001, IEEE/ACM ToN].  We implement the classic three-phase
algorithm so the full paper pipeline (tables -> annotated graph ->
experiments) can be reproduced end to end on synthetic tables:

1. **Transit counting** — in each AS path, the highest-degree AS is
   taken as the top provider; every AS left of it is inferred to use
   its right neighbor as transit (uphill), every AS right of it
   provides transit to its right neighbor (downhill).
2. **Relationship assignment** — an edge where only one side ever
   transits for the other is customer-provider; edges with (more than
   ``sibling_threshold``) transit observations in both directions are
   siblings, which we conservatively fold into peering.
3. **Peering identification** — the top edge of each path whose
   endpoints never transit for each other and whose degrees are within
   ``peering_degree_ratio`` is labeled peer-peer.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.topology.graph import ASGraph
from repro.types import ASN, Link, Relationship, normalize_link


@dataclass
class InferenceResult:
    """Outcome of relationship inference over a set of AS paths."""

    #: Inferred annotated graph (only links seen in at least one path).
    graph: ASGraph
    #: Links inferred as peer-peer (normalized pairs).
    peer_links: Set[Link] = field(default_factory=set)
    #: Links inferred as customer-provider, customer first.
    c2p_links: Set[Link] = field(default_factory=set)
    #: Links with transit observations both ways (possible siblings).
    sibling_links: Set[Link] = field(default_factory=set)

    def accuracy_against(self, truth: ASGraph) -> Dict[str, float]:
        """Fraction of inferred links whose label matches ground truth.

        Returns per-class accuracy plus overall, considering only links
        present in both graphs.
        """
        total = correct = 0
        per_class: Dict[str, List[int]] = {"c2p": [0, 0], "p2p": [0, 0]}
        for customer, provider in self.c2p_links:
            if not truth.has_link(customer, provider):
                continue
            total += 1
            per_class["c2p"][1] += 1
            if truth.relationship(customer, provider) is Relationship.PROVIDER:
                correct += 1
                per_class["c2p"][0] += 1
        for a, b in self.peer_links:
            if not truth.has_link(a, b):
                continue
            total += 1
            per_class["p2p"][1] += 1
            if truth.relationship(a, b) is Relationship.PEER:
                correct += 1
                per_class["p2p"][0] += 1
        out = {
            "overall": correct / total if total else 0.0,
        }
        for name, (hits, seen) in per_class.items():
            out[name] = hits / seen if seen else 0.0
        return out


def infer_relationships(
    paths: Iterable[Sequence[ASN]],
    *,
    sibling_threshold: int = 1,
    peering_degree_ratio: float = 60.0,
) -> InferenceResult:
    """Infer AS relationships from observed AS paths (Gao's algorithm).

    ``paths`` are forwarding-order AS paths (vantage point first, origin
    last), e.g. the AS_PATH column of RouteViews table dumps.
    """
    path_list: List[Tuple[ASN, ...]] = [tuple(p) for p in paths if len(p) >= 2]

    # Degrees as seen in the paths themselves (the measured graph).
    neighbor_sets: Dict[ASN, Set[ASN]] = defaultdict(set)
    for path in path_list:
        for u, v in zip(path, path[1:]):
            if u == v:
                continue
            neighbor_sets[u].add(v)
            neighbor_sets[v].add(u)
    degree = {asn: len(nbrs) for asn, nbrs in neighbor_sets.items()}

    # Phase 1: transit counting.  transit[(u, v)] counts observations
    # of "v provides transit for u", i.e. v looks like u's provider.
    transit: Counter = Counter()
    for path in path_list:
        top = max(range(len(path)), key=lambda i: (degree[path[i]], -i))
        for i in range(top):
            transit[(path[i], path[i + 1])] += 1
        for i in range(top, len(path) - 1):
            transit[(path[i + 1], path[i])] += 1

    # Phase 2: relationship assignment.
    links: Set[Link] = set()
    for path in path_list:
        for u, v in zip(path, path[1:]):
            if u != v:
                links.add(normalize_link(u, v))

    c2p: Set[Link] = set()
    siblings: Set[Link] = set()
    for a, b in sorted(links):
        ab = transit[(a, b)]  # b transits for a  => b provider of a
        ba = transit[(b, a)]
        if ab > sibling_threshold and ba > sibling_threshold:
            siblings.add((a, b))
        elif ab > 0 and ba > 0:
            # Conflicting but weak evidence: trust the heavier side.
            if ab >= ba:
                c2p.add((a, b))
            else:
                c2p.add((b, a))
        elif ab > 0:
            c2p.add((a, b))
        elif ba > 0:
            c2p.add((b, a))

    # Phase 3: peering identification among each path's top edge.
    not_peering: Set[Link] = set()
    candidate_peers: Set[Link] = set()
    for path in path_list:
        top = max(range(len(path)), key=lambda i: (degree[path[i]], -i))
        for index, (u, v) in enumerate(zip(path, path[1:])):
            link = normalize_link(u, v)
            if index in (top - 1, top):
                candidate_peers.add(link)
            else:
                not_peering.add(link)

    peers: Set[Link] = set()
    for a, b in sorted(candidate_peers - not_peering):
        if (a, b) in siblings:
            continue
        deg_a, deg_b = degree.get(a, 1), degree.get(b, 1)
        ratio = max(deg_a, deg_b) / max(1, min(deg_a, deg_b))
        if ratio > peering_degree_ratio:
            continue
        # Peering requires no transit evidence in either direction.
        if transit[(a, b)] == 0 and transit[(b, a)] == 0:
            peers.add((a, b))

    # Assemble the inferred graph; peer labels win over c2p (a c2p label
    # for a peer candidate can only come from misclassified top edges).
    graph = ASGraph()
    final_c2p: Set[Link] = set()
    for customer, provider in sorted(c2p):
        link = normalize_link(customer, provider)
        if link in peers or link in siblings:
            continue
        graph.add_c2p(customer, provider)
        final_c2p.add((customer, provider))
    for a, b in sorted(peers | siblings):
        if not graph.has_link(a, b):
            graph.add_p2p(a, b)
    # Any link never classified (no transit evidence, not a candidate
    # peer) defaults to peering — no evidence of hierarchy.
    for a, b in sorted(links):
        if not graph.has_link(a, b):
            graph.add_p2p(a, b)
            peers.add((a, b))

    return InferenceResult(
        graph=graph,
        peer_links=peers,
        c2p_links=final_c2p,
        sibling_links=siblings,
    )
