"""Retained dict-of-dicts AS graph: the differential-test twin.

This is the pre-CSR implementation of :class:`repro.topology.graph
.ASGraph`, kept verbatim (renamed) as the executable specification the
CSR core is pinned against.  ``tests/topology/test_csr_equivalence.py``
drives randomized build + mutation streams through both classes and
asserts every observable — adjacency views, ``relationship``,
``version`` semantics, error types and messages, link enumeration
order — is identical.  Do not "improve" this class: its value is that
it does not change.
"""
from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    CyclicHierarchyError,
    TopologyError,
    UnknownASError,
    UnknownLinkError,
)
from repro.types import ASN, Link, Relationship, normalize_link

#: Cached per-AS adjacency: (providers, customers, peers, neighbors).
_AdjView = Tuple[
    Tuple[ASN, ...], Tuple[ASN, ...], Tuple[ASN, ...], Tuple[ASN, ...]
]


class ReferenceASGraph:
    """Mutable AS-level topology with relationship-annotated links.

    Relationships are stored from each endpoint's viewpoint:
    ``graph.relationship(a, b)`` answers "what is *b* to *a*?".
    """

    def __init__(self) -> None:
        self._nbr: Dict[ASN, Dict[ASN, Relationship]] = {}
        self._version = 0
        self._views: Dict[ASN, _AdjView] = {}
        self._ases: Optional[Tuple[ASN, ...]] = None
        self._tier1s: Optional[Tuple[ASN, ...]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _invalidate(self) -> None:
        self._version += 1
        if self._views:
            self._views.clear()
        self._ases = None
        self._tier1s = None

    def add_as(self, asn: ASN) -> None:
        """Add an AS with no links (idempotent)."""
        if asn not in self._nbr:
            self._nbr[asn] = {}
            self._invalidate()

    def add_c2p(self, customer: ASN, provider: ASN) -> None:
        """Add a customer-provider link.

        Raises :class:`TopologyError` on self-links or if the link
        already exists with a different relationship.
        """
        self._add_link(customer, provider, Relationship.PROVIDER)

    def add_p2p(self, a: ASN, b: ASN) -> None:
        """Add a settlement-free peering link."""
        self._add_link(a, b, Relationship.PEER)

    def _add_link(self, a: ASN, b: ASN, rel_of_b: Relationship) -> None:
        if a == b:
            raise TopologyError(f"self-link at AS {a}")
        self.add_as(a)
        self.add_as(b)
        existing = self._nbr[a].get(b)
        if existing is not None:
            if existing is not rel_of_b:
                raise TopologyError(
                    f"link {a}-{b} already exists with relationship {existing.value}"
                )
            return
        self._nbr[a][b] = rel_of_b
        self._nbr[b][a] = rel_of_b.inverse
        self._invalidate()

    def remove_link(self, a: ASN, b: ASN) -> None:
        """Remove the link between two ASes."""
        if not self.has_link(a, b):
            raise UnknownLinkError(f"no link {a}-{b}")
        del self._nbr[a][b]
        del self._nbr[b][a]
        self._invalidate()

    def remove_as(self, asn: ASN) -> None:
        """Remove an AS and all of its links."""
        self._require(asn)
        for nbr in list(self._nbr[asn]):
            del self._nbr[nbr][asn]
        del self._nbr[asn]
        self._invalidate()

    def copy(self) -> "ReferenceASGraph":
        """Deep copy of the graph (caches are rebuilt lazily)."""
        clone = ReferenceASGraph()
        clone._nbr = {asn: dict(nbrs) for asn, nbrs in self._nbr.items()}
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever the topology changes."""
        return self._version

    def _require(self, asn: ASN) -> None:
        if asn not in self._nbr:
            raise UnknownASError(f"AS {asn} not in graph")

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._nbr

    def __len__(self) -> int:
        return len(self._nbr)

    def __iter__(self) -> Iterator[ASN]:
        return iter(self._nbr)

    @property
    def ases(self) -> Tuple[ASN, ...]:
        """All AS numbers, sorted (stable iteration for seeded runs)."""
        if self._ases is None:
            self._ases = tuple(sorted(self._nbr))
        return self._ases

    def has_link(self, a: ASN, b: ASN) -> bool:
        """Whether a direct link exists between two ASes."""
        return a in self._nbr and b in self._nbr[a]

    def relationship(self, a: ASN, b: ASN) -> Relationship:
        """What *b* is to *a* (customer, peer, or provider)."""
        self._require(a)
        try:
            return self._nbr[a][b]
        except KeyError:
            raise UnknownLinkError(f"no link {a}-{b}") from None

    def neighbor_relationships(self, asn: ASN) -> Dict[ASN, Relationship]:
        """Fresh ``{neighbor: relationship}`` mapping of one AS.

        One C-level dict copy of the adjacency row — the cheap way for
        speakers to seed their per-neighbor tables eagerly instead of
        one :meth:`relationship` call per neighbor.
        """
        self._require(asn)
        return dict(self._nbr[asn])

    def _view(self, asn: ASN) -> _AdjView:
        view = self._views.get(asn)
        if view is None:
            self._require(asn)
            providers: List[ASN] = []
            customers: List[ASN] = []
            peers: List[ASN] = []
            for nbr, rel in self._nbr[asn].items():
                if rel is Relationship.PROVIDER:
                    providers.append(nbr)
                elif rel is Relationship.CUSTOMER:
                    customers.append(nbr)
                else:
                    peers.append(nbr)
            providers.sort()
            customers.sort()
            peers.sort()
            view = (
                tuple(providers),
                tuple(customers),
                tuple(peers),
                tuple(sorted(self._nbr[asn])),
            )
            self._views[asn] = view
        return view

    def neighbors(self, asn: ASN) -> Tuple[ASN, ...]:
        """All neighbors of an AS, sorted (cached tuple)."""
        return self._view(asn)[3]

    def providers(self, asn: ASN) -> Tuple[ASN, ...]:
        """Providers of an AS, sorted (cached tuple)."""
        return self._view(asn)[0]

    def customers(self, asn: ASN) -> Tuple[ASN, ...]:
        """Customers of an AS, sorted (cached tuple)."""
        return self._view(asn)[1]

    def peers(self, asn: ASN) -> Tuple[ASN, ...]:
        """Peers of an AS, sorted (cached tuple)."""
        return self._view(asn)[2]

    def degree(self, asn: ASN) -> int:
        """Number of neighbors."""
        self._require(asn)
        return len(self._nbr[asn])

    def is_multihomed(self, asn: ASN) -> bool:
        """Whether the AS has two or more providers."""
        return len(self._view(asn)[0]) >= 2

    def is_stub(self, asn: ASN) -> bool:
        """Whether the AS has no customers."""
        return not self._view(asn)[1]

    def is_tier1(self, asn: ASN) -> bool:
        """Whether the AS has no providers (top of the hierarchy)."""
        return not self._view(asn)[0]

    def tier1s(self) -> Tuple[ASN, ...]:
        """All provider-free ASes, sorted (cached tuple)."""
        if self._tier1s is None:
            self._tier1s = tuple(
                asn for asn in self.ases if not self._view(asn)[0]
            )
        return self._tier1s

    def links(self) -> List[Tuple[ASN, ASN, Relationship]]:
        """Every undirected link once, as ``(a, b, what-b-is-to-a)``.

        c2p links are reported customer-first, p2p links low-ASN-first.
        """
        out: List[Tuple[ASN, ASN, Relationship]] = []
        seen: Set[Link] = set()
        for a in self.ases:
            for b, rel in self._nbr[a].items():
                key = normalize_link(a, b)
                if key in seen:
                    continue
                seen.add(key)
                if rel is Relationship.PROVIDER:
                    out.append((a, b, Relationship.PROVIDER))
                elif rel is Relationship.CUSTOMER:
                    out.append((b, a, Relationship.PROVIDER))
                else:
                    out.append((key[0], key[1], Relationship.PEER))
        return out

    def c2p_links(self) -> List[Link]:
        """Every customer-provider link, customer first."""
        return [(a, b) for a, b, rel in self.links() if rel is Relationship.PROVIDER]

    def p2p_links(self) -> List[Link]:
        """Every peering link, low ASN first."""
        return [(a, b) for a, b, rel in self.links() if rel is Relationship.PEER]

    # ------------------------------------------------------------------
    # Hierarchy analysis
    # ------------------------------------------------------------------

    def check_acyclic_hierarchy(self) -> None:
        """Raise :class:`CyclicHierarchyError` if c2p edges form a cycle.

        The paper assumes customer-provider relationships are acyclic
        (no AS is an indirect provider of its own provider).
        """
        try:
            self.topological_order()
        except CyclicHierarchyError:
            raise

    def topological_order(self) -> List[ASN]:
        """ASes ordered so every customer precedes its providers.

        Raises :class:`CyclicHierarchyError` when the hierarchy is cyclic.
        """
        # indegree counts customers still unprocessed below each provider.
        indegree: Dict[ASN, int] = {asn: 0 for asn in self._nbr}
        for _, provider in self.iter_c2p():
            indegree[provider] += 1
        ready = sorted(asn for asn, deg in indegree.items() if deg == 0)
        order: List[ASN] = []
        queue = list(ready)
        while queue:
            asn = queue.pop()
            order.append(asn)
            for provider in self.providers(asn):
                indegree[provider] -= 1
                if indegree[provider] == 0:
                    queue.append(provider)
        if len(order) != len(self._nbr):
            raise CyclicHierarchyError("customer-provider hierarchy contains a cycle")
        return order

    def iter_c2p(self) -> Iterator[Link]:
        """Iterate over every c2p link, customer first."""
        for a in self._nbr:
            for b, rel in self._nbr[a].items():
                if rel is Relationship.PROVIDER:
                    yield (a, b)

    def uphill_reachable_tier1s(self, asn: ASN) -> Set[ASN]:
        """Tier-1 ASes reachable from ``asn`` by climbing provider links."""
        self._require(asn)
        seen: Set[ASN] = set()
        stack = [asn]
        found: Set[ASN] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            providers = self._view(node)[0]
            if not providers:
                found.add(node)
            stack.extend(providers)
        return found

    def first_multihomed_ancestor(self, asn: ASN) -> ASN | None:
        """First multi-homed AS on a single-homed AS's provider chain.

        Used by the paper to transfer the disjointness probability of a
        single-homed AS to its first multi-homed (direct or indirect)
        provider (footnote 4).  Returns ``asn`` itself when it is already
        multi-homed, and ``None`` if the chain ends at a tier-1 without
        ever meeting a multi-homed AS.
        """
        self._require(asn)
        current = asn
        visited: Set[ASN] = set()
        while True:
            providers = self._view(current)[0]
            if len(providers) >= 2:
                return current
            if not providers:
                return None
            if current in visited:  # defensive; acyclic graphs never hit this
                return None
            visited.add(current)
            current = providers[0]

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReferenceASGraph(|V|={len(self)}, c2p={len(self.c2p_links())}, "
            f"p2p={len(self.p2p_links())})"
        )
