"""AS graph (de)serialization in a CAIDA-like text format.

One link per line: ``a|b|-1`` means *a is the provider of b* (CAIDA's
serial-1 convention), ``a|b|0`` means a and b peer.  Lines starting
with ``#`` are comments.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, TextIO, Union

from repro.errors import ParseError
from repro.topology.graph import ASGraph

_P2C = -1
_P2P = 0


def graph_to_lines(graph: ASGraph) -> List[str]:
    """Serialize a graph to CAIDA-style lines (deterministic order)."""
    lines: List[str] = []
    for customer, provider in sorted(graph.c2p_links()):
        lines.append(f"{provider}|{customer}|{_P2C}")
    for a, b in sorted(graph.p2p_links()):
        lines.append(f"{a}|{b}|{_P2P}")
    return lines


def save_graph(graph: ASGraph, target: Union[str, Path, TextIO]) -> None:
    """Write a graph to a path or open stream."""
    lines = graph_to_lines(graph)
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text, encoding="utf-8")


def load_graph(source: Union[str, Path, TextIO, Iterable[str]]) -> ASGraph:
    """Load a graph from a path, open stream, or iterable of lines."""
    if hasattr(source, "read"):
        lines: Iterable[str] = source.read().splitlines()
    elif isinstance(source, (str, Path)):
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = source

    graph = ASGraph()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) != 3:
            raise ParseError(f"line {lineno}: expected 'a|b|rel', got {raw!r}")
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError:
            raise ParseError(f"line {lineno}: non-integer field in {raw!r}") from None
        if rel == _P2C:
            graph.add_c2p(customer=b, provider=a)
        elif rel == _P2P:
            graph.add_p2p(a, b)
        else:
            raise ParseError(f"line {lineno}: unknown relationship code {rel}")
    return graph
