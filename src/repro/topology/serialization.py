"""AS graph (de)serialization.

Two formats:

* a CAIDA-like text format — one link per line: ``a|b|-1`` means *a is
  the provider of b* (CAIDA's serial-1 convention), ``a|b|0`` means a
  and b peer; lines starting with ``#`` are comments;
* a compact binary fast path (:func:`graph_to_bytes` /
  :func:`graph_from_bytes`) used to ship topologies to worker
  processes — a pickled link/AS payload that restores in one pass
  without text parsing, preserving isolated ASes the text format
  cannot represent.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Iterable, List, TextIO, Union

from repro.errors import ParseError
from repro.topology.graph import ASGraph

_P2C = -1
_P2P = 0

#: Magic + version tag of the binary payload.
_BINARY_TAG = "repro-asgraph-v1"


def graph_to_lines(graph: ASGraph) -> List[str]:
    """Serialize a graph to CAIDA-style lines (deterministic order)."""
    lines: List[str] = []
    for customer, provider in sorted(graph.c2p_links()):
        lines.append(f"{provider}|{customer}|{_P2C}")
    for a, b in sorted(graph.p2p_links()):
        lines.append(f"{a}|{b}|{_P2P}")
    return lines


def save_graph(graph: ASGraph, target: Union[str, Path, TextIO]) -> None:
    """Write a graph to a path or open stream."""
    lines = graph_to_lines(graph)
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text, encoding="utf-8")


def graph_to_bytes(graph: ASGraph) -> bytes:
    """Serialize a graph to a compact binary payload (deterministic).

    Ships the sorted link lists plus the full AS set (so ASes without
    links survive the round trip), pickled at the highest protocol —
    an order of magnitude faster to restore than the text format,
    which matters when every worker process rebuilds the topology.
    """
    payload = (
        _BINARY_TAG,
        sorted(graph.c2p_links()),
        sorted(graph.p2p_links()),
        list(graph.ases),
    )
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def graph_from_bytes(data: bytes) -> ASGraph:
    """Restore a graph serialized by :func:`graph_to_bytes`."""
    try:
        payload = pickle.loads(data)
    except Exception as exc:
        raise ParseError(f"not a serialized AS graph: {exc}") from exc
    if (
        not isinstance(payload, tuple)
        or len(payload) != 4
        or payload[0] != _BINARY_TAG
    ):
        raise ParseError("not a serialized AS graph (bad tag)")
    _, c2p, p2p, ases = payload
    graph = ASGraph()
    for asn in ases:
        graph.add_as(asn)
    for customer, provider in c2p:
        graph.add_c2p(customer=customer, provider=provider)
    for a, b in p2p:
        graph.add_p2p(a, b)
    return graph


def load_graph(source: Union[str, Path, TextIO, Iterable[str]]) -> ASGraph:
    """Load a graph from a path, open stream, or iterable of lines."""
    if hasattr(source, "read"):
        lines: Iterable[str] = source.read().splitlines()
    elif isinstance(source, (str, Path)):
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = source

    graph = ASGraph()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) != 3:
            raise ParseError(f"line {lineno}: expected 'a|b|rel', got {raw!r}")
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError:
            raise ParseError(f"line {lineno}: non-integer field in {raw!r}") from None
        if rel == _P2C:
            graph.add_c2p(customer=b, provider=a)
        elif rel == _P2P:
            graph.add_p2p(a, b)
        else:
            raise ParseError(f"line {lineno}: unknown relationship code {rel}")
    return graph
