"""Annotated AS graph on an int-indexed CSR core.

Each AS is one node (the paper's model); each link carries one of the
two common business relationships: customer-provider (c2p) or peer-peer
(p2p).  The customer-provider hierarchy is required to be acyclic, which
is the assumption under which Gao-Rexford safety (and hence the paper's
analysis) holds.

Storage model (the "production scale" substrate — real AS graphs are
~80k nodes, far past where dict-of-dicts adjacency pays off):

* **CSR base** — an immutable compressed-sparse-row snapshot
  (:class:`_CSRBase`).  ASNs are interned to dense indices; neighbor
  rows live in contiguous offset/target arrays (numpy ``int64``/``int8``
  when numpy is importable, stdlib :mod:`array` otherwise — the same
  optional-accelerator pattern as the walk classifier).  One array
  family keeps rows in *link insertion order* (preserving the exact
  enumeration order the dict-of-dicts implementation exposed through
  :meth:`links` and :meth:`iter_c2p`); a second family keeps one
  sorted-ASN row per relationship class, which the cached adjacency
  views slice directly.
* **Delta overlay** — mutations (link fail/restore, episode AS
  fail/restore) never touch the base arrays: the affected rows are
  materialized into small per-AS dicts and edited there.  The base is
  re-folded lazily, only when the overlay grows past ~1/8 of the rows
  (or on an explicit :meth:`compact`), so a failure experiment that
  flips two links back and forth never pays a rebuild — and a base
  attached read-only from shared memory (:mod:`repro.topology.shm`) is
  never written by any worker.

The query API is unchanged from the dict era: ``providers`` /
``customers`` / ``peers`` / ``neighbors`` return shared immutable
sorted tuples cached per AS, ``is_tier1`` / ``is_multihomed`` /
``degree`` are O(1) after the first view build, and every mutation
bumps :attr:`version` and invalidates the views, so speakers, Φ caches
and successor tables key off ``version`` exactly as before.  The
retained pre-CSR implementation
(:class:`repro.topology.reference.ReferenceASGraph`) is the executable
specification; ``tests/topology/test_csr_equivalence.py`` pins the two
identical under randomized mutation streams.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    CyclicHierarchyError,
    TopologyError,
    UnknownASError,
    UnknownLinkError,
)
from repro.types import ASN, Link, Relationship, normalize_link

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except Exception:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

#: Cached per-AS adjacency: (providers, customers, peers, neighbors).
_AdjView = Tuple[
    Tuple[ASN, ...], Tuple[ASN, ...], Tuple[ASN, ...], Tuple[ASN, ...]
]

#: Relationship codes used in the CSR ``rel`` arrays (stable: they are
#: part of the shared-memory segment layout).
_REL_OF_CODE: Tuple[Relationship, ...] = (
    Relationship.PROVIDER,
    Relationship.CUSTOMER,
    Relationship.PEER,
)
_CODE_OF_REL: Dict[Relationship, int] = {
    rel: code for code, rel in enumerate(_REL_OF_CODE)
}


def _index_array(values: Sequence[int]):
    """An int64 sequence: numpy array when available, ``array('q')``."""
    if _np is not None:
        arr = _np.asarray(values, dtype=_np.int64)
        arr.flags.writeable = False
        return arr
    return array("q", values)


def _code_array(values: Sequence[int]):
    """An int8 sequence for relationship codes."""
    if _np is not None:
        arr = _np.asarray(values, dtype=_np.int8)
        arr.flags.writeable = False
        return arr
    return array("b", values)


class _CSRBase:
    """Immutable CSR snapshot of the adjacency.

    ``asns`` maps dense index -> ASN in graph insertion order (the
    interning table); ``index`` is its inverse.  ``nbr_*`` keep each
    AS's neighbors in link insertion order (targets as dense indices,
    relationships as codes).  ``prov_*`` / ``cust_*`` / ``peer_*`` keep
    one sorted row of neighbor *ASNs* per relationship class — the
    arrays the adjacency views are sliced from without re-sorting.

    Instances are never mutated after construction; the graph's delta
    overlay masks them row by row, and a rebuild produces a fresh
    snapshot.  That immutability is what makes sharing a base across
    :meth:`ASGraph.copy` clones — and across processes via
    :mod:`repro.topology.shm` — safe.
    """

    __slots__ = (
        "index", "asns",
        "nbr_off", "nbr_tgt", "nbr_rel",
        "prov_off", "prov_tgt",
        "cust_off", "cust_tgt",
        "peer_off", "peer_tgt",
    )

    def __init__(
        self, asns, nbr_off, nbr_tgt, nbr_rel,
        prov_off, prov_tgt, cust_off, cust_tgt, peer_off, peer_tgt,
    ) -> None:
        self.asns: List[ASN] = list(asns)
        self.index: Dict[ASN, int] = {
            asn: i for i, asn in enumerate(self.asns)
        }
        self.nbr_off = nbr_off
        self.nbr_tgt = nbr_tgt
        self.nbr_rel = nbr_rel
        self.prov_off = prov_off
        self.prov_tgt = prov_tgt
        self.cust_off = cust_off
        self.cust_tgt = cust_tgt
        self.peer_off = peer_off
        self.peer_tgt = peer_tgt

    def __getstate__(self):
        # Arrays may be read-only views over a shared-memory buffer;
        # pickling materializes them as plain lists so a snapshot (e.g.
        # a graph captured inside a ledgered result) never depends on
        # the segment — or on numpy — being present at load time.
        return (
            self.asns,
            self.nbr_off.tolist(), self.nbr_tgt.tolist(),
            self.nbr_rel.tolist(),
            self.prov_off.tolist(), self.prov_tgt.tolist(),
            self.cust_off.tolist(), self.cust_tgt.tolist(),
            self.peer_off.tolist(), self.peer_tgt.tolist(),
        )

    def __setstate__(self, state) -> None:
        (asns, nbr_off, nbr_tgt, nbr_rel, prov_off, prov_tgt,
         cust_off, cust_tgt, peer_off, peer_tgt) = state
        self.__init__(
            asns,
            _index_array(nbr_off), _index_array(nbr_tgt),
            _code_array(nbr_rel),
            _index_array(prov_off), _index_array(prov_tgt),
            _index_array(cust_off), _index_array(cust_tgt),
            _index_array(peer_off), _index_array(peer_tgt),
        )

    @classmethod
    def from_rows(cls, asns: Sequence[ASN], row_of) -> "_CSRBase":
        """Fold insertion-ordered adjacency rows into CSR arrays.

        ``row_of(asn)`` yields ``(neighbor, relationship)`` pairs in
        link insertion order; every neighbor must itself be in
        ``asns``.
        """
        index = {asn: i for i, asn in enumerate(asns)}
        nbr_off = [0]
        nbr_tgt: List[int] = []
        nbr_rel: List[int] = []
        prov_off = [0]
        prov_tgt: List[int] = []
        cust_off = [0]
        cust_tgt: List[int] = []
        peer_off = [0]
        peer_tgt: List[int] = []
        for asn in asns:
            prov: List[int] = []
            cust: List[int] = []
            peer: List[int] = []
            for nbr, rel in row_of(asn):
                nbr_tgt.append(index[nbr])
                nbr_rel.append(_CODE_OF_REL[rel])
                if rel is Relationship.PROVIDER:
                    prov.append(nbr)
                elif rel is Relationship.CUSTOMER:
                    cust.append(nbr)
                else:
                    peer.append(nbr)
            nbr_off.append(len(nbr_tgt))
            prov.sort()
            cust.sort()
            peer.sort()
            prov_tgt.extend(prov)
            cust_tgt.extend(cust)
            peer_tgt.extend(peer)
            prov_off.append(len(prov_tgt))
            cust_off.append(len(cust_tgt))
            peer_off.append(len(peer_tgt))
        return cls(
            asns,
            _index_array(nbr_off), _index_array(nbr_tgt),
            _code_array(nbr_rel),
            _index_array(prov_off), _index_array(prov_tgt),
            _index_array(cust_off), _index_array(cust_tgt),
            _index_array(peer_off), _index_array(peer_tgt),
        )

    # -- row decoding --------------------------------------------------

    def row_pairs(self, idx: int) -> List[Tuple[ASN, Relationship]]:
        """Insertion-ordered ``(neighbor ASN, relationship)`` pairs."""
        start = int(self.nbr_off[idx])
        end = int(self.nbr_off[idx + 1])
        asns = self.asns
        return [
            (asns[t], _REL_OF_CODE[r])
            for t, r in zip(
                self.nbr_tgt[start:end].tolist(),
                self.nbr_rel[start:end].tolist(),
            )
        ]

    def rel_of(self, idx: int, b: ASN) -> Optional[Relationship]:
        """Relationship of neighbor ``b`` in row ``idx`` (or None)."""
        for off, tgt, rel in (
            (self.prov_off, self.prov_tgt, Relationship.PROVIDER),
            (self.cust_off, self.cust_tgt, Relationship.CUSTOMER),
            (self.peer_off, self.peer_tgt, Relationship.PEER),
        ):
            start = int(off[idx])
            end = int(off[idx + 1])
            pos = bisect_left(tgt, b, start, end)
            if pos < end and tgt[pos] == b:
                return rel
        return None

    def degree_of(self, idx: int) -> int:
        return int(self.nbr_off[idx + 1]) - int(self.nbr_off[idx])

    def view_of(self, idx: int) -> _AdjView:
        """Build one AS's cached adjacency view from the sorted rows."""
        prov = tuple(
            self.prov_tgt[int(self.prov_off[idx]):int(self.prov_off[idx + 1])]
            .tolist()
        )
        cust = tuple(
            self.cust_tgt[int(self.cust_off[idx]):int(self.cust_off[idx + 1])]
            .tolist()
        )
        peer = tuple(
            self.peer_tgt[int(self.peer_off[idx]):int(self.peer_off[idx + 1])]
            .tolist()
        )
        return (prov, cust, peer, tuple(sorted(prov + cust + peer)))


class ASGraph:
    """Mutable AS-level topology with relationship-annotated links.

    Relationships are stored from each endpoint's viewpoint:
    ``graph.relationship(a, b)`` answers "what is *b* to *a*?".

    Internally the adjacency lives on an int-indexed CSR base plus a
    small mutation overlay (see the module docstring); the public API —
    including :attr:`version` semantics, error types, and the order of
    every enumeration — is identical to the retained dict-of-dicts
    reference implementation.
    """

    def __init__(self) -> None:
        #: Live AS registry in insertion order (the dict-of-dicts key
        #: order the reference implementation iterated in).
        self._live: Dict[ASN, None] = {}
        #: Per-AS replacement rows masking the base (delta overlay).
        self._overlay: Dict[ASN, Dict[ASN, Relationship]] = {}
        self._base: Optional[_CSRBase] = None
        self._version = 0
        self._views: Dict[ASN, _AdjView] = {}
        self._ases: Optional[Tuple[ASN, ...]] = None
        self._tier1s: Optional[Tuple[ASN, ...]] = None

    # ------------------------------------------------------------------
    # CSR lifecycle
    # ------------------------------------------------------------------

    def _overlay_heavy(self) -> bool:
        return self._base is None or (
            len(self._overlay) * 8 > len(self._live)
        )

    def _compact(self) -> None:
        self._base = _CSRBase.from_rows(list(self._live), self._row_items)
        self._overlay.clear()

    def compact(self) -> "ASGraph":
        """Fold pending overlay edits into a fresh CSR base (idempotent).

        Queries compact lazily on their own; calling this explicitly is
        only needed before exporting the CSR arrays (shared memory) or
        when benchmarking the fold itself.  Returns ``self``.
        """
        if self._overlay or self._base is None:
            self._compact()
        return self

    def csr_base(self) -> _CSRBase:
        """The compacted CSR snapshot (compacting first if needed).

        The returned object is immutable and remains valid — and
        correct for the topology at the moment of the call — no matter
        how the graph is mutated afterwards.  Used by
        :mod:`repro.topology.shm` to export the arrays.
        """
        self.compact()
        assert self._base is not None
        return self._base

    @classmethod
    def _from_csr_base(cls, base: _CSRBase) -> "ASGraph":
        """Wrap an existing CSR snapshot (shared-memory attach path)."""
        graph = cls()
        graph._live = dict.fromkeys(base.asns)
        graph._base = base
        return graph

    # ------------------------------------------------------------------
    # Row access (insertion-ordered, overlay-masked)
    # ------------------------------------------------------------------

    def _row_items(self, asn: ASN) -> List[Tuple[ASN, Relationship]]:
        row = self._overlay.get(asn)
        if row is not None:
            return list(row.items())
        base = self._base
        if base is not None:
            idx = base.index.get(asn)
            if idx is not None:
                return base.row_pairs(idx)
        return []

    def _rel_lookup(self, a: ASN, b: ASN) -> Optional[Relationship]:
        row = self._overlay.get(a)
        if row is not None:
            return row.get(b)
        base = self._base
        if base is not None:
            idx = base.index.get(a)
            if idx is not None:
                return base.rel_of(idx, b)
        return None

    def _materialize(self, asn: ASN) -> Dict[ASN, Relationship]:
        """The AS's row as an editable overlay dict (copy-on-write)."""
        row = self._overlay.get(asn)
        if row is None:
            row = dict(self._row_items(asn))
            self._overlay[asn] = row
        return row

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _invalidate(self) -> None:
        self._version += 1
        if self._views:
            self._views.clear()
        self._ases = None
        self._tier1s = None

    def add_as(self, asn: ASN) -> None:
        """Add an AS with no links (idempotent)."""
        if asn not in self._live:
            self._live[asn] = None
            # A fresh (or re-added) AS always gets an overlay row: a
            # stale base row from before a removal must never show
            # through.
            self._overlay[asn] = {}
            self._invalidate()

    def add_c2p(self, customer: ASN, provider: ASN) -> None:
        """Add a customer-provider link.

        Raises :class:`TopologyError` on self-links or if the link
        already exists with a different relationship.
        """
        self._add_link(customer, provider, Relationship.PROVIDER)

    def add_p2p(self, a: ASN, b: ASN) -> None:
        """Add a settlement-free peering link."""
        self._add_link(a, b, Relationship.PEER)

    def _add_link(self, a: ASN, b: ASN, rel_of_b: Relationship) -> None:
        if a == b:
            raise TopologyError(f"self-link at AS {a}")
        self.add_as(a)
        self.add_as(b)
        existing = self._rel_lookup(a, b)
        if existing is not None:
            if existing is not rel_of_b:
                raise TopologyError(
                    f"link {a}-{b} already exists with relationship {existing.value}"
                )
            return
        self._materialize(a)[b] = rel_of_b
        self._materialize(b)[a] = rel_of_b.inverse
        self._invalidate()

    def remove_link(self, a: ASN, b: ASN) -> None:
        """Remove the link between two ASes."""
        if not self.has_link(a, b):
            raise UnknownLinkError(f"no link {a}-{b}")
        del self._materialize(a)[b]
        del self._materialize(b)[a]
        self._invalidate()

    def remove_as(self, asn: ASN) -> None:
        """Remove an AS and all of its links."""
        self._require(asn)
        for nbr, _rel in self._row_items(asn):
            del self._materialize(nbr)[asn]
        self._overlay.pop(asn, None)
        del self._live[asn]
        self._invalidate()

    def copy(self) -> "ASGraph":
        """Deep copy of the graph (caches are rebuilt lazily).

        The immutable CSR base is shared with the clone; overlay rows
        are copied.  Mutations on either side only ever touch their own
        overlay, so the clone is fully independent.
        """
        clone = ASGraph()
        clone._live = dict.fromkeys(self._live)
        clone._base = self._base
        clone._overlay = {
            asn: dict(row) for asn, row in self._overlay.items()
        }
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever the topology changes."""
        return self._version

    def _require(self, asn: ASN) -> None:
        if asn not in self._live:
            raise UnknownASError(f"AS {asn} not in graph")

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._live

    def __len__(self) -> int:
        return len(self._live)

    def __iter__(self) -> Iterator[ASN]:
        return iter(self._live)

    @property
    def ases(self) -> Tuple[ASN, ...]:
        """All AS numbers, sorted (stable iteration for seeded runs)."""
        if self._ases is None:
            self._ases = tuple(sorted(self._live))
        return self._ases

    def has_link(self, a: ASN, b: ASN) -> bool:
        """Whether a direct link exists between two ASes."""
        return a in self._live and self._rel_lookup(a, b) is not None

    def relationship(self, a: ASN, b: ASN) -> Relationship:
        """What *b* is to *a* (customer, peer, or provider)."""
        self._require(a)
        rel = self._rel_lookup(a, b)
        if rel is None:
            raise UnknownLinkError(f"no link {a}-{b}")
        return rel

    def neighbor_relationships(self, asn: ASN) -> Dict[ASN, Relationship]:
        """Fresh ``{neighbor: relationship}`` mapping of one AS.

        One pass over the AS's row — the cheap way for speakers to seed
        their per-neighbor tables eagerly instead of one
        :meth:`relationship` call per neighbor.
        """
        self._require(asn)
        return dict(self._row_items(asn))

    def _view(self, asn: ASN) -> _AdjView:
        view = self._views.get(asn)
        if view is None:
            self._require(asn)
            if self._base is None or (
                asn in self._overlay and self._overlay_heavy()
            ):
                self._compact()
            row = self._overlay.get(asn)
            if row is None:
                assert self._base is not None
                view = self._base.view_of(self._base.index[asn])
            else:
                providers: List[ASN] = []
                customers: List[ASN] = []
                peers: List[ASN] = []
                for nbr, rel in row.items():
                    if rel is Relationship.PROVIDER:
                        providers.append(nbr)
                    elif rel is Relationship.CUSTOMER:
                        customers.append(nbr)
                    else:
                        peers.append(nbr)
                providers.sort()
                customers.sort()
                peers.sort()
                view = (
                    tuple(providers),
                    tuple(customers),
                    tuple(peers),
                    tuple(sorted(row)),
                )
            self._views[asn] = view
        return view

    def neighbors(self, asn: ASN) -> Tuple[ASN, ...]:
        """All neighbors of an AS, sorted (cached tuple)."""
        return self._view(asn)[3]

    def providers(self, asn: ASN) -> Tuple[ASN, ...]:
        """Providers of an AS, sorted (cached tuple)."""
        return self._view(asn)[0]

    def customers(self, asn: ASN) -> Tuple[ASN, ...]:
        """Customers of an AS, sorted (cached tuple)."""
        return self._view(asn)[1]

    def peers(self, asn: ASN) -> Tuple[ASN, ...]:
        """Peers of an AS, sorted (cached tuple)."""
        return self._view(asn)[2]

    def degree(self, asn: ASN) -> int:
        """Number of neighbors."""
        self._require(asn)
        row = self._overlay.get(asn)
        if row is not None:
            return len(row)
        base = self._base
        if base is not None:
            idx = base.index.get(asn)
            if idx is not None:
                return base.degree_of(idx)
        return 0

    def is_multihomed(self, asn: ASN) -> bool:
        """Whether the AS has two or more providers."""
        return len(self._view(asn)[0]) >= 2

    def is_stub(self, asn: ASN) -> bool:
        """Whether the AS has no customers."""
        return not self._view(asn)[1]

    def is_tier1(self, asn: ASN) -> bool:
        """Whether the AS has no providers (top of the hierarchy)."""
        return not self._view(asn)[0]

    def tier1s(self) -> Tuple[ASN, ...]:
        """All provider-free ASes, sorted (cached tuple)."""
        if self._tier1s is None:
            self._tier1s = tuple(
                asn for asn in self.ases if not self._view(asn)[0]
            )
        return self._tier1s

    def links(self) -> List[Tuple[ASN, ASN, Relationship]]:
        """Every undirected link once, as ``(a, b, what-b-is-to-a)``.

        c2p links are reported customer-first, p2p links low-ASN-first.
        """
        out: List[Tuple[ASN, ASN, Relationship]] = []
        seen: Set[Link] = set()
        for a in self.ases:
            for b, rel in self._row_items(a):
                key = normalize_link(a, b)
                if key in seen:
                    continue
                seen.add(key)
                if rel is Relationship.PROVIDER:
                    out.append((a, b, Relationship.PROVIDER))
                elif rel is Relationship.CUSTOMER:
                    out.append((b, a, Relationship.PROVIDER))
                else:
                    out.append((key[0], key[1], Relationship.PEER))
        return out

    def c2p_links(self) -> List[Link]:
        """Every customer-provider link, customer first."""
        return [(a, b) for a, b, rel in self.links() if rel is Relationship.PROVIDER]

    def p2p_links(self) -> List[Link]:
        """Every peering link, low ASN first."""
        return [(a, b) for a, b, rel in self.links() if rel is Relationship.PEER]

    # ------------------------------------------------------------------
    # Hierarchy analysis
    # ------------------------------------------------------------------

    def check_acyclic_hierarchy(self) -> None:
        """Raise :class:`CyclicHierarchyError` if c2p edges form a cycle.

        The paper assumes customer-provider relationships are acyclic
        (no AS is an indirect provider of its own provider).
        """
        try:
            self.topological_order()
        except CyclicHierarchyError:
            raise

    def topological_order(self) -> List[ASN]:
        """ASes ordered so every customer precedes its providers.

        Raises :class:`CyclicHierarchyError` when the hierarchy is cyclic.
        """
        # indegree counts customers still unprocessed below each provider.
        indegree: Dict[ASN, int] = {asn: 0 for asn in self._live}
        for _, provider in self.iter_c2p():
            indegree[provider] += 1
        ready = sorted(asn for asn, deg in indegree.items() if deg == 0)
        order: List[ASN] = []
        queue = list(ready)
        while queue:
            asn = queue.pop()
            order.append(asn)
            for provider in self.providers(asn):
                indegree[provider] -= 1
                if indegree[provider] == 0:
                    queue.append(provider)
        if len(order) != len(self._live):
            raise CyclicHierarchyError("customer-provider hierarchy contains a cycle")
        return order

    def iter_c2p(self) -> Iterator[Link]:
        """Iterate over every c2p link, customer first."""
        for a in self._live:
            for b, rel in self._row_items(a):
                if rel is Relationship.PROVIDER:
                    yield (a, b)

    def uphill_reachable_tier1s(self, asn: ASN) -> Set[ASN]:
        """Tier-1 ASes reachable from ``asn`` by climbing provider links."""
        self._require(asn)
        seen: Set[ASN] = set()
        stack = [asn]
        found: Set[ASN] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            providers = self._view(node)[0]
            if not providers:
                found.add(node)
            stack.extend(providers)
        return found

    def first_multihomed_ancestor(self, asn: ASN) -> ASN | None:
        """First multi-homed AS on a single-homed AS's provider chain.

        Used by the paper to transfer the disjointness probability of a
        single-homed AS to its first multi-homed (direct or indirect)
        provider (footnote 4).  Returns ``asn`` itself when it is already
        multi-homed, and ``None`` if the chain ends at a tier-1 without
        ever meeting a multi-homed AS.
        """
        self._require(asn)
        current = asn
        visited: Set[ASN] = set()
        while True:
            providers = self._view(current)[0]
            if len(providers) >= 2:
                return current
            if not providers:
                return None
            if current in visited:  # defensive; acyclic graphs never hit this
                return None
            visited.add(current)
            current = providers[0]

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ASGraph(|V|={len(self)}, c2p={len(self.c2p_links())}, "
            f"p2p={len(self.p2p_links())})"
        )
