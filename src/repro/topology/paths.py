"""Valley-free path utilities.

Paths here are *forwarding order*: ``path[0]`` is the source AS and
``path[-1]`` the destination.  Under the valley-free export rule a path
consists of an uphill portion (customer-to-provider steps), at most one
peering step, and a downhill portion (provider-to-customer steps).  The
paper's key relaxation (Lemmas 3.1/3.2) is that complementary routes
only need to be node disjoint in their *downhill* portions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import TopologyError
from repro.topology.graph import ASGraph
from repro.types import ASN, Link, Relationship


def path_is_loop_free(path: Sequence[ASN]) -> bool:
    """Whether no AS appears twice on the path."""
    return len(set(path)) == len(path)


def _step_kinds(graph: ASGraph, path: Sequence[ASN]) -> List[Relationship]:
    """Relationship of each hop's far end, walking source to destination."""
    kinds: List[Relationship] = []
    for u, v in zip(path, path[1:]):
        kinds.append(graph.relationship(u, v))
    return kinds


def is_valley_free(graph: ASGraph, path: Sequence[ASN]) -> bool:
    """Whether the path obeys the valley-free export rule.

    Permitted shape: zero or more uphill (to-provider) steps, then at
    most one peering step, then zero or more downhill (to-customer)
    steps.  Paths with unknown links raise :class:`UnknownLinkError`.
    """
    if len(path) <= 1:
        return True
    if not path_is_loop_free(path):
        return False
    # Phases: 0 = climbing, 1 = just crossed a peer link, 2 = descending.
    phase = 0
    for kind in _step_kinds(graph, path):
        if kind is Relationship.PROVIDER:
            if phase != 0:
                return False
        elif kind is Relationship.PEER:
            if phase != 0:
                return False
            phase = 1
        else:  # stepping down to a customer
            phase = 2
    return True


def split_uphill_downhill(
    graph: ASGraph, path: Sequence[ASN]
) -> Tuple[Tuple[ASN, ...], Optional[Link], Tuple[ASN, ...]]:
    """Split a valley-free path into (uphill, peer-link, downhill).

    The uphill portion is the maximal source-side prefix connected by
    customer-to-provider links (including both endpoints of each such
    link); the downhill portion is the destination-side suffix connected
    by provider-to-customer links.  The middle peering link, if any, is
    returned as an ``(a, b)`` pair in walk order.  Portions may be empty
    tuples.  Raises :class:`TopologyError` for non-valley-free paths.
    """
    if not is_valley_free(graph, path):
        raise TopologyError(f"path {tuple(path)} is not valley-free")
    if len(path) <= 1:
        return (), None, ()
    kinds = _step_kinds(graph, path)
    n_up = 0
    while n_up < len(kinds) and kinds[n_up] is Relationship.PROVIDER:
        n_up += 1
    peer_link: Optional[Link] = None
    rest = n_up
    if rest < len(kinds) and kinds[rest] is Relationship.PEER:
        peer_link = (path[rest], path[rest + 1])
        rest += 1
    uphill = tuple(path[: n_up + 1]) if n_up > 0 else ()
    downhill = tuple(path[rest:]) if rest < len(kinds) else ()
    return uphill, peer_link, downhill


def downhill_nodes(graph: ASGraph, path: Sequence[ASN]) -> Set[ASN]:
    """All ASes in the downhill portion of a valley-free path.

    Matches the paper's definition: the provider-to-customer links of
    the path "together with the ASes at the two ends of each link".
    """
    _, _, downhill = split_uphill_downhill(graph, path)
    return set(downhill)


def downhill_node_disjoint(
    graph: ASGraph,
    path_a: Sequence[ASN],
    path_b: Sequence[ASN],
) -> bool:
    """Whether the downhill portions share no AS besides the endpoints.

    The shared source and shared destination (when the two paths have
    the same one) are always allowed, mirroring the paper's "no shared
    nodes except source and destination".
    """
    nodes_a = downhill_nodes(graph, path_a)
    nodes_b = downhill_nodes(graph, path_b)
    allowed: Set[ASN] = set()
    if path_a and path_b:
        if path_a[0] == path_b[0]:
            allowed.add(path_a[0])
        if path_a[-1] == path_b[-1]:
            allowed.add(path_a[-1])
    return not ((nodes_a & nodes_b) - allowed)


def node_disjoint(
    path_a: Sequence[ASN],
    path_b: Sequence[ASN],
) -> bool:
    """Full node disjointness, endpoints excepted."""
    if not path_a or not path_b:
        return True
    allowed: Set[ASN] = set()
    if path_a[0] == path_b[0]:
        allowed.add(path_a[0])
    if path_a[-1] == path_b[-1]:
        allowed.add(path_a[-1])
    return not ((set(path_a) & set(path_b)) - allowed)
