"""Synthetic Internet-like AS topology generators.

The paper evaluates on an AS graph derived from RouteViews BGP tables.
RouteViews dumps are not available offline, so we substitute a seeded
generator that reproduces the structural properties the evaluation
depends on: a fully-peered tier-1 clique, multi-homed transit tiers, a
large stub fringe, intra-tier peering, and an acyclic c2p hierarchy
(see DESIGN.md section 4 for the substitution argument).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.topology.graph import ASGraph
from repro.types import ASN


@dataclass(frozen=True)
class InternetTopologyConfig:
    """Parameters for :func:`generate_internet_topology`.

    Defaults produce a ~600-AS graph with heavy multihoming, roughly a
    1:6:14:55 tier-1:tier-2:tier-3:stub split, suitable for the paper's
    experiments at laptop scale.
    """

    seed: int = 0
    n_tier1: int = 8
    n_tier2: int = 48
    n_tier3: int = 120
    n_stub: int = 440
    #: Provider-count weights (1, 2, 3, ... providers) for transit
    #: (tier-2/3) ASes.  Transit networks were heavily multi-homed in
    #: the 2008 graph; rich multihoming keeps the disjoint-path
    #: probability Φ high and gives BGP's path exploration the stale
    #: alternates that make its transient problems visible.
    provider_count_weights: Tuple[float, ...] = (0.1, 0.4, 0.3, 0.2)
    #: Provider-count weights for stub ASes (many single/dual-homed).
    stub_provider_count_weights: Tuple[float, ...] = (0.4, 0.4, 0.2)
    #: Probability that a tier-3 AS homes one link directly to a tier-1.
    tier3_tier1_uplink_prob: float = 0.1
    #: Probability of a peering link between any two tier-2 ASes.
    tier2_peering_prob: float = 0.15
    #: Probability of a peering link between any two tier-3 ASes.
    tier3_peering_prob: float = 0.02

    def __post_init__(self) -> None:
        if self.n_tier1 < 2:
            raise ConfigurationError("need at least two tier-1 ASes")
        if min(self.n_tier2, self.n_tier3, self.n_stub) < 0:
            raise ConfigurationError("tier sizes must be non-negative")
        for weights in (self.provider_count_weights, self.stub_provider_count_weights):
            if not weights or any(w < 0 for w in weights):
                raise ConfigurationError("provider weights must be non-negative")
            if sum(weights) <= 0:
                raise ConfigurationError("provider weights must not all be zero")

    @property
    def total_ases(self) -> int:
        """Total number of ASes the generated graph will contain."""
        return self.n_tier1 + self.n_tier2 + self.n_tier3 + self.n_stub


@dataclass
class TopologyTiers:
    """Which tier each generated AS belongs to (diagnostics and tests)."""

    tier1: List[ASN] = field(default_factory=list)
    tier2: List[ASN] = field(default_factory=list)
    tier3: List[ASN] = field(default_factory=list)
    stub: List[ASN] = field(default_factory=list)

    def tier_of(self, asn: ASN) -> int:
        """Tier number (1-3) of a transit AS, or 4 for a stub."""
        for number, members in enumerate(
            (self.tier1, self.tier2, self.tier3, self.stub), start=1
        ):
            if asn in members:
                return number
        raise KeyError(asn)


def _pick_provider_count(rng: random.Random, weights: Sequence[float]) -> int:
    return rng.choices(range(1, len(weights) + 1), weights=weights, k=1)[0]


def generate_internet_topology(
    config: InternetTopologyConfig | None = None,
) -> Tuple[ASGraph, TopologyTiers]:
    """Generate a seeded Internet-like topology.

    Returns the graph together with the tier assignment used to build
    it.  The same config always yields the same graph.
    """
    config = config or InternetTopologyConfig()
    rng = random.Random(config.seed)
    graph = ASGraph()
    tiers = TopologyTiers()

    next_asn = 1
    for count, bucket in (
        (config.n_tier1, tiers.tier1),
        (config.n_tier2, tiers.tier2),
        (config.n_tier3, tiers.tier3),
        (config.n_stub, tiers.stub),
    ):
        for _ in range(count):
            graph.add_as(next_asn)
            bucket.append(next_asn)
            next_asn += 1

    # Tier-1 core: full peering clique (provider-free by construction).
    for i, a in enumerate(tiers.tier1):
        for b in tiers.tier1[i + 1 :]:
            graph.add_p2p(a, b)

    # Tier-2: multi-home into the tier-1 clique.
    for asn in tiers.tier2:
        k = min(_pick_provider_count(rng, config.provider_count_weights),
                len(tiers.tier1))
        for provider in rng.sample(tiers.tier1, k):
            graph.add_c2p(asn, provider)

    # Tier-3: multi-home into tier-2, with an occasional direct tier-1 link.
    for asn in tiers.tier3:
        pool = tiers.tier2 or tiers.tier1
        k = min(_pick_provider_count(rng, config.provider_count_weights), len(pool))
        providers = rng.sample(pool, k)
        if (
            tiers.tier2
            and rng.random() < config.tier3_tier1_uplink_prob
        ):
            extra = rng.choice(tiers.tier1)
            if extra not in providers:
                providers.append(extra)
        for provider in providers:
            graph.add_c2p(asn, provider)

    # Stubs: multi-home into the transit tiers (tier-2 + tier-3).
    transit_pool = tiers.tier2 + tiers.tier3
    for asn in tiers.stub:
        pool = transit_pool or tiers.tier1
        k = min(
            _pick_provider_count(rng, config.stub_provider_count_weights),
            len(pool),
        )
        for provider in rng.sample(pool, k):
            graph.add_c2p(asn, provider)

    # Intra-tier peering below the core.
    _add_peering(graph, rng, tiers.tier2, config.tier2_peering_prob)
    _add_peering(graph, rng, tiers.tier3, config.tier3_peering_prob)

    graph.check_acyclic_hierarchy()
    return graph, tiers


def _add_peering(
    graph: ASGraph, rng: random.Random, members: Sequence[ASN], prob: float
) -> None:
    if prob <= 0:
        return
    for i, a in enumerate(members):
        for b in members[i + 1 :]:
            if graph.has_link(a, b):
                continue
            if rng.random() < prob:
                graph.add_p2p(a, b)


def chain_topology(length: int) -> ASGraph:
    """A straight provider chain ``1 -> 2 -> ... -> length``.

    AS 1 is the bottom customer; AS ``length`` is the single tier-1.
    Useful for deterministic unit tests of uphill/downhill machinery.
    """
    if length < 1:
        raise ConfigurationError("chain length must be >= 1")
    graph = ASGraph()
    graph.add_as(1)
    for asn in range(1, length):
        graph.add_c2p(asn, asn + 1)
    return graph


def clique_topology(size: int) -> ASGraph:
    """A fully-peered clique of ``size`` tier-1 ASes."""
    if size < 1:
        raise ConfigurationError("clique size must be >= 1")
    graph = ASGraph()
    for asn in range(1, size + 1):
        graph.add_as(asn)
    for a in range(1, size + 1):
        for b in range(a + 1, size + 1):
            graph.add_p2p(a, b)
    return graph


def example_paper_topology() -> ASGraph:
    """Small hand-built topology used throughout docs, examples and tests.

    Structure (c2p arrows point customer -> provider)::

            10 ==== 20          tier-1 peering clique (10, 20)
           /  \\    /  \\
          30   40-50   60       tier-2 transit (40-50 are peers)
           \\  /    \\  /
            70       80         multi-homed edge ASes
              \\     /
                90              dual-homed origin stub

    AS 90 is multi-homed to 70 and 80, whose uphill trees reach tier-1s
    10 and 20 over node-disjoint downhill segments, so STAMP can always
    construct complementary red and blue paths toward 90.
    """
    graph = ASGraph()
    graph.add_p2p(10, 20)
    graph.add_c2p(30, 10)
    graph.add_c2p(40, 10)
    graph.add_c2p(50, 20)
    graph.add_c2p(60, 20)
    graph.add_p2p(40, 50)
    graph.add_c2p(70, 30)
    graph.add_c2p(70, 40)
    graph.add_c2p(80, 50)
    graph.add_c2p(80, 60)
    graph.add_c2p(90, 70)
    graph.add_c2p(90, 80)
    graph.check_acyclic_hierarchy()
    return graph
