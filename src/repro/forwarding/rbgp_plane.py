"""Data plane of R-BGP: primary forwarding plus pinned failover paths.

Snapshot state:

* ``(asn, 'primary')`` — current best path (announcer-first) or ``None``;
* ``(asn, 'failover')`` — tuple of ``(upstream, path)`` failover entries
  the AS has received (each ``path`` starts at ``upstream`` and was that
  upstream's most disjoint alternate).

Walk semantics (AS-level abstraction of R-BGP's virtual interfaces):
packets follow primaries; an AS whose primary is unusable diverts onto
one received failover path, which is then followed *pinned* hop by hop
(intermediate ASes forward along the virtual interface, not their own
tables).  A packet may divert only once; a pinned hop that crosses a
failed link or AS drops the packet.

The RCI distinction (see the R-BGP paper's argument for why root cause
information is needed at all):

* **with RCI** any AS that lost its route may divert, and it knows
  which failover entries are stale (they traverse the root-cause link)
  so it skips them;
* **without RCI** an AS can only divert safely when it *locally*
  detected the failure (its own link or neighbor died) — a remote loss
  is indistinguishable from a withdrawal of the failover path itself,
  and R-BGP's loop-freedom argument collapses; moreover the pick is
  oblivious, so a stale entry pins a broken path and the packet drops.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.forwarding.walk import (
    WalkClassifier,
    WalkSpec,
    classify_functional_graph,
)
from repro.types import ASN, ASPath, Link, Outcome, normalize_link

PRIMARY = "primary"
FAILOVER = "failover"

#: Walk states: plain AS for primary forwarding, or a pinned position
#: ``('pin', path, index)`` while riding a failover path.
_PinState = Tuple[str, ASPath, int]


class RBGPDataPlane(WalkClassifier):
    """Walks packets under R-BGP forwarding (with or without RCI).

    ``graph`` is needed for the no-RCI variant to decide which ASes
    locally detected a failure (endpoint of a failed link or neighbor
    of a failed AS).
    """

    def __init__(self, destination: ASN, *, rci: bool, graph=None) -> None:
        super().__init__(destination)
        self.rci = rci
        self.graph = graph

    def _walk_spec(self, state, failed_links, failed_ases) -> WalkSpec:
        destination = self.destination
        rci = self.rci
        state_get = state.get
        reads_buf: list = []
        reads_append = reads_buf.append

        local_detectors = set()
        if not rci:
            for a, b in failed_links:
                local_detectors.add(a)
                local_detectors.add(b)
            if self.graph is not None:
                for asn in failed_ases:
                    if asn in self.graph:
                        local_detectors.update(self.graph.neighbors(asn))

        def link_ok(a: ASN, b: ASN) -> bool:
            return (
                b not in failed_ases
                and a not in failed_ases
                and normalize_link(a, b) not in failed_links
            )

        def path_intact(start: ASN, path: ASPath) -> bool:
            hops = (start,) + path
            return all(link_ok(u, v) for u, v in zip(hops, hops[1:]))

        def pick_failover(asn: ASN) -> Optional[ASPath]:
            # Pinned (virtual-interface) forwarding may legitimately
            # pass back through the diverting AS itself — the bounce is
            # part of R-BGP's design — so entries are not filtered on
            # that.
            failover_key = (asn, FAILOVER)
            reads_append(failover_key)
            entries = state_get(failover_key) or ()
            for _, path in entries:
                if rci:
                    # RCI: the AS knows which entries are broken.
                    if path_intact(asn, path):
                        return path
                else:
                    # No RCI: pick the first entry obliviously.
                    return path
            return None

        def successor(walk_state) -> Optional[object]:
            if isinstance(walk_state, tuple) and walk_state[0] == "pin":
                _, path, index = walk_state
                return _advance_pin(path, index)
            asn = walk_state
            primary_key = (asn, PRIMARY)
            reads_append(primary_key)
            path = state_get(primary_key)
            if path and link_ok(asn, path[0]):
                return path[0]
            if not rci and asn not in local_detectors:
                # Without root cause information a remotely-caused loss
                # cannot safely trigger failover forwarding.
                return None
            # Primary unusable: divert once onto a received failover.
            failover = pick_failover(asn)
            if failover is None:
                return None
            if not link_ok(asn, failover[0]):
                return None
            return ("pin", (asn,) + failover, 1)

        def _advance_pin(path: ASPath, index: int):
            current, nxt = path[index - 1], path[index]
            if not link_ok(current, nxt):
                return None
            if nxt == destination:
                return nxt  # delivered
            if index + 1 >= len(path):
                return None  # pinned path ended off-destination
            return ("pin", path, index + 1)

        def delivered(walk_state) -> bool:
            return walk_state == destination

        def start(asn: ASN):
            return asn, None, ()

        def key_fingerprint(state_key, value):
            # Primary forwarding only looks at the next hop; failover
            # entries are followed hop by hop, so their full value
            # matters (RCI intactness checks read every link).
            if state_key[1] == PRIMARY:
                return value[0] if value else None
            return value

        def bulk_fingerprint(snapshot):
            return {
                key: (value[0] if value else None)
                if key[1] == PRIMARY
                else value
                for key, value in snapshot.items()
            }

        return WalkSpec(
            start, successor, delivered, reads_buf, key_fingerprint,
            bulk_fingerprint,
        )

    def boundary_touched_keys(
        self, state, old_links, old_ases, new_links, new_ases
    ):
        """Keys whose walk behavior a failure-set delta can change.

        Every link check involves the forwarding AS (an endpoint of a
        changed link, or itself toggled — ``hot``; its primary key is
        the AS state's first read), the primary next hop (scan primary
        fingerprints for toggled ASes), or a hop of a pinned failover
        path (scan failover entries for hot ASes — hop-membership is a
        superset of the per-link test since both endpoints of a
        changed link are hot).  Without RCI the local-detector set
        shifts too: endpoints of changed links plus, when the topology
        is known, neighbors of toggled ASes.
        """
        delta_ases = set(old_ases ^ new_ases)
        hot = set(delta_ases)
        for a, b in old_links ^ new_links:
            hot.add(a)
            hot.add(b)
        touched = {(x, PRIMARY) for x in hot}
        if not self.rci and self.graph is not None:
            for x in delta_ases:
                if x in self.graph:
                    for neighbor in self.graph.neighbors(x):
                        touched.add((neighbor, PRIMARY))
        for state_key, value in state.items():
            if state_key[1] == PRIMARY:
                if value and value[0] in delta_ases:
                    touched.add(state_key)
            elif state_key[0] in hot:
                touched.add(state_key)
            elif value:
                for _, path in value:
                    if any(hop in hot for hop in path):
                        touched.add(state_key)
                        break
        return touched

    def classify(
        self,
        state: Dict,
        ases: Iterable[ASN],
        *,
        failed_links: FrozenSet[Link] = frozenset(),
        failed_ases: FrozenSet[ASN] = frozenset(),
    ) -> Dict[ASN, Outcome]:
        spec = self._walk_spec(state, failed_links, failed_ases)
        sources = [asn for asn in ases if asn not in failed_ases]
        raw = classify_functional_graph(sources, spec.successor, spec.delivered)
        return {asn: raw[asn] for asn in sources}
