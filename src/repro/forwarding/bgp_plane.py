"""Data plane of plain BGP: hop-by-hop best-route forwarding.

The snapshot state maps ``(asn, None)`` to the AS's current best path
(announcer-first, i.e. ``path[0]`` is the next hop) or ``None``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional

from repro.forwarding.walk import (
    WalkClassifier,
    WalkSpec,
    classify_functional_graph,
)
from repro.types import ASN, Link, Outcome, normalize_link


class BGPDataPlane(WalkClassifier):
    """Walks packets along each AS's current best next hop."""

    def __init__(self, destination: ASN, trace_key: Hashable = None) -> None:
        super().__init__(destination)
        self.trace_key = trace_key

    def _walk_spec(self, state, failed_links, failed_ases) -> WalkSpec:
        destination = self.destination
        key = self.trace_key
        state_get = state.get
        reads_buf: list = []
        reads_append = reads_buf.append

        def start(asn: ASN):
            return asn, None, ()

        def successor(asn: ASN) -> Optional[ASN]:
            state_key = (asn, key)
            reads_append(state_key)
            path = state_get(state_key)
            if not path:
                return None
            next_hop = path[0]
            if next_hop in failed_ases:
                return None
            if normalize_link(asn, next_hop) in failed_links:
                return None
            return next_hop

        def delivered(asn: ASN) -> bool:
            return asn == destination

        def key_fingerprint(state_key, value):
            # Walks only ever look at a route's next hop.
            return value[0] if value else None

        def bulk_fingerprint(snapshot):
            return {
                key: (value[0] if value else None)
                for key, value in snapshot.items()
            }

        return WalkSpec(
            start, successor, delivered, reads_buf, key_fingerprint,
            bulk_fingerprint,
        )

    def boundary_touched_keys(
        self, state, old_links, old_ases, new_links, new_ases
    ):
        """Keys whose walk behavior a failure-set delta can change.

        The successor at AS ``a`` reads only ``(a, key)`` and gates on
        ``normalize_link(a, next_hop)`` (``a`` is an endpoint of any
        changed link that can matter) and on ``next_hop``'s failedness
        (found by scanning next-hop fingerprints for toggled ASes).
        """
        key = self.trace_key
        delta_ases = old_ases ^ new_ases
        touched = set()
        for a, b in old_links ^ new_links:
            touched.add((a, key))
            touched.add((b, key))
        for x in delta_ases:
            touched.add((x, key))
        if delta_ases:
            for state_key, path in state.items():
                if path and path[0] in delta_ases:
                    touched.add(state_key)
        return touched

    def classify(
        self,
        state: Dict,
        ases: Iterable[ASN],
        *,
        failed_links: FrozenSet[Link] = frozenset(),
        failed_ases: FrozenSet[ASN] = frozenset(),
    ) -> Dict[ASN, Outcome]:
        spec = self._walk_spec(state, failed_links, failed_ases)
        sources = [asn for asn in ases if asn not in failed_ases]
        return classify_functional_graph(sources, spec.successor, spec.delivered)
