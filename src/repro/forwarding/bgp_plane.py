"""Data plane of plain BGP: hop-by-hop best-route forwarding.

The snapshot state maps ``(asn, None)`` to the AS's current best path
(announcer-first, i.e. ``path[0]`` is the next hop) or ``None``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional

from repro.forwarding.walk import WalkClassifier, classify_functional_graph
from repro.types import ASN, Link, Outcome, normalize_link


class BGPDataPlane(WalkClassifier):
    """Walks packets along each AS's current best next hop."""

    def __init__(self, destination: ASN, trace_key: Hashable = None) -> None:
        super().__init__(destination)
        self.trace_key = trace_key

    def classify(
        self,
        state: Dict,
        ases: Iterable[ASN],
        *,
        failed_links: FrozenSet[Link] = frozenset(),
        failed_ases: FrozenSet[ASN] = frozenset(),
    ) -> Dict[ASN, Outcome]:
        destination = self.destination
        key = self.trace_key

        def successor(asn: ASN) -> Optional[ASN]:
            path = state.get((asn, key))
            if not path:
                return None
            next_hop = path[0]
            if next_hop in failed_ases:
                return None
            if normalize_link(asn, next_hop) in failed_links:
                return None
            return next_hop

        def delivered(asn: ASN) -> bool:
            return asn == destination

        sources = [asn for asn in ases if asn not in failed_ases]
        return classify_functional_graph(sources, successor, delivered)
