"""Data-plane modeling: packet walks and transient-problem detection.

Given a snapshot of every AS's control-plane state, these modules walk
the data plane from each AS toward the destination and classify the
outcome as delivered, looped, or blackholed — the paper's definition of
a transient routing problem (section 6.2).
"""

from repro.forwarding.walk import WalkClassifier, classify_functional_graph
from repro.forwarding.bgp_plane import BGPDataPlane
from repro.forwarding.rbgp_plane import RBGPDataPlane
from repro.forwarding.stamp_plane import STAMPDataPlane

__all__ = [
    "WalkClassifier",
    "classify_functional_graph",
    "BGPDataPlane",
    "RBGPDataPlane",
    "STAMPDataPlane",
]
