"""Data plane of STAMP: color-tagged packets with one allowed switch.

Snapshot state (per the STAMP network's trace):

* ``(asn, Color.RED)`` / ``(asn, Color.BLUE)`` — current best path of
  each color process (announcer-first) or ``None``;
* ``(asn, ('unstable', color))`` — whether that process is currently
  flagged unstable (lost a route / received ET=0 since the event).

Forwarding rules (paper section 5):

* the source assigns the initial color: its stable active process,
  preferring blue, falling back to any process with a route;
* a transit AS forwards a color-c packet on its color-c route when that
  route is up and stable;
* if the color-c route is unstable or unusable, the AS switches the
  packet to the other color — at most once per packet (loop guard from
  [12]);
* an already-switched packet must follow its color or be dropped.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.forwarding.walk import (
    WalkClassifier,
    WalkSpec,
    classify_functional_graph,
)
from repro.types import ASN, Color, Link, Outcome, normalize_link

#: Walk state: (AS, packet color, already switched?).
_WalkState = Tuple[ASN, Color, bool]


def unstable_key(color: Color) -> Tuple[str, Color]:
    """Trace key of a color process's instability flag."""
    return ("unstable", color)


class STAMPDataPlane(WalkClassifier):
    """Walks color-carrying packets with the switch-once rule."""

    def _walk_spec(self, state, failed_links, failed_ases) -> WalkSpec:
        destination = self.destination
        state_get = state.get
        reads_buf: list = []
        reads_append = reads_buf.append
        red, blue = Color.RED, Color.BLUE
        red_unstable, blue_unstable = unstable_key(red), unstable_key(blue)

        def link_ok(a: ASN, b: ASN) -> bool:
            return (
                b not in failed_ases
                and a not in failed_ases
                and normalize_link(a, b) not in failed_links
            )

        def successor(walk_state) -> Optional[_WalkState]:
            # Single fetch per route: the layered usable/stable helpers
            # re-read the same snapshot keys several times per hop,
            # which dominates full-scan classification cost.
            asn, color, switched = walk_state
            own_key = (asn, color)
            reads_append(own_key)
            path = state_get(own_key)
            own_usable = bool(path) and link_ok(asn, path[0])
            if own_usable:
                unstable_key_ = (
                    asn,
                    red_unstable if color is red else blue_unstable,
                )
                reads_append(unstable_key_)
                if not state_get(unstable_key_, False):
                    return (path[0], color, switched)
            if not switched:
                other = blue if color is red else red
                other_key = (asn, other)
                reads_append(other_key)
                other_path = state_get(other_key)
                if other_path and link_ok(asn, other_path[0]):
                    return (other_path[0], other, True)
            if own_usable:
                # No stable alternative: ride the unstable same-color
                # route rather than drop.
                return (path[0], color, switched)
            return None

        def delivered(walk_state) -> bool:
            return walk_state[0] == destination

        start_memo: Dict[ASN, Tuple] = {}

        def _source_keys(asn: ASN) -> Tuple:
            keys = start_memo.get(asn)
            if keys is None:
                keys = start_memo[asn] = (
                    (asn, blue),
                    (asn, blue_unstable),
                    (asn, red),
                    (asn, red_unstable),
                )
            return keys

        def start(asn: ASN):
            # Inlined initial_color with one fetch per route (this runs
            # once per source per reclassification).  The reported
            # reads follow the short-circuit order exactly: keys never
            # consulted cannot change the decision.
            if asn == destination:
                return None, Outcome.DELIVERED, ()
            key_b, key_ub, key_r, key_ur = _source_keys(asn)
            blue_path = state_get(key_b)
            blue_usable = bool(blue_path) and link_ok(asn, blue_path[0])
            if blue_usable and not state_get(key_ub, False):
                return (asn, blue, False), None, (key_b, key_ub)
            red_path = state_get(key_r)
            red_usable = bool(red_path) and link_ok(asn, red_path[0])
            if red_usable and not state_get(key_ur, False):
                return (asn, red, False), None, (key_b, key_ub, key_r, key_ur)
            if blue_usable:
                # Unstable blue beats unusable-or-unstable red.
                reads = (key_b, key_ub, key_r, key_ur) if red_usable else (
                    key_b, key_ub, key_r
                )
                return (asn, blue, False), None, reads
            if red_usable:
                return (asn, red, False), None, (key_b, key_r, key_ur)
            return None, Outcome.BLACKHOLE, (key_b, key_r)

        def key_fingerprint(state_key, value):
            # Route entries: walks only look at the next hop.
            # Instability flags: the full (boolean) value matters.
            if type(state_key[1]) is Color:
                return value[0] if value else None
            return value

        return WalkSpec(start, successor, delivered, reads_buf, key_fingerprint)

    def classify(
        self,
        state: Dict,
        ases: Iterable[ASN],
        *,
        failed_links: FrozenSet[Link] = frozenset(),
        failed_ases: FrozenSet[ASN] = frozenset(),
    ) -> Dict[ASN, Outcome]:
        spec = self._walk_spec(state, failed_links, failed_ases)
        outcomes: Dict[ASN, Outcome] = {}
        memo: Dict[_WalkState, Outcome] = {}
        for asn in ases:
            if asn in failed_ases:
                continue
            start_state, immediate, _ = spec.start(asn)
            if start_state is None:
                outcomes[asn] = immediate
                continue
            classify_functional_graph(
                [start_state], spec.successor, spec.delivered, memo=memo
            )
            outcomes[asn] = memo[start_state]
        return outcomes
