"""Data plane of STAMP: color-tagged packets with one allowed switch.

Snapshot state (per the STAMP network's trace):

* ``(asn, Color.RED)`` / ``(asn, Color.BLUE)`` — current best path of
  each color process (announcer-first) or ``None``;
* ``(asn, ('unstable', color))`` — whether that process is currently
  flagged unstable (lost a route / received ET=0 since the event).

Forwarding rules (paper section 5):

* the source assigns the initial color: its stable active process,
  preferring blue, falling back to any process with a route;
* a transit AS forwards a color-c packet on its color-c route when that
  route is up and stable;
* if the color-c route is unstable or unusable, the AS switches the
  packet to the other color — at most once per packet (loop guard from
  [12]);
* an already-switched packet must follow its color or be dropped.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.forwarding.walk import WalkClassifier, classify_functional_graph
from repro.types import ASN, Color, Link, Outcome, normalize_link

#: Walk state: (AS, packet color, already switched?).
_WalkState = Tuple[ASN, Color, bool]


def unstable_key(color: Color) -> Tuple[str, Color]:
    """Trace key of a color process's instability flag."""
    return ("unstable", color)


class STAMPDataPlane(WalkClassifier):
    """Walks color-carrying packets with the switch-once rule."""

    def classify(
        self,
        state: Dict,
        ases: Iterable[ASN],
        *,
        failed_links: FrozenSet[Link] = frozenset(),
        failed_ases: FrozenSet[ASN] = frozenset(),
    ) -> Dict[ASN, Outcome]:
        destination = self.destination

        def link_ok(a: ASN, b: ASN) -> bool:
            return (
                b not in failed_ases
                and a not in failed_ases
                and normalize_link(a, b) not in failed_links
            )

        def route(asn: ASN, color: Color):
            return state.get((asn, color))

        def usable(asn: ASN, color: Color) -> bool:
            path = route(asn, color)
            return bool(path) and link_ok(asn, path[0])

        def stable(asn: ASN, color: Color) -> bool:
            return not state.get((asn, unstable_key(color)), False)

        def initial_color(asn: ASN) -> Optional[Color]:
            for color in (Color.BLUE, Color.RED):
                if usable(asn, color) and stable(asn, color):
                    return color
            for color in (Color.BLUE, Color.RED):
                if usable(asn, color):
                    return color
            return None

        def successor(walk_state) -> Optional[_WalkState]:
            asn, color, switched = walk_state
            if usable(asn, color) and stable(asn, color):
                return (route(asn, color)[0], color, switched)
            if not switched:
                other = color.other
                if usable(asn, other):
                    return (route(asn, other)[0], other, True)
            if usable(asn, color):
                # No stable alternative: ride the unstable same-color
                # route rather than drop.
                return (route(asn, color)[0], color, switched)
            return None

        def delivered(walk_state) -> bool:
            return walk_state[0] == destination

        outcomes: Dict[ASN, Outcome] = {}
        memo: Dict[_WalkState, Outcome] = {}
        for asn in ases:
            if asn in failed_ases:
                continue
            if asn == destination:
                outcomes[asn] = Outcome.DELIVERED
                continue
            color = initial_color(asn)
            if color is None:
                outcomes[asn] = Outcome.BLACKHOLE
                continue
            start: _WalkState = (asn, color, False)
            classify_functional_graph(
                [start], successor, delivered, memo=memo
            )
            outcomes[asn] = memo[start]
        return outcomes
