"""Data plane of STAMP: color-tagged packets with one allowed switch.

Snapshot state (per the STAMP network's trace):

* ``(asn, Color.RED)`` / ``(asn, Color.BLUE)`` — current best path of
  each color process (announcer-first) or ``None``;
* ``(asn, ('unstable', color))`` — whether that process is currently
  flagged unstable (lost a route / received ET=0 since the event).

Forwarding rules (paper section 5):

* the source assigns the initial color: its stable active process,
  preferring blue, falling back to any process with a route;
* a transit AS forwards a color-c packet on its color-c route when that
  route is up and stable;
* if the color-c route is unstable or unusable, the AS switches the
  packet to the other color — at most once per packet (loop guard from
  [12]);
* an already-switched packet must follow its color or be dropped.

Classification is table-driven: the walk-state space is exactly
``(AS, color, switched?)`` — four states per AS — so the whole
functional graph projects onto a flat integer successor table
(:class:`_SuccessorTable`).  Full scans convert the table to a numpy
array and resolve every outcome in one pointer-doubling pass; analysis
sessions keep one table alive across a trace replay (built by
:meth:`repro.forwarding.walk.AnalysisSession.ensure_table`), with the
replay engine feeding each fingerprint-changed key into
:meth:`_SuccessorTable.update` so incremental re-walks run over plain
integer lookups instead of closure calls, share suffixes through a
per-instant position memo, and report outcome changes through exact
reverse-closure propagation (:meth:`_SuccessorTable
.collect_transitions`).  The closure engine remains the fallback (a
snapshot whose next hops leave the indexed AS universe) and the
equivalence tests pin both paths to identical outcomes *and*
dependency reads.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.forwarding.walk import (
    BatchClassification,
    WalkClassifier,
    WalkSpec,
    _np,
    _resolve_outcome_array,
    classify_functional_graph,
)
from repro.types import ASN, Color, Link, Outcome

#: Walk state: (AS, packet color, already switched?).
_WalkState = Tuple[ASN, Color, bool]

_RED, _BLUE = Color.RED, Color.BLUE

_RED_UNSTABLE = ("unstable", _RED)
_BLUE_UNSTABLE = ("unstable", _BLUE)


def unstable_key(color: Color) -> Tuple[str, Color]:
    """Trace key of a color process's instability flag."""
    return _RED_UNSTABLE if color is _RED else _BLUE_UNSTABLE


#: Read-pattern codes of the successor function, in its short-circuit
#: order (``own`` = the state's color route key, ``unst`` = its
#: instability flag, ``other`` = the opposite color's route key).
_READS_OWN = 0  # route unusable, already switched
_READS_OWN_UNST = 1  # stable forward, or unstable ride while switched
_READS_OWN_UNST_OTHER = 2  # unstable, switch considered
_READS_OWN_OTHER = 3  # unusable, switch considered
_READS_NONE = 4  # destination states read nothing

_DELIVERED = Outcome.DELIVERED
_BLACKHOLE = Outcome.BLACKHOLE
_LOOP = Outcome.LOOP


class _ColorTableBatch(BatchClassification):
    """Batch classification over STAMP's arithmetic state layout.

    State ``(asn, color, switched)`` lives at index
    ``4 * pos[asn] + 2 * (color is BLUE) + switched``, so no
    state-index dict is materialized; outcome/dependency lookups
    compute it.
    """

    __slots__ = ("pos",)

    def __init__(self, pos, succ, outcomes, reads) -> None:
        super().__init__({}, [], succ, outcomes, reads)
        self.pos = pos

    def _state_index(self, state) -> int:
        asn, color, switched = state
        base = 4 * self.pos[asn]
        if color is _BLUE:
            base += 2
        return base + 1 if switched else base


class _SuccessorTable:
    """STAMP's two-color functional graph as flat integer tables.

    One instance serves one snapshot *lineage*: either a single batch
    classification, or — held by an :class:`AnalysisSession` — a whole
    trace replay, with :meth:`update` re-deriving the four affected
    entries whenever a key's walk-observable projection changes.

    Layout: AS ``asns[i]`` owns state indices ``4*i .. 4*i+3`` in the
    order (red, red-switched, blue, blue-switched).  ``succ`` holds the
    next state index, ``-1`` for blackhole, ``-2`` for delivered (the
    destination's own states); ``codes``/``reads`` hold each state's
    read pattern and interned reads tuple; ``nred``/``nblue`` hold each
    AS's usable next-hop target (``4*j`` of the next hop, or ``-1``)
    with ``ured``/``ublue`` the instability flags — exactly the
    fingerprint projections of the snapshot, which is why
    fingerprint-filtered change notifications suffice to keep the
    table exact.
    """

    __slots__ = (
        "plane",
        "destination",
        "asns",
        "pos",
        "rows",
        "srows",
        "nred",
        "nblue",
        "hop_red",
        "hop_blue",
        "hop_preds",
        "ured",
        "ublue",
        "succ",
        "codes",
        "reads",
        "dest_i",
        "failed_ases",
        "blocked_pairs",
        "check_links",
        "broken",
        "preds",
        "state_outcome",
        "start_sid",
        "source_outcome",
        "dirty",
        "start_dirty",
    )

    def __init__(self, plane: "STAMPDataPlane", state, failed_links, failed_ases):
        self.plane = plane
        self.destination = plane.destination
        self.failed_ases = failed_ases
        self.blocked_pairs = (
            frozenset(
                pair for a, b in failed_links for pair in ((a, b), (b, a))
            )
            if failed_links
            else frozenset()
        )
        self.check_links = bool(failed_links) or bool(failed_ases)
        self.broken = False
        #: Incremental outcome propagation (activated by analysis
        #: sessions, see :meth:`activate_propagation`): reverse
        #: adjacency, per-state and per-source outcomes, and the
        #: pending invalidation sets.
        self.preds: Optional[Dict[int, set]] = None
        self.state_outcome: Optional[List[Outcome]] = None
        self.start_sid: Optional[List[int]] = None
        self.source_outcome: Optional[List[Outcome]] = None
        self.dirty: set = set()
        self.start_dirty: set = set()
        asns = [key[0] for key in state if key[1] is _RED]
        self.asns = asns
        n = len(asns)
        pos: Dict[ASN, int] = {}
        for i, asn in enumerate(asns):
            pos[asn] = i
        self.pos = pos
        self.nred = [-1] * n
        self.nblue = [-1] * n
        #: Raw next-hop ASNs (failure-independent, unlike nred/nblue
        #: which bake in usability) plus the reverse hop index — what
        #: :meth:`apply_boundary` needs to find the entries a restored
        #: link or AS can resurrect.
        self.hop_red: List[Optional[ASN]] = [None] * n
        self.hop_blue: List[Optional[ASN]] = [None] * n
        self.hop_preds: Dict[ASN, set] = {}
        self.ured = [False] * n
        self.ublue = [False] * n
        self.succ = [-1] * (4 * n)
        self.codes = [0] * (4 * n)
        self.reads: List[Tuple] = [()] * (4 * n)
        self.dest_i = pos.get(self.destination)
        self.rows = [plane._reads_row(asn) for asn in asns]
        self.srows = [plane._start_rows(asn) for asn in asns]
        state_get = state.get
        keys_of = plane._keys_of
        nred = self.nred
        nblue = self.nblue
        ured = self.ured
        ublue = self.ublue
        check_links = self.check_links
        blocked_pairs = self.blocked_pairs
        pos_get = pos.get
        hop_red = self.hop_red
        hop_blue = self.hop_blue
        hop_preds = self.hop_preds
        hop_preds_get = hop_preds.get
        for i, asn in enumerate(asns):
            kr, kb, kur, kub = keys_of(asn)
            # Inlined _target for both colors (the build loop runs per
            # session and per one-shot batch classification).  The raw
            # hop is indexed even when the failure sets block it: a
            # later boundary restore must be able to find the entry.
            for key, nexts, hops in ((kr, nred, hop_red), (kb, nblue, hop_blue)):
                path = state_get(key)
                if not path:
                    continue  # already -1
                hop = path[0]
                hops[i] = hop
                entries = hop_preds_get(hop)
                if entries is None:
                    hop_preds[hop] = {i}
                else:
                    entries.add(i)
                if check_links and (
                    hop in failed_ases
                    or asn in failed_ases
                    or (asn, hop) in blocked_pairs
                ):
                    continue
                j = pos_get(hop)
                if j is None:
                    self.broken = True
                    return
                nexts[i] = 4 * j
            if state_get(kur, False):
                ured[i] = True
            if state_get(kub, False):
                ublue[i] = True
        for i in range(n):
            self._recompose(i)

    def _usable(self, asn: ASN, hop: Optional[ASN]) -> int:
        """State-index base of a raw next hop, or ``-1`` unusable.

        The failure check runs *before* the universe lookup, matching
        the build loop exactly: a failure-blocked out-of-universe hop
        does not break the table, an unblocked one does.
        """
        if hop is None:
            return -1
        if self.check_links and (
            hop in self.failed_ases
            or asn in self.failed_ases
            or (asn, hop) in self.blocked_pairs
        ):
            return -1
        j = self.pos.get(hop)
        if j is None:
            # Next hop outside the indexed universe (synthetic state):
            # the table cannot represent this walk; callers fall back
            # to the closure engine.
            self.broken = True
            return -1
        return 4 * j

    def _target(self, asn: ASN, path) -> int:
        """State-index base of a route's next hop, or ``-1`` unusable."""
        return self._usable(asn, path[0] if path else None)

    def _set_hop(self, i: int, hop: Optional[ASN], arr, other) -> None:
        """Write one raw-hop entry, maintaining the reverse hop index.

        ``other`` is the sibling color's hop array: the old reverse
        edge survives while the sibling still points at the same hop.
        """
        old = arr[i]
        if old == hop:
            return
        arr[i] = hop
        hop_preds = self.hop_preds
        if old is not None and other[i] != old:
            entries = hop_preds.get(old)
            if entries is not None:
                entries.discard(i)
        if hop is not None:
            entries = hop_preds.get(hop)
            if entries is None:
                hop_preds[hop] = {i}
            else:
                entries.add(i)

    def _set_succ(self, sid: int, new: int) -> None:
        """Write one successor entry, maintaining the reverse index.

        Only used once propagation is active; a real change moves the
        reverse edge and marks the state dirty for the next
        :meth:`collect_transitions`.
        """
        succ = self.succ
        old = succ[sid]
        if old == new:
            return
        preds = self.preds
        if old >= 0:
            entries = preds.get(old)
            if entries is not None:
                entries.discard(sid)
        if new >= 0:
            entries = preds.get(new)
            if entries is None:
                preds[new] = {sid}
            else:
                entries.add(sid)
        succ[sid] = new
        self.dirty.add(sid)

    def _recompose(self, i: int) -> None:
        """Re-derive one AS's four successor/read entries."""
        if i == self.dest_i:
            b = 4 * i
            codes = self.codes
            succ = self.succ
            codes[b] = codes[b + 1] = codes[b + 2] = codes[b + 3] = _READS_NONE
            succ[b] = succ[b + 1] = succ[b + 2] = succ[b + 3] = -2
            return
        nr = self.nred[i]
        nb = self.nblue[i]
        b = 4 * i
        codes = self.codes
        reads = self.reads
        row = self.rows[i]
        # Red process states (offsets 0 / 1), mirroring the closure's
        # branch order: stable forward > one-time switch > unstable
        # ride > blackhole.
        if nr >= 0:
            if not self.ured[i]:
                s0 = nr
                codes[b] = _READS_OWN_UNST
            else:
                s0 = nb + 3 if nb >= 0 else nr
                codes[b] = _READS_OWN_UNST_OTHER
            s1 = nr + 1
            codes[b + 1] = _READS_OWN_UNST
        else:
            s0 = nb + 3 if nb >= 0 else -1
            codes[b] = _READS_OWN_OTHER
            s1 = -1
            codes[b + 1] = _READS_OWN
        # Blue process states (offsets 2 / 3).
        if nb >= 0:
            if not self.ublue[i]:
                s2 = nb + 2
                codes[b + 2] = _READS_OWN_UNST
            else:
                s2 = nr + 1 if nr >= 0 else nb + 2
                codes[b + 2] = _READS_OWN_UNST_OTHER
            s3 = nb + 3
            codes[b + 3] = _READS_OWN_UNST
        else:
            s2 = nr + 1 if nr >= 0 else -1
            codes[b + 2] = _READS_OWN_OTHER
            s3 = -1
            codes[b + 3] = _READS_OWN
        if self.preds is None:
            succ = self.succ
            succ[b] = s0
            succ[b + 1] = s1
            succ[b + 2] = s2
            succ[b + 3] = s3
        else:
            self._set_succ(b, s0)
            self._set_succ(b + 1, s1)
            self._set_succ(b + 2, s2)
            self._set_succ(b + 3, s3)
        reads[b] = row[codes[b]]
        reads[b + 1] = row[codes[b + 1]]
        reads[b + 2] = row[5 + codes[b + 2]]
        reads[b + 3] = row[5 + codes[b + 3]]

    def update(self, key, value) -> None:
        """Apply one fingerprint-changed snapshot key to the table."""
        if self.broken:
            return
        i = self.pos.get(key[0])
        if i is None:  # a key outside the indexed universe appeared
            self.broken = True
            return
        if self.start_sid is not None:
            # Any of the four per-AS keys can flip the start decision.
            self.start_dirty.add(i)
        tag = key[1]
        if tag is _RED:
            hop = value[0] if value else None
            self._set_hop(i, hop, self.hop_red, self.hop_blue)
            self.nred[i] = self._usable(key[0], hop)
        elif tag is _BLUE:
            hop = value[0] if value else None
            self._set_hop(i, hop, self.hop_blue, self.hop_red)
            self.nblue[i] = self._usable(key[0], hop)
        elif tag[1] is _RED:
            # An instability flip touches exactly one state's entry
            # (the color's unswitched state; switched states and the
            # sibling color never read this flag).
            self.ured[i] = bool(value)
            if i != self.dest_i:
                self._recompose_red_s0(i)
            return
        else:
            self.ublue[i] = bool(value)
            if i != self.dest_i:
                self._recompose_blue_s0(i)
            return
        if not self.broken:
            self._recompose(i)

    def _recompose_red_s0(self, i: int) -> None:
        """Re-derive the red unswitched state after a red-flag flip."""
        nr = self.nred[i]
        if nr < 0:
            return  # flag unread while the route is unusable
        b = 4 * i
        if not self.ured[i]:
            target = nr
            code = _READS_OWN_UNST
        else:
            nb = self.nblue[i]
            target = nb + 3 if nb >= 0 else nr
            code = _READS_OWN_UNST_OTHER
        if self.preds is None:
            self.succ[b] = target
        else:
            self._set_succ(b, target)
        self.codes[b] = code
        self.reads[b] = self.rows[i][code]

    def _recompose_blue_s0(self, i: int) -> None:
        """Re-derive the blue unswitched state after a blue-flag flip."""
        nb = self.nblue[i]
        if nb < 0:
            return  # flag unread while the route is unusable
        b = 4 * i + 2
        if not self.ublue[i]:
            target = nb + 2
            code = _READS_OWN_UNST
        else:
            nr = self.nred[i]
            target = nr + 1 if nr >= 0 else nb + 2
            code = _READS_OWN_UNST_OTHER
        if self.preds is None:
            self.succ[b] = target
        else:
            self._set_succ(b, target)
        self.codes[b] = code
        self.reads[b] = self.rows[i][5 + code]

    def apply_boundary(self, failed_links, failed_ases) -> None:
        """Patch the table for new failure sets (a phase boundary).

        Successor and start entries depend on the failure sets only
        through ``nred``/``nblue`` usability, so a boundary delta
        invalidates exactly the entries whose inputs it touched: ASes
        named by a changed link or failure, plus — via the reverse hop
        index — every AS whose raw next hop is a toggled AS.  Each
        affected entry re-derives its usability under the new sets and
        recomposes on a real change; in propagation mode that marks the
        reverse closure dirty for the next
        :meth:`collect_transitions`, exactly the trace-change
        discipline.  A restore that unblocks an out-of-universe hop
        sets ``broken`` (a fresh build would have), telling callers to
        fall back to a rebuild.
        """
        if self.broken:
            return
        new_blocked = (
            frozenset(
                pair for a, b in failed_links for pair in ((a, b), (b, a))
            )
            if failed_links
            else frozenset()
        )
        old_blocked = self.blocked_pairs
        old_failed = self.failed_ases
        if new_blocked == old_blocked and failed_ases == old_failed:
            return
        affected: set = set()
        pos_get = self.pos.get
        for a, _b in old_blocked ^ new_blocked:
            i = pos_get(a)
            if i is not None:
                affected.add(i)
        hop_preds_get = self.hop_preds.get
        for x in old_failed ^ failed_ases:
            i = pos_get(x)
            if i is not None:
                affected.add(i)
            entries = hop_preds_get(x)
            if entries:
                affected |= entries
        self.failed_ases = failed_ases
        self.blocked_pairs = new_blocked
        self.check_links = bool(new_blocked) or bool(failed_ases)
        if not affected:
            return
        nred = self.nred
        nblue = self.nblue
        hop_red = self.hop_red
        hop_blue = self.hop_blue
        asns = self.asns
        usable = self._usable
        start_sid = self.start_sid
        start_dirty = self.start_dirty
        for i in affected:
            asn = asns[i]
            nr = usable(asn, hop_red[i])
            nb = usable(asn, hop_blue[i])
            if self.broken:
                return
            if nr != nred[i] or nb != nblue[i]:
                nred[i] = nr
                nblue[i] = nb
                self._recompose(i)
                if start_sid is not None:
                    start_dirty.add(i)

    # ------------------------------------------------------------------
    # Incremental outcome propagation
    # ------------------------------------------------------------------

    def activate_propagation(self) -> None:
        """Switch the table to exact incremental outcome maintenance.

        Builds the reverse adjacency, resolves every state's outcome
        once, and derives each source's start state and outcome.  From
        then on :meth:`update` marks exactly the entries whose
        successor changed, and :meth:`collect_transitions` invalidates
        the reverse closure of those states, re-resolves it, and
        reports the sources whose packet fate changed — no per-source
        dependency sets or key-level dependent indexing at all.
        """
        succ = self.succ
        n4 = len(succ)
        preds: Dict[int, set] = {}
        preds_get = preds.get
        for sid in range(n4):
            target = succ[sid]
            if target >= 0:
                entries = preds_get(target)
                if entries is None:
                    preds[target] = {sid}
                else:
                    entries.add(sid)
        self.preds = preds
        if _np is not None:
            arr = _np.empty(n4 + 2, dtype=_np.int64)
            arr[:n4] = succ
            deliv, bh = n4, n4 + 1
            arr[arr == -2] = deliv
            arr[arr == -1] = bh
            arr[deliv] = deliv
            arr[bh] = bh
            out = _resolve_outcome_array(arr, n4)
        else:
            from repro.forwarding.walk import _resolve_outcomes_python

            out = _resolve_outcomes_python(list(succ))
        self.state_outcome = out
        start_sid: List[int] = []
        source_outcome: List[Outcome] = []
        dest_i = self.dest_i
        for i in range(len(self.asns)):
            if i == dest_i:
                start_sid.append(-1)
                source_outcome.append(_DELIVERED)
                continue
            _row, sid = self._start_eval(i)
            if sid < 0:
                start_sid.append(-1)
                source_outcome.append(_BLACKHOLE)
            else:
                start_sid.append(sid)
                source_outcome.append(out[sid])
        self.start_sid = start_sid
        self.source_outcome = source_outcome
        self.dirty = set()
        self.start_dirty = set()

    def _rescan(self, remaining: set) -> None:
        """Re-resolve the outcomes of an invalidated state set.

        States outside ``remaining`` hold valid outcomes (they cannot
        reach a changed edge); each walk runs until it leaves the set,
        terminates, or closes a cycle, then back-propagates.
        """
        out = self.state_outcome
        succ = self.succ
        codes = self.codes
        for sid0 in list(remaining):
            if sid0 not in remaining:
                continue
            path: List[int] = []
            on_path: Dict[int, int] = {}
            cur = sid0
            while True:
                if cur not in remaining:
                    outcome = out[cur]
                    break
                code = codes[cur]
                if code == _READS_NONE:  # a destination state
                    outcome = _DELIVERED
                    out[cur] = outcome
                    remaining.discard(cur)
                    break
                if cur in on_path:
                    # Every cycle state reaches exactly the cycle.
                    outcome = _LOOP
                    cut = on_path[cur]
                    for s2 in path[cut:]:
                        out[s2] = _LOOP
                        remaining.discard(s2)
                    del path[cut:]
                    break
                on_path[cur] = len(path)
                path.append(cur)
                nxt = succ[cur]
                if nxt < 0:
                    outcome = _DELIVERED if nxt == -2 else _BLACKHOLE
                    break
                cur = nxt
            for s2 in reversed(path):
                out[s2] = outcome
                remaining.discard(s2)

    def collect_transitions(self) -> List[Tuple[ASN, Outcome]]:
        """Flush pending invalidations; report changed source fates.

        Returns ``(source AS, new outcome)`` for exactly the sources
        whose packet fate differs from the last collection.
        """
        dirty = self.dirty
        start_dirty = self.start_dirty
        transitions: List[Tuple[ASN, Outcome]] = []
        if not dirty and not start_dirty:
            return transitions
        start_sid = self.start_sid
        if dirty:
            closure = set(dirty)
            closure_add = closure.add
            stack = list(dirty)
            stack_append = stack.append
            preds_get = self.preds.get
            while stack:
                entries = preds_get(stack.pop())
                if entries:
                    for pred in entries:
                        if pred not in closure:
                            closure_add(pred)
                            stack_append(pred)
            # _rescan consumes its working set as states resolve, so it
            # gets a copy; the closure itself then seeds the start-state
            # checks below.
            self._rescan(set(closure))
            for sid in closure:
                i = sid >> 2
                if start_sid[i] == sid:
                    start_dirty.add(i)
            self.dirty = set()
        out = self.state_outcome
        source_outcome = self.source_outcome
        asns = self.asns
        dest_i = self.dest_i
        for i in start_dirty:
            if i == dest_i:
                continue
            _row, sid = self._start_eval(i)
            start_sid[i] = sid
            new = _BLACKHOLE if sid < 0 else out[sid]
            if new is not source_outcome[i]:
                source_outcome[i] = new
                transitions.append((asns[i], new))
        self.start_dirty = set()
        return transitions

    def source_outcomes(self, asns_iter) -> Dict[ASN, Outcome]:
        """Current packet fate of the given sources (propagation mode)."""
        pos_get = self.pos.get
        source_outcome = self.source_outcome
        result: Dict[ASN, Outcome] = {}
        for asn in asns_iter:
            i = pos_get(asn)
            result[asn] = _BLACKHOLE if i is None else source_outcome[i]
        return result

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def _start_eval(self, i: int) -> Tuple[int, int]:
        """Source start decision: ``(reads-row index, start state)``.

        The start state is ``-1`` for an immediate blackhole; the row
        indices match :meth:`STAMPDataPlane._start_rows` and reproduce
        the closure's exact reported reads per branch.
        """
        nb = self.nblue[i]
        if nb >= 0 and not self.ublue[i]:
            return 0, 4 * i + 2
        nr = self.nred[i]
        if nr >= 0 and not self.ured[i]:
            return 1, 4 * i
        if nb >= 0:
            return (1 if nr >= 0 else 2), 4 * i + 2
        if nr >= 0:
            return 3, 4 * i
        return 4, -1

    def classify_one(self, asn: ASN, failed_ases) -> Tuple[Outcome, set]:
        """Single-source walk without the per-instant memo machinery.

        The common incremental-scan case (one touched source per
        instant) needs no suffix sharing; the walk runs over the
        integer table, accumulating the dependency set inline (the
        union over visited states' reads is path-order independent).
        """
        if asn in failed_ases:
            return (_BLACKHOLE, set())
        if asn == self.destination:
            return (_DELIVERED, set())
        i = self.pos.get(asn)
        if i is None:
            return (_BLACKHOLE, set(self.plane._start_rows(asn)[4]))
        srow = self.srows[i]
        # Inlined _start_eval (this is the hottest entry point).
        nb = self.nblue[i]
        nr = self.nred[i]
        if nb >= 0 and not self.ublue[i]:
            row = 0
            sid = 4 * i + 2
        elif nr >= 0 and not self.ured[i]:
            row = 1
            sid = 4 * i
        elif nb >= 0:
            row = 1 if nr >= 0 else 2
            sid = 4 * i + 2
        elif nr >= 0:
            row = 3
            sid = 4 * i
        else:
            return (_BLACKHOLE, set(srow[4]))
        succ = self.succ
        codes = self.codes
        reads = self.reads
        deps = set(srow[row])
        deps_update = deps.update
        on_path: set = set()
        on_path_add = on_path.add
        cur = sid
        while True:
            code = codes[cur]
            if code == _READS_NONE:  # a destination state
                outcome = _DELIVERED
                break
            if cur in on_path:
                outcome = _LOOP
                break
            on_path_add(cur)
            deps_update(reads[cur])
            nxt = succ[cur]
            if nxt < 0:
                outcome = _BLACKHOLE
                break
            cur = nxt
        return (outcome, deps)

    def classify_many(
        self, asns: List, failed_ases
    ) -> Dict[ASN, Tuple[Outcome, set]]:
        """Suffix-shared classification with dependency reporting.

        Identical outcomes and dependency sets to the closure walks,
        with per-instant position sharing: a walk reaching a state
        already resolved *during this call* inherits its outcome and
        dependency union instead of re-walking the suffix (within one
        call the snapshot is fixed, so a state's outcome and reachable
        read-set are well-defined values independent of which source
        reached it first — the equivalence tests pin this against the
        brute-force twins).
        """
        if len(asns) <= 3:
            # Tiny requests: suffix overlap cannot repay the memo
            # machinery; plain per-source walks win.
            classify_one = self.classify_one
            return {
                asn: classify_one(asn, failed_ases)
                for asn in asns
            }
        succ = self.succ
        codes = self.codes
        reads = self.reads
        pos = self.pos
        srows = self.srows
        destination = self.destination
        results: Dict[ASN, Tuple[Outcome, set]] = {}
        memo_out: Dict[int, Outcome] = {}
        memo_deps: Dict[int, set] = {}
        for asn in asns:
            if asn in failed_ases:
                results[asn] = (_BLACKHOLE, set())
                continue
            if asn == destination:
                results[asn] = (_DELIVERED, set())
                continue
            i = pos.get(asn)
            if i is None:
                # Unknown source: both route keys read as absent.
                results[asn] = (_BLACKHOLE, set(self.plane._start_rows(asn)[4]))
                continue
            srow = srows[i]
            row, sid = self._start_eval(i)
            if sid < 0:
                results[asn] = (_BLACKHOLE, set(srow[4]))
                continue
            path: List[int] = []
            path_append = path.append
            on_path: Dict[int, int] = {}
            cur = sid
            while True:
                outcome = memo_out.get(cur)
                if outcome is not None:
                    acc = memo_deps[cur]
                    break
                code = codes[cur]
                if code == _READS_NONE:  # a destination state
                    outcome = _DELIVERED
                    memo_out[cur] = outcome
                    acc = memo_deps[cur] = set()
                    break
                if cur in on_path:
                    # Every cycle state reaches exactly the cycle, so
                    # they share one outcome and one dependency union.
                    outcome = _LOOP
                    cut = on_path[cur]
                    acc = set()
                    for s2 in path[cut:]:
                        acc.update(reads[s2])
                    for s2 in path[cut:]:
                        memo_out[s2] = outcome
                        memo_deps[s2] = acc
                    del path[cut:]
                    break
                on_path[cur] = len(path)
                path_append(cur)
                nxt = succ[cur]
                if nxt < 0:
                    outcome = _BLACKHOLE
                    acc = set()
                    break
                cur = nxt
            for s2 in reversed(path):
                acc = acc.union(reads[s2])
                memo_out[s2] = outcome
                memo_deps[s2] = acc
            # Start reads usually lie inside the suffix union; the
            # shared memo set is handed out as-is then (read-only by
            # contract) instead of copied per source.
            sr = srow[row]
            for read_key in sr:
                if read_key not in acc:
                    acc = acc.union(sr)
                    break
            results[asn] = (outcome, acc)
        return results

    def batch_classification(self, need_reads: bool) -> BatchClassification:
        """One-shot numpy resolution of the whole table.

        Converts the integer successor list to a sentinel-extended
        array and pointer-doubles every outcome in one pass.
        """
        n4 = len(self.succ)
        deliv, bh = n4, n4 + 1
        arr = _np.empty(n4 + 2, dtype=_np.int64)
        arr[:n4] = self.succ
        arr[arr == -2] = deliv
        arr[arr == -1] = bh
        arr[deliv] = deliv
        arr[bh] = bh
        outcomes = _resolve_outcome_array(arr, n4)
        return _ColorTableBatch(
            self.pos,
            self.succ,
            outcomes,
            self.reads if need_reads else None,
        )


class STAMPDataPlane(WalkClassifier):
    """Walks color-carrying packets with the switch-once rule."""

    def __init__(self, destination: ASN) -> None:
        super().__init__(destination)
        #: (asn -> (red key, blue key, red unstable key, blue unstable
        #: key)), shared by every spec and table of this plane.
        self._key_cache: Dict[ASN, Tuple] = {}
        #: (asn -> 10-slot row of successor reads tuples,
        #: ``5 * (color is BLUE) + pattern``).
        self._reads_cache: Dict[ASN, List[Tuple]] = {}
        #: (asn -> 6-slot row of start reads tuples).
        self._start_cache: Dict[ASN, List[Tuple]] = {}

    def _keys_of(self, asn: ASN) -> Tuple:
        keys = self._key_cache.get(asn)
        if keys is None:
            keys = self._key_cache[asn] = (
                (asn, _RED),
                (asn, _BLUE),
                (asn, _RED_UNSTABLE),
                (asn, _BLUE_UNSTABLE),
            )
        return keys

    def _reads_row(self, asn: ASN) -> List[Tuple]:
        """Reads tuples of one AS's eight successor patterns."""
        row = self._reads_cache.get(asn)
        if row is None:
            kr, kb, kur, kub = self._keys_of(asn)
            row = self._reads_cache[asn] = [
                (kr,),
                (kr, kur),
                (kr, kur, kb),
                (kr, kb),
                (),
                (kb,),
                (kb, kub),
                (kb, kub, kr),
                (kb, kr),
                (),
            ]
        return row

    def _start_rows(self, asn: ASN) -> List[Tuple]:
        """Reads tuples of one AS's six start branches."""
        row = self._start_cache.get(asn)
        if row is None:
            kr, kb, kur, kub = self._keys_of(asn)
            row = self._start_cache[asn] = [
                (kb, kub),  # stable blue
                (kb, kub, kr, kur),  # stable red / unstable blue over red
                (kb, kub, kr),  # unstable blue, red unusable
                (kb, kr, kur),  # unstable red, blue unusable
                (kb, kr),  # no usable route
                (),  # destination
            ]
        return row

    def _session_table(self, state, failed_links, failed_ases):
        table = _SuccessorTable(self, state, failed_links, failed_ases)
        return None if table.broken else table

    def boundary_touched_keys(
        self, state, old_links, old_ases, new_links, new_ases
    ):
        """Keys whose walk behavior a failure-set delta can change.

        Only consulted when the session runs on the closure engine (a
        broken successor table): every usability check involves the
        forwarding AS (hot when it is an endpoint of a changed link or
        a toggled AS — its route keys are always the state's first
        reads) or the route's next hop (found by scanning route-key
        fingerprints for toggled ASes).
        """
        delta_ases = set(old_ases ^ new_ases)
        hot = set(delta_ases)
        for a, b in old_links ^ new_links:
            hot.add(a)
            hot.add(b)
        touched: set = set()
        for x in hot:
            touched.add((x, _RED))
            touched.add((x, _BLUE))
        if delta_ases:
            for state_key, value in state.items():
                if (
                    type(state_key[1]) is Color
                    and value
                    and value[0] in delta_ases
                ):
                    touched.add(state_key)
        return touched

    def _walk_spec(self, state, failed_links, failed_ases) -> WalkSpec:
        destination = self.destination
        state_get = state.get
        reads_buf: list = []
        reads_append = reads_buf.append
        red, blue = _RED, _BLUE
        red_unstable, blue_unstable = _RED_UNSTABLE, _BLUE_UNSTABLE
        keys_of = self._keys_of

        # The failure sets are fixed for the spec's lifetime, so the
        # per-hop link check reduces to one membership test on a
        # pre-expanded ordered-pair set (no normalize_link call), and
        # vanishes entirely in the failure-free case.
        no_failures = not failed_links and not failed_ases
        blocked_pairs = frozenset(
            pair
            for a, b in failed_links
            for pair in ((a, b), (b, a))
        )

        def link_ok(a: ASN, b: ASN) -> bool:
            return (
                b not in failed_ases
                and a not in failed_ases
                and (a, b) not in blocked_pairs
            )

        def successor(walk_state) -> Optional[_WalkState]:
            # Single fetch per route: the layered usable/stable helpers
            # re-read the same snapshot keys several times per hop,
            # which dominates full-scan classification cost.
            asn, color, switched = walk_state
            own_key = (asn, color)
            reads_append(own_key)
            path = state_get(own_key)
            own_usable = bool(path) and (
                no_failures or link_ok(asn, path[0])
            )
            if own_usable:
                unstable_key_ = (
                    asn,
                    red_unstable if color is red else blue_unstable,
                )
                reads_append(unstable_key_)
                if not state_get(unstable_key_, False):
                    return (path[0], color, switched)
            if not switched:
                other = blue if color is red else red
                other_key = (asn, other)
                reads_append(other_key)
                other_path = state_get(other_key)
                if other_path and (
                    no_failures or link_ok(asn, other_path[0])
                ):
                    return (other_path[0], other, True)
            if own_usable:
                # No stable alternative: ride the unstable same-color
                # route rather than drop.
                return (path[0], color, switched)
            return None

        def delivered(walk_state) -> bool:
            return walk_state[0] == destination

        def start(asn: ASN):
            # Inlined initial_color with one fetch per route (this runs
            # once per source per reclassification).  The reported
            # reads follow the short-circuit order exactly: keys never
            # consulted cannot change the decision.
            if asn == destination:
                return None, Outcome.DELIVERED, ()
            key_r, key_b, key_ur, key_ub = keys_of(asn)
            blue_path = state_get(key_b)
            blue_usable = bool(blue_path) and (
                no_failures or link_ok(asn, blue_path[0])
            )
            if blue_usable and not state_get(key_ub, False):
                return (asn, blue, False), None, (key_b, key_ub)
            red_path = state_get(key_r)
            red_usable = bool(red_path) and (
                no_failures or link_ok(asn, red_path[0])
            )
            if red_usable and not state_get(key_ur, False):
                return (asn, red, False), None, (key_b, key_ub, key_r, key_ur)
            if blue_usable:
                # Unstable blue beats unusable-or-unstable red.
                reads = (key_b, key_ub, key_r, key_ur) if red_usable else (
                    key_b, key_ub, key_r
                )
                return (asn, blue, False), None, reads
            if red_usable:
                return (asn, red, False), None, (key_b, key_r, key_ur)
            return None, Outcome.BLACKHOLE, (key_b, key_r)

        def key_fingerprint(state_key, value):
            # Route entries: walks only look at the next hop.
            # Instability flags: the full (boolean) value matters.
            if type(state_key[1]) is Color:
                return value[0] if value else None
            return value

        def bulk_fingerprint(snapshot):
            return {
                key: (value[0] if value else None)
                if type(key[1]) is Color
                else value
                for key, value in snapshot.items()
            }

        return WalkSpec(
            start, successor, delivered, reads_buf, key_fingerprint,
            bulk_fingerprint,
        )

    def _batch_classify(
        self,
        spec: WalkSpec,
        starts: List[_WalkState],
        *,
        state: Dict,
        failed_links: FrozenSet[Link],
        failed_ases: FrozenSet[ASN],
        need_reads: bool,
    ) -> BatchClassification:
        """Classify STAMP's whole two-color state space in one pass.

        Builds the flat successor table from per-AS next-hop and
        instability projections (one snapshot fetch per key, no closure
        calls) and resolves outcomes by numpy pointer doubling.
        Identical outcomes and per-state reads to the generic engine;
        falls back to it when numpy is unavailable or a next hop lies
        outside the snapshot's AS universe.
        """
        if _np is not None:
            table = _SuccessorTable(self, state, failed_links, failed_ases)
            if not table.broken:
                return table.batch_classification(need_reads)
        return super()._batch_classify(
            spec,
            starts,
            state=state,
            failed_links=failed_links,
            failed_ases=failed_ases,
            need_reads=need_reads,
        )

    def classify(
        self,
        state: Dict,
        ases: Iterable[ASN],
        *,
        failed_links: FrozenSet[Link] = frozenset(),
        failed_ases: FrozenSet[ASN] = frozenset(),
    ) -> Dict[ASN, Outcome]:
        spec = self._walk_spec(state, failed_links, failed_ases)
        outcomes: Dict[ASN, Outcome] = {}
        memo: Dict[_WalkState, Outcome] = {}
        for asn in ases:
            if asn in failed_ases:
                continue
            start_state, immediate, _ = spec.start(asn)
            if start_state is None:
                outcomes[asn] = immediate
                continue
            classify_functional_graph(
                [start_state], spec.successor, spec.delivered, memo=memo
            )
            outcomes[asn] = memo[start_state]
        return outcomes
