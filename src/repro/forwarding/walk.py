"""Generic data-plane walk classification.

A data-plane snapshot induces a deterministic successor function on
walk states (for BGP a state is just the current AS; for STAMP it is
``(AS, packet color, switched?)``; for R-BGP it includes pinned
failover paths).  Classifying every AS's packet fate then reduces to
outcome propagation over a functional graph: a walk is DELIVERED if it
reaches the destination, BLACKHOLE if it reaches a state with no
successor, and LOOP if it revisits a state.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional, TypeVar

from repro.types import Outcome

State = TypeVar("State", bound=Hashable)

#: Successor function: next walk state, or ``None`` when the packet is
#: dropped (blackhole).
Successor = Callable[[Hashable], Optional[Hashable]]
#: Terminal predicate: ``True`` when the packet has been delivered.
Delivered = Callable[[Hashable], bool]


def classify_functional_graph(
    starts: Iterable[Hashable],
    successor: Successor,
    delivered: Delivered,
    *,
    memo: Optional[Dict[Hashable, Outcome]] = None,
) -> Dict[Hashable, Outcome]:
    """Classify the walk outcome from each start state.

    Shares ``memo`` across calls for amortization within one snapshot.
    Runs iteratively (no recursion limits) with on-path cycle detection:
    any state that reaches a cycle is classified LOOP.
    """
    outcomes: Dict[Hashable, Outcome] = memo if memo is not None else {}
    for start in starts:
        if start in outcomes:
            continue
        path: list = []
        on_path: Dict[Hashable, int] = {}
        state = start
        result: Outcome
        while True:
            if state in outcomes:
                result = outcomes[state]
                break
            if state in on_path:
                # Found a new cycle: everything on it (and leading into
                # it) loops.
                result = Outcome.LOOP
                break
            if delivered(state):
                outcomes[state] = Outcome.DELIVERED
                result = Outcome.DELIVERED
                break
            on_path[state] = len(path)
            path.append(state)
            nxt = successor(state)
            if nxt is None:
                result = Outcome.BLACKHOLE
                break
            state = nxt
        for visited in path:
            outcomes[visited] = result
    return outcomes


class ReadRecordingState:
    """Mapping wrapper that records which state keys a walk reads.

    Every data plane consults the control-plane snapshot exclusively
    through ``state.get``/``state[...]``, so the set of keys read while
    classifying one source is exactly the set of trace keys its outcome
    depends on: a walk is a deterministic function of the values it
    reads, hence unchanged reads imply an unchanged outcome.  The
    incremental transient analyzer uses this to re-classify only the
    sources whose recorded keys changed.
    """

    __slots__ = ("_state", "reads")

    def __init__(self, state: Dict) -> None:
        self._state = state
        self.reads: set = set()

    def get(self, key, default=None):
        self.reads.add(key)
        return self._state.get(key, default)

    def __getitem__(self, key):
        self.reads.add(key)
        return self._state[key]

    def __contains__(self, key) -> bool:
        self.reads.add(key)
        return key in self._state


class WalkClassifier:
    """Base class for protocol-specific data planes.

    Subclasses define how a control-plane snapshot (the trace's state
    dict) maps to successor/delivered functions; ``classify`` then
    evaluates the packet fate of each requested AS.
    """

    def __init__(self, destination) -> None:
        self.destination = destination

    def classify(
        self,
        state: Dict,
        ases: Iterable,
        *,
        failed_links=frozenset(),
        failed_ases=frozenset(),
    ) -> Dict[Hashable, Outcome]:
        """Outcome per source AS under the given snapshot."""
        raise NotImplementedError

    def classify_one_recording(
        self,
        state: Dict,
        asn,
        *,
        failed_links=frozenset(),
        failed_ases=frozenset(),
    ) -> "tuple[Outcome, set]":
        """Classify one source and report the state keys it read.

        Returns ``(outcome, keys_read)``.  Sources the plane refuses to
        classify (e.g. failed ASes) count as BLACKHOLE.
        """
        recorder = ReadRecordingState(state)
        outcomes = self.classify(
            recorder, (asn,), failed_links=failed_links, failed_ases=failed_ases
        )
        return outcomes.get(asn, Outcome.BLACKHOLE), recorder.reads
