"""Generic data-plane walk classification.

A data-plane snapshot induces a deterministic successor function on
walk states (for BGP a state is just the current AS; for STAMP it is
``(AS, packet color, switched?)``; for R-BGP it includes pinned
failover paths).  Classifying every AS's packet fate then reduces to
outcome propagation over a functional graph: a walk is DELIVERED if it
reaches the destination, BLACKHOLE if it reaches a state with no
successor, and LOOP if it revisits a state.

Three engines share the successor abstraction:

* :func:`classify_functional_graph` — per-source iterative walks with
  on-path cycle detection (cheap for one or two sources);
* :func:`classify_functional_graph_batch` — full-scan path: every
  reachable state is indexed once (one successor call per state), the
  successor map becomes an integer array, and outcomes are resolved by
  vectorized pointer doubling on that array (numpy when available,
  with a pure-Python fallback).  Terminal states point at one of two
  absorbing sentinels; after ⌈log₂ n⌉ squarings every index has either
  been absorbed (DELIVERED / BLACKHOLE) or provably rides a cycle
  (LOOP);
* plane-provided *successor tables* (see
  :meth:`WalkClassifier._session_table` and STAMP's implementation in
  :mod:`repro.forwarding.stamp_plane`) — planes whose walk-state space
  projects onto flat integer arrays hand analysis sessions a table
  that is updated per changed key and maintains per-state outcomes
  incrementally, so replay engines receive exact per-source outcome
  transitions without any per-source dependency bookkeeping.

Dependency tracking (for the closure-based incremental paths): rather
than recording every snapshot read through a mapping wrapper — a
Python-level call per read on the hottest path — each spec's closures
append the keys they consult to :attr:`WalkSpec.reads_buf` inline (one
C-level list append per read), and ``start`` returns its exact reads
directly.  Under short-circuit evaluation the keys actually consulted
fully determine a walk, so these exact read sets are sound dependency
sets.  Specs additionally expose :attr:`WalkSpec.key_fingerprint`, the
projection of a snapshot value onto what walks can observe of it (e.g.
only a route's next hop): value changes with equal fingerprints cannot
change any outcome and can be filtered before dependency lookup (and,
for table planes, before table maintenance — the tables store exactly
the fingerprint projections).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro.types import Outcome

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _np = None

State = TypeVar("State", bound=Hashable)

#: Successor function: next walk state, or ``None`` when the packet is
#: dropped (blackhole).
Successor = Callable[[Hashable], Optional[Hashable]]
#: Terminal predicate: ``True`` when the packet has been delivered.
Delivered = Callable[[Hashable], bool]
#: Start mapping: source AS -> (initial walk state, immediate outcome,
#: snapshot keys read).  Exactly one of the first two is non-``None``;
#: an immediate outcome means the source never enters the walk (e.g.
#: STAMP's colorless sources).  The keys are the exact reads made to
#: decide — under short-circuit evaluation they fully determine the
#: decision, so they are a sound dependency set.
Start = Callable[[Hashable], Tuple[Optional[Hashable], Optional[Outcome], Tuple]]
#: Projection of one snapshot value onto what walks can observe of it.
KeyFingerprint = Callable[[Hashable, object], object]

#: Sentinel successor markers used while indexing states.
_DELIVERED_IDX = -2
_BLACKHOLE_IDX = -1


class WalkSpec:
    """One snapshot's walk semantics.

    ``start``/``successor``/``delivered`` define the walks; ``start``
    reports its exact reads, ``successor`` appends each key it consults
    to ``reads_buf`` (callers clear and snapshot the buffer around
    calls), and ``key_fingerprint`` projects snapshot values onto what
    the walks can observe of them.

    Non-recording callers (``classify``/``classify_batch``) simply
    ignore the buffer: one C-level append per read is cheaper than
    maintaining a second, non-recording closure set per plane, and the
    buffer's size is bounded by one call's scan (it dies with the
    spec, which those callers build per call).
    """

    __slots__ = (
        "start",
        "successor",
        "delivered",
        "reads_buf",
        "key_fingerprint",
        "bulk_fingerprint",
    )

    def __init__(
        self,
        start: Start,
        successor: Successor,
        delivered: Delivered,
        reads_buf: List,
        key_fingerprint: KeyFingerprint,
        bulk_fingerprint: Optional[Callable[[Dict], Dict]] = None,
    ) -> None:
        self.start = start
        self.successor = successor
        self.delivered = delivered
        self.reads_buf = reads_buf
        self.key_fingerprint = key_fingerprint
        #: Optional whole-snapshot fingerprinting (one dict pass
        #: instead of a ``key_fingerprint`` call per key); must agree
        #: with ``key_fingerprint`` on every key.
        self.bulk_fingerprint = bulk_fingerprint


def classify_functional_graph(
    starts: Iterable[Hashable],
    successor: Successor,
    delivered: Delivered,
    *,
    memo: Optional[Dict[Hashable, Outcome]] = None,
) -> Dict[Hashable, Outcome]:
    """Classify the walk outcome from each start state.

    Shares ``memo`` across calls for amortization within one snapshot.
    Runs iteratively (no recursion limits) with on-path cycle detection:
    any state that reaches a cycle is classified LOOP.
    """
    outcomes: Dict[Hashable, Outcome] = memo if memo is not None else {}
    for start in starts:
        if start in outcomes:
            continue
        path: list = []
        on_path: Dict[Hashable, int] = {}
        state = start
        result: Outcome
        while True:
            if state in outcomes:
                result = outcomes[state]
                break
            if state in on_path:
                # Found a new cycle: everything on it (and leading into
                # it) loops.
                result = Outcome.LOOP
                break
            if delivered(state):
                outcomes[state] = Outcome.DELIVERED
                result = Outcome.DELIVERED
                break
            on_path[state] = len(path)
            path.append(state)
            nxt = successor(state)
            if nxt is None:
                result = Outcome.BLACKHOLE
                break
            state = nxt
        for visited in path:
            outcomes[visited] = result
    return outcomes


def _walk_outcome(
    start: Hashable, successor: Successor, delivered: Delivered
) -> Outcome:
    """Outcome of one walk, without memo or path bookkeeping.

    Memo-free (the incremental analyzer re-walks one or two sources per
    instant); the successor's read appends accumulate in the spec's
    buffer as a side effect.
    """
    on_path: set = set()
    state = start
    while True:
        if delivered(state):
            return Outcome.DELIVERED
        if state in on_path:
            return Outcome.LOOP
        on_path.add(state)
        state = successor(state)
        if state is None:
            return Outcome.BLACKHOLE


class BatchClassification:
    """Indexed functional graph with resolved outcomes.

    Built by :func:`classify_functional_graph_batch` (or a plane's
    vectorized successor-table builder, see
    :meth:`WalkClassifier._batch_classify`).  Holds the state index,
    the integer successor list (``-2`` delivered / ``-1`` blackhole /
    else next index), the outcome per index, and — when ``state_keys``
    was supplied — the dependency keys of each state, from which
    per-source dependency sets are derived.

    Subclasses with an arithmetic state layout (STAMP's color table)
    override :meth:`_state_index` instead of materializing the index
    dict.
    """

    __slots__ = ("index", "states", "succ", "outcomes", "reads", "_deps")

    def __init__(
        self,
        index: Dict[Hashable, int],
        states: List[Hashable],
        succ: List[int],
        outcomes: List[Outcome],
        reads: Optional[List[Tuple]],
    ) -> None:
        self.index = index
        self.states = states
        self.succ = succ
        self.outcomes = outcomes
        self.reads = reads
        self._deps: Dict[int, Set] = {}

    def _state_index(self, state: Hashable) -> int:
        """Index of one walk state (overridable for computed layouts)."""
        return self.index[state]

    def outcome_of(self, state: Hashable) -> Outcome:
        """Resolved outcome of one indexed state."""
        return self.outcomes[self._state_index(state)]

    def deps_of(self, state: Hashable) -> Set:
        """Union of dependency keys over states reachable from ``state``.

        A walk outcome is a deterministic function of the keys its
        states read, so this is exactly the dependency set incremental
        analyzers need.  Memoized per suffix; cycles share one union.
        """
        if self.reads is None:
            raise ValueError("batch was classified without a reads buffer")
        deps = self._deps
        succ = self.succ
        reads = self.reads
        i = i0 = self._state_index(state)
        if i in deps:
            return deps[i]
        path: List[int] = []
        on_path: Dict[int, int] = {}
        while i >= 0 and i not in deps and i not in on_path:
            on_path[i] = len(path)
            path.append(i)
            i = succ[i]
        if i >= 0 and i in on_path:
            # Chain closed a cycle: every cycle state reaches exactly
            # the cycle, so they all share one union.
            cycle = path[on_path[i]:]
            acc: Set = set()
            for j in cycle:
                acc.update(reads[j])
            for j in cycle:
                deps[j] = acc
            path = path[: on_path[i]]
        elif i >= 0:
            acc = deps[i]
        else:
            acc = set()
        for j in reversed(path):
            acc = acc.union(reads[j])
            deps[j] = acc
        return deps[i0]


def _resolve_outcome_array(arr, n: int) -> List[Outcome]:
    """Pointer-doubling over a sentinel-extended successor array.

    ``arr`` has length ``n + 2``: indices ``< n`` are walk states,
    ``arr[n]`` / ``arr[n + 1]`` are the self-pointing DELIVERED and
    BLACKHOLE absorbers.  After k squarings ``arr[i]`` is the 2^k-th
    successor; any chain of length <= n+1 has been absorbed by a
    sentinel, so survivors loop.
    """
    deliv, bh = n, n + 1
    steps = max(1, (n + 2).bit_length())
    for _ in range(steps):
        arr = arr[arr]
    out: List[Outcome] = [Outcome.LOOP] * n
    for i in _np.flatnonzero(arr[:n] == deliv).tolist():
        out[i] = Outcome.DELIVERED
    for i in _np.flatnonzero(arr[:n] == bh).tolist():
        out[i] = Outcome.BLACKHOLE
    return out


def _resolve_outcomes_numpy(succ: List[int]) -> List[Outcome]:
    """Pointer-doubling resolution of the successor list."""
    n = len(succ)
    deliv, bh = n, n + 1
    arr = _np.empty(n + 2, dtype=_np.int64)
    for i, s in enumerate(succ):
        arr[i] = deliv if s == _DELIVERED_IDX else (bh if s == _BLACKHOLE_IDX else s)
    arr[deliv] = deliv
    arr[bh] = bh
    return _resolve_outcome_array(arr, n)


def _resolve_outcomes_python(succ: List[int]) -> List[Outcome]:
    """Index-based fallback resolution when numpy is unavailable."""
    n = len(succ)
    out: List[Optional[Outcome]] = [None] * n
    for start in range(n):
        if out[start] is not None:
            continue
        path: List[int] = []
        on_path: Dict[int, int] = {}
        i = start
        while True:
            if i == _DELIVERED_IDX:
                result = Outcome.DELIVERED
                break
            if i == _BLACKHOLE_IDX:
                result = Outcome.BLACKHOLE
                break
            if out[i] is not None:
                result = out[i]
                break
            if i in on_path:
                result = Outcome.LOOP
                break
            on_path[i] = len(path)
            path.append(i)
            i = succ[i]
        for j in path:
            out[j] = result
    return out  # type: ignore[return-value]


def classify_functional_graph_batch(
    starts: Iterable[Hashable],
    successor: Successor,
    delivered: Delivered,
    *,
    reads_buf: Optional[List] = None,
) -> BatchClassification:
    """Index every state reachable from ``starts`` and resolve outcomes.

    Each state's ``delivered``/``successor`` is evaluated exactly once
    (the scalar engine re-walks shared suffixes per source); resolution
    then runs on the integer successor array.  When ``reads_buf`` is
    the spec's read buffer, each state's exact reads are captured for
    :meth:`BatchClassification.deps_of` (delivered terminals read
    nothing and contribute none).
    """
    index: Dict[Hashable, int] = {}
    states: List[Hashable] = []
    succ: List[int] = []
    reads: Optional[List[Tuple]] = [] if reads_buf is not None else None
    for start in starts:
        if start not in index:
            index[start] = len(states)
            states.append(start)
    i = 0
    while i < len(states):
        state = states[i]
        if delivered(state):
            succ.append(_DELIVERED_IDX)
            if reads is not None:
                reads.append(())
        else:
            if reads_buf is not None:
                del reads_buf[:]
            nxt = successor(state)
            if nxt is None:
                succ.append(_BLACKHOLE_IDX)
            else:
                j = index.get(nxt)
                if j is None:
                    j = index[nxt] = len(states)
                    states.append(nxt)
                succ.append(j)
            if reads is not None:
                reads.append(tuple(reads_buf))  # type: ignore[arg-type]
        i += 1
    if _np is not None:
        outcomes = _resolve_outcomes_numpy(succ)
    else:
        outcomes = _resolve_outcomes_python(succ)
    return BatchClassification(index, states, succ, outcomes, reads)


class AnalysisSession:
    """One plane's walk spec plus per-source walk memory, reused across
    many scans of a mutating snapshot.

    Trace replay classifies thousands of instants against the *same*
    (mutating) state dict; rebuilding the plane's walk closures per
    instant — let alone per source — dominates incremental scan cost.
    Walks run directly over the raw mapping (C-level ``dict.get``) with
    inline read appends; when a source's re-walk reads the same keys as
    last time, its previous dependency set object is returned unchanged
    so callers can skip index updates on identity.
    """

    __slots__ = (
        "plane",
        "spec",
        "state",
        "failed_links",
        "failed_ases",
        "_prev",
        "table",
        "_table_tried",
    )

    def __init__(
        self, plane: "WalkClassifier", state: Dict, failed_links, failed_ases
    ) -> None:
        self.plane = plane
        self.state = state
        self.failed_links = failed_links
        self.failed_ases = failed_ases
        self.spec = plane._walk_spec(state, failed_links, failed_ases)
        #: Per-source (start reads, walk reads, dependency set).
        self._prev: Dict[Hashable, Tuple[Tuple, List, Set]] = {}
        #: Plane-provided successor table (see ``note_changed``), built
        #: lazily on the first batch-sized request so one-shot scalar
        #: sessions never pay the extraction.
        self.table = None
        self._table_tried = False

    def rebind(self, state: Dict) -> None:
        """Rebuild the spec's closures over a different state mapping.

        No-op when ``state`` is the mapping already bound (callers may
        rebind defensively per scan); an actual switch is rare — at
        most twice per analysis (the replay dict, plus the detached
        detection-instant copy) — and only ever to a mapping holding
        equal values (the session table, if any, therefore stays
        valid), so rebuilding the closures beats paying an indirection
        on every snapshot read.
        """
        if state is self.state:
            return
        self.state = state
        self.spec = self.plane._walk_spec(state, self.failed_links, self.failed_ases)

    def reset_failures(self, state: Dict, failed_links, failed_ases) -> None:
        """Rebind the session to a new snapshot *and* new failure sets.

        The episode engine's boundary fast path: the spec's closures
        bake the failure sets in, so they are rebuilt once per
        boundary; everything else the session holds survives — the
        ``_prev`` cache only reuses dependency-set objects on equal
        reads (outcomes are always recomputed), and the successor
        table, if any, must have been patched separately
        (:meth:`repro.forwarding.stamp_plane._SuccessorTable
        .apply_boundary`).
        """
        self.state = state
        self.failed_links = failed_links
        self.failed_ases = failed_ases
        self.spec = self.plane._walk_spec(state, failed_links, failed_ases)

    def ensure_table(self):
        """Build (once) and return this session's successor table.

        Replay engines call this at a segment's first full scan; the
        table extracts from the session's current state and is switched
        to incremental outcome propagation (see
        :meth:`repro.forwarding.stamp_plane._SuccessorTable
        .activate_propagation`).  Returns ``None`` for planes without
        table support (or snapshots the table cannot represent).
        """
        table = self.table
        if table is None:
            if self._table_tried:
                return None
            self._table_tried = True
            table = self.table = self.plane._session_table(
                self.state, self.failed_links, self.failed_ases
            )
        if table is not None and table.start_sid is None:
            table.activate_propagation()
        return table

    def classify_many(self, asns: Iterable) -> Dict[Hashable, Tuple[Outcome, set]]:
        """Classify sources, reporting each one's dependency keys.

        Returns ``{asn: (outcome, dependency keys)}``; the dependency
        set is a superset of the keys actually read (see module notes).
        Sources the plane refuses to classify (e.g. failed ASes) count
        as BLACKHOLE.  Large requests switch to the batch engine;
        multi-source requests below the batch threshold share walk
        suffixes through a per-instant position memo (see
        :meth:`_classify_many_shared`).
        """
        asns = list(asns)
        spec = self.spec
        failed_ases = self.failed_ases
        results: Dict[Hashable, Tuple[Outcome, set]] = {}
        table = self.table
        if table is None and not self._table_tried and (
            len(asns) >= self.plane.BATCH_THRESHOLD
        ):
            self._table_tried = True
            table = self.table = self.plane._session_table(
                self.state, self.failed_links, self.failed_ases
            )
        if table is not None:
            if not table.broken:
                return table.classify_many(asns, failed_ases)
            self.table = None  # fall back to the closure paths for good
        if len(asns) >= self.plane.BATCH_THRESHOLD:
            return self._classify_many_batch(asns)
        if len(asns) > 1:
            return self._classify_many_shared(asns)
        start = spec.start
        successor = spec.successor
        delivered = spec.delivered
        reads_buf = spec.reads_buf
        prev = self._prev
        for asn in asns:
            if asn in failed_ases:
                results[asn] = (Outcome.BLACKHOLE, set())
                continue
            start_state, immediate, start_reads = start(asn)
            if start_state is None:
                outcome = immediate if immediate is not None else Outcome.BLACKHOLE
                results[asn] = (outcome, set(start_reads))
                continue
            del reads_buf[:]
            outcome = _walk_outcome(start_state, successor, delivered)
            entry = prev.get(asn)
            if entry is not None and entry[0] == start_reads and entry[1] == reads_buf:
                # Identical reads: hand back the same set object so the
                # caller's identity check can skip its index update.
                deps = entry[2]
            else:
                walk_reads = list(reads_buf)
                deps = set(start_reads)
                deps.update(walk_reads)
                prev[asn] = (start_reads, walk_reads, deps)
            results[asn] = (outcome, deps)
        return results

    def classify_into(
        self,
        asns: List,
        outcome_of: Dict,
        deps_of: Dict,
        dependents: Dict,
    ) -> List[Tuple[Hashable, Outcome, Optional[Outcome]]]:
        """Classify sources and merge into an incremental-scan index.

        The fused form of :meth:`classify_many` for replay engines:
        each source's dependency set is folded straight into the
        caller's ``deps_of``/``dependents`` index (registering new
        keys, unregistering dropped ones) and ``outcome_of`` is
        updated in place.  Returns the outcome *transitions* —
        ``(source, new outcome, previous outcome)`` for exactly the
        sources whose outcome changed — which is all the interval
        bookkeeping upstream needs.  Classification semantics are
        identical to :meth:`classify_many` (same walks, same
        dependency sets).
        """
        table = self.table
        if table is None and not self._table_tried and (
            len(asns) >= self.plane.BATCH_THRESHOLD
        ):
            self._table_tried = True
            table = self.table = self.plane._session_table(
                self.state, self.failed_links, self.failed_ases
            )
        transitions: List[Tuple[Hashable, Outcome, Optional[Outcome]]] = []
        if table is not None and not table.broken:
            failed_ases = self.failed_ases
            if len(asns) == 1:
                # The dominant replay case: one touched source, merged
                # through the same loop below.
                (asn,) = asns
                items = ((asn, table.classify_one(asn, failed_ases)),)
            elif len(asns) <= 3:
                classify_one = table.classify_one
                items = [
                    (asn, classify_one(asn, failed_ases))
                    for asn in asns
                ]
            else:
                items = table.classify_many(asns, failed_ases).items()
        else:
            items = self.classify_many(asns).items()
        outcome_of_get = outcome_of.get
        deps_of_get = deps_of.get
        dependents_get = dependents.get
        for asn, (outcome, reads) in items:
            old_reads = deps_of_get(asn)
            if reads is not old_reads:
                if old_reads is None:
                    deps_of[asn] = reads
                    for key in reads:
                        sources = dependents_get(key)
                        if sources is None:
                            dependents[key] = {asn}
                        else:
                            sources.add(asn)
                elif reads != old_reads:
                    for key in old_reads:
                        if key not in reads:
                            dependents[key].discard(asn)
                    for key in reads:
                        if key not in old_reads:
                            sources = dependents_get(key)
                            if sources is None:
                                dependents[key] = {asn}
                            else:
                                sources.add(asn)
                    deps_of[asn] = reads
            old = outcome_of_get(asn)
            if outcome is not old:
                outcome_of[asn] = outcome
                transitions.append((asn, outcome, old))
        return transitions

    def _classify_many_shared(
        self, asns: List
    ) -> Dict[Hashable, Tuple[Outcome, set]]:
        """Suffix-shared scalar classification of several sources.

        One instant's sources frequently converge onto the same walk
        suffix (they were all touched by the same changed key), so each
        walk state is resolved at most once per call: a walk that
        reaches a position already classified *at this instant* inherits
        its outcome and dependency union instead of re-walking the
        suffix.  Outcomes and dependency sets are identical to the
        per-source walks — within one call the snapshot is fixed, so a
        state's outcome and reachable read-set are well-defined values
        independent of which source reached it first (the equivalence
        tests pin this against the brute-force twins).
        """
        spec = self.spec
        failed_ases = self.failed_ases
        start = spec.start
        successor = spec.successor
        delivered = spec.delivered
        reads_buf = spec.reads_buf
        prev = self._prev
        results: Dict[Hashable, Tuple[Outcome, set]] = {}
        #: Per-instant position memos: outcome and dependency union of
        #: every walk state resolved during this call.
        outcome_memo: Dict[Hashable, Outcome] = {}
        deps_memo: Dict[Hashable, set] = {}
        for asn in asns:
            if asn in failed_ases:
                results[asn] = (Outcome.BLACKHOLE, set())
                continue
            start_state, immediate, start_reads = start(asn)
            if start_state is None:
                outcome = immediate if immediate is not None else Outcome.BLACKHOLE
                results[asn] = (outcome, set(start_reads))
                continue
            #: Path of (state, reads-of-state) pairs walked this source.
            path: List[Tuple[Hashable, Tuple]] = []
            on_path: Dict[Hashable, int] = {}
            state = start_state
            acc: Optional[set] = None
            while True:
                outcome = outcome_memo.get(state)
                if outcome is not None:
                    acc = deps_memo[state]
                    break
                if delivered(state):
                    outcome = Outcome.DELIVERED
                    outcome_memo[state] = outcome
                    acc = deps_memo[state] = set()
                    break
                if state in on_path:
                    # Closed a new cycle: every cycle state reaches
                    # exactly the cycle, so they share one outcome and
                    # one dependency union.
                    outcome = Outcome.LOOP
                    cut = on_path[state]
                    acc = set()
                    for cycle_state, cycle_reads in path[cut:]:
                        acc.update(cycle_reads)
                    for cycle_state, _ in path[cut:]:
                        outcome_memo[cycle_state] = outcome
                        deps_memo[cycle_state] = acc
                    del path[cut:]
                    break
                on_path[state] = len(path)
                del reads_buf[:]
                nxt = successor(state)
                path.append((state, tuple(reads_buf)))
                if nxt is None:
                    outcome = Outcome.BLACKHOLE
                    acc = set()
                    break
                state = nxt
            # Back-propagate along the walked prefix, memoizing each
            # position's suffix union for the instant's later sources.
            for path_state, path_reads in reversed(path):
                acc = acc.union(path_reads)
                outcome_memo[path_state] = outcome
                deps_memo[path_state] = acc
            deps = acc.union(start_reads) if start_reads else acc
            entry = prev.get(asn)
            if entry is not None and entry[2] == deps:
                # Equal dependency set: hand back the previous object so
                # the caller's identity check can skip its index update.
                deps = entry[2]
            else:
                prev[asn] = (start_reads, None, deps)
            results[asn] = (outcome, deps)
        return results

    def _classify_many_batch(self, asns: List) -> Dict[Hashable, Tuple[Outcome, set]]:
        spec = self.spec
        failed_ases = self.failed_ases
        results: Dict[Hashable, Tuple[Outcome, set]] = {}
        start_info: List[Tuple[Hashable, Optional[Hashable], Optional[Outcome], Tuple]] = []
        for asn in asns:
            if asn in failed_ases:
                start_info.append((asn, None, Outcome.BLACKHOLE, ()))
                continue
            start_state, immediate, start_reads = spec.start(asn)
            start_info.append((asn, start_state, immediate, start_reads))
        batch = self.plane._batch_classify(
            spec,
            [s for _, s, _, _ in start_info if s is not None],
            state=self.state,
            failed_links=self.failed_links,
            failed_ases=self.failed_ases,
            need_reads=True,
        )
        for asn, start_state, immediate, start_reads in start_info:
            if start_state is None:
                outcome = immediate if immediate is not None else Outcome.BLACKHOLE
                results[asn] = (outcome, set(start_reads))
            else:
                deps = set(start_reads)
                deps |= batch.deps_of(start_state)
                results[asn] = (batch.outcome_of(start_state), deps)
        return results


class WalkClassifier:
    """Base class for protocol-specific data planes.

    Subclasses define how a control-plane snapshot (the trace's state
    dict) maps to start/successor/delivered functions via
    :meth:`_walk_spec`; ``classify`` then evaluates the packet fate of
    each requested AS, and the base class derives batch and
    dependency-reporting variants from the same spec.
    """

    #: Batch a dependency-reporting scan once this many sources are
    #: requested (below it, per-source scalar walks win on constants).
    BATCH_THRESHOLD = 24

    def __init__(self, destination) -> None:
        self.destination = destination

    def _walk_spec(
        self,
        state: Dict,
        failed_links: FrozenSet,
        failed_ases: FrozenSet,
    ) -> WalkSpec:
        """Walk semantics for one snapshot (closures over ``state``)."""
        raise NotImplementedError

    def _session_table(
        self,
        state: Dict,
        failed_links: FrozenSet,
        failed_ases: FrozenSet,
    ):
        """Incremental successor table for an analysis session, if any.

        Planes whose walk-state space projects onto flat integer tables
        (STAMP) return an object with ``broken``, ``update(key,
        value)`` and ``classify_many(asns, failed_ases)``;
        the default ``None`` keeps the closure engine.
        """
        del state, failed_links, failed_ases
        return None

    def boundary_touched_keys(
        self,
        state: Dict,
        old_links: FrozenSet,
        old_ases: FrozenSet,
        new_links: FrozenSet,
        new_ases: FrozenSet,
    ) -> Optional[Set]:
        """Keys whose walk behavior a failure-set delta can change.

        Soundness contract: for every source whose outcome differs
        between the old and the new failure sets over the *same*
        snapshot, at least one key of its recorded dependency set
        (under the old sets) must be returned — the episode engine
        re-walks exactly the dependents of these keys at a phase
        boundary instead of rescanning everything.  The default
        ``None`` means the plane cannot bound the delta and the engine
        rebuilds per segment (the tested fallback).
        """
        del state, old_links, old_ases, new_links, new_ases
        return None

    def _batch_classify(
        self,
        spec: WalkSpec,
        starts: List[Hashable],
        *,
        state: Dict,
        failed_links: FrozenSet,
        failed_ases: FrozenSet,
        need_reads: bool,
    ) -> BatchClassification:
        """Batch-classify walk states (overridable per plane).

        The generic implementation indexes the states reachable from
        ``starts`` through the spec's closures.  Planes whose successor
        function projects onto per-AS arrays (STAMP's two-color table)
        override this to build the full successor table vectorized —
        the returned classification must agree with the generic one on
        every requested start, including the per-state ``reads`` when
        ``need_reads`` is set.
        """
        del state, failed_links, failed_ases
        return classify_functional_graph_batch(
            starts,
            spec.successor,
            spec.delivered,
            reads_buf=spec.reads_buf if need_reads else None,
        )

    def classify(
        self,
        state: Dict,
        ases: Iterable,
        *,
        failed_links=frozenset(),
        failed_ases=frozenset(),
    ) -> Dict[Hashable, Outcome]:
        """Outcome per source AS under the given snapshot."""
        raise NotImplementedError

    def classify_batch(
        self,
        state: Dict,
        ases: Iterable,
        *,
        failed_links=frozenset(),
        failed_ases=frozenset(),
    ) -> Dict[Hashable, Outcome]:
        """Full-scan classification via the vectorized batch engine.

        Agrees with :meth:`classify` on every requested source but
        evaluates each distinct walk state exactly once; failed sources
        are skipped exactly as ``classify`` skips them.
        """
        spec = self._walk_spec(state, failed_links, failed_ases)
        outcomes: Dict[Hashable, Outcome] = {}
        walk_starts: List[Tuple[Hashable, Hashable]] = []
        for asn in ases:
            if asn in failed_ases:
                continue
            start_state, immediate, _ = spec.start(asn)
            if start_state is None:
                if immediate is not None:
                    outcomes[asn] = immediate
                continue
            walk_starts.append((asn, start_state))
        if walk_starts:
            batch = self._batch_classify(
                spec,
                [s for _, s in walk_starts],
                state=state,
                failed_links=failed_links,
                failed_ases=failed_ases,
                need_reads=False,
            )
            for asn, start_state in walk_starts:
                outcomes[asn] = batch.outcome_of(start_state)
        return outcomes

    def analysis_session(
        self,
        state: Dict,
        *,
        failed_links=frozenset(),
        failed_ases=frozenset(),
    ) -> AnalysisSession:
        """Build a reusable walk session for repeated scans."""
        return AnalysisSession(self, state, failed_links, failed_ases)

    def classify_many_recording(
        self,
        state: Dict,
        asns: Iterable,
        *,
        failed_links=frozenset(),
        failed_ases=frozenset(),
    ) -> Dict[Hashable, Tuple[Outcome, set]]:
        """Classify several sources, reporting their dependency keys.

        One-shot convenience over :class:`AnalysisSession`; see
        :meth:`AnalysisSession.classify_many` for the semantics.
        """
        return self.analysis_session(
            state, failed_links=failed_links, failed_ases=failed_ases
        ).classify_many(asns)

    def classify_one_recording(
        self,
        state: Dict,
        asn,
        *,
        failed_links=frozenset(),
        failed_ases=frozenset(),
    ) -> "tuple[Outcome, set]":
        """Classify one source and report its dependency keys.

        Returns ``(outcome, dependency keys)``.  Sources the plane
        refuses to classify (e.g. failed ASes) count as BLACKHOLE.
        """
        results = self.classify_many_recording(
            state, (asn,), failed_links=failed_links, failed_ases=failed_ases
        )
        return results[asn]
