"""Counting ASes that experience transient routing problems.

The paper's metric (section 6.2): after a routing event, an AS
"experiences transient problems" if at any instant during convergence
the data plane from it toward the destination loops or blackholes —
given that it had working connectivity before the event.  We replay the
forwarding-change trace and classify every eligible AS at every instant
at which any control-plane state changed, including the instant of the
event itself.

The scan is *incremental*, with two engines.  Planes whose walk-state
space projects onto flat integer successor tables (STAMP) hand the
session a table that is updated per fingerprint-changed key and
propagates outcome changes through a reverse-adjacency index — the
analyzer receives exactly the sources whose packet fate changed, with
no per-source dependency bookkeeping at all.  For the other planes, a
walk's outcome is a deterministic function of the state keys it reads
(reported by :class:`repro.forwarding.walk.AnalysisSession`), so after
one full vectorized scan only the ASes whose recorded dependencies
intersect an instant's changed keys are re-walked — and a changed key
only counts when its *fingerprint* (the projection walks can observe,
e.g. a route's next hop) actually changed.  On Internet-like
topologies a convergence instant typically touches one or two ASes'
forwarding state, turning the per-instant cost from O(all eligible
walks) into O(affected walks).
:func:`_reference_analyze_transient_problems` keeps the full-rescan
implementation for equivalence tests.

Timed episodes (:mod:`repro.experiments.scenarios`) generalize the
single-event analysis to a *sequence* of :class:`EpisodeSegment`
phases, each with its own failure state:
:func:`analyze_episode_transient_problems` produces one
:class:`TransientReport` per phase (disruption attributable to each
injected event) plus an episode-wide overall report whose problem
intervals span phase boundaries — an AS blackholed across an entire
fail window and healed by a later restore counts as *transiently*
affected, which no concatenation of independent per-phase analyses can
express.  :func:`_reference_analyze_episode_transient_problems` is its
brute-force equivalence twin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.forwarding.walk import WalkClassifier
from repro.sim.tracing import ForwardingTrace
from repro.types import ASN, Link, Outcome


@dataclass
class TransientReport:
    """Result of one scenario's transient-problem analysis."""

    #: ASes that were delivered pre-event (the eligible population).
    eligible: Set[ASN] = field(default_factory=set)
    #: Eligible ASes that looped or blackholed at some instant but
    #: regained connectivity by convergence (*transient* problems, the
    #: paper's metric).
    affected: Set[ASN] = field(default_factory=set)
    #: Eligible ASes left without connectivity even after convergence:
    #: the event partitioned them (policy-wise) from the destination.
    #: No protocol can help these, so they are not "transient".
    permanently_unreachable: Set[ASN] = field(default_factory=set)
    #: Eligible ASes that ever looped.
    looped: Set[ASN] = field(default_factory=set)
    #: Eligible ASes that ever blackholed.
    blackholed: Set[ASN] = field(default_factory=set)
    #: (time, cumulative #affected) series.
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: (time, #currently-problematic) series — the data-plane health.
    problem_timeline: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def affected_count(self) -> int:
        """Number of ASes with transient problems (the paper's y-axis)."""
        return len(self.affected)

    @property
    def disruption_duration(self) -> float:
        """Seconds between the event and the last observed problem.

        This is the data-plane view of convergence: how long any
        eligible AS kept losing packets.  Zero when the data plane never
        broke (or broke only at the event instant itself).
        """
        start = end = None
        for time, problems in self.problem_timeline:
            if problems > 0:
                if start is None:
                    start = time
                end = None
            elif start is not None and end is None:
                end = time
        if start is None:
            return 0.0
        if end is None:  # never observed recovering (permanent cases)
            end = self.problem_timeline[-1][0]
        return end - start


def analyze_transient_problems(
    trace: ForwardingTrace,
    initial_state: Dict,
    plane: WalkClassifier,
    ases: Iterable[ASN],
    *,
    failed_links: FrozenSet[Link] = frozenset(),
    failed_ases: FrozenSet[ASN] = frozenset(),
    pre_event_state: Optional[Dict] = None,
    include_detection_instant: bool = False,
    min_duration: float = 0.0,
    exclude_sources: FrozenSet[ASN] = frozenset(),
) -> TransientReport:
    """Replay a trace and count affected ASes.

    ``initial_state`` is the control-plane state at the instant the
    event fires (trace key space).  ``pre_event_state`` defaults to
    ``initial_state`` evaluated *without* failures and determines
    eligibility (ASes that could deliver before the event).

    The first classified snapshot is the event instant *after* the
    event-adjacent ASes have reacted (detection is atomic in the
    simulator).  This matches the paper's Theorem 5.1, which promises
    protection "once the ASes adjacent to where the routing event
    occurred have detected the event"; the un-detectable in-flight
    window penalizes every protocol identically and can be included
    with ``include_detection_instant=True``.

    ``min_duration`` (optional) filters micro-outages: an AS counts as
    affected only if some continuous problem interval lasts at least
    this many simulated seconds.  The default (0.0) counts a problem at
    any instant, which is the strictest reading of the paper's metric.

    ``exclude_sources`` removes additional ASes from eligibility
    without treating them as failed for walk classification — the
    episode analyzer uses it for routers that were down when a phase's
    events fired (they cannot be victims of the phase, but traffic may
    legitimately flow *through* them once restored).
    """
    report = TransientReport()
    all_ases = list(ases)

    baseline_state = pre_event_state if pre_event_state is not None else initial_state
    baseline = plane.classify_batch(baseline_state, all_ases)
    report.eligible = (
        {asn for asn in all_ases if baseline.get(asn) is Outcome.DELIVERED}
        - set(failed_ases)
        - set(exclude_sources)
    )
    if not report.eligible:
        return report

    eligible = report.eligible
    scan_state = _IncrementalScan(plane, eligible, report, min_duration)
    # One walk-spec closure set serves every scan; the replay mutates a
    # single state dict in place (rebind is called once per scanned
    # dict, including the detached detection-instant copy).
    scan_state.begin_segment(initial_state, failed_links, failed_ases)

    if include_detection_instant:
        event_time = trace.changes[0].time if trace.changes else 0.0
        scan_state.scan(dict(initial_state), event_time, None)

    # The replay copies ``initial_state`` internally before mutating,
    # and ``finalize`` only reads the final state, so no defensive copy
    # is needed for the empty-trace case.
    final_state = initial_state
    for time, state, changed in trace.replay_with_changes(initial_state):
        scan_state.scan(state, time, changed)
        final_state = state

    # Separate permanent (topology-induced) unreachability from
    # transient problems: an AS still failing in the fully converged
    # state was partitioned by the event, not disrupted by convergence.
    scan_state.finalize(final_state, failed_links, failed_ases)
    return report


# ----------------------------------------------------------------------
# Timed episodes: per-phase attribution + episode-wide intervals
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EpisodeSegment:
    """One episode phase as the analyzer consumes it.

    ``initial_state`` is the control-plane snapshot captured at the
    injection instant *before* the phase's events were applied (the
    synchronous reactions to those events are the first changes of
    ``trace``); ``failed_links``/``failed_ases`` are the failure sets
    active *after* the events, i.e. throughout the phase.
    ``failed_ases_at_start`` holds the ASes that were (still) failed
    when the phase's events fired — a router restored by this very
    phase was down at its start, so it cannot be a *victim* of the
    phase and is excluded from the phase report's eligibility (its
    frozen pre-restore state would otherwise classify as connectivity
    it never had).
    """

    trace: ForwardingTrace
    initial_state: Dict
    failed_links: FrozenSet[Link]
    failed_ases: FrozenSet[ASN]
    start_time: float
    failed_ases_at_start: FrozenSet[ASN] = frozenset()


@dataclass
class EpisodeTransientReport:
    """Per-phase and episode-wide transient analysis of one episode.

    ``phases[k]`` is a self-contained :class:`TransientReport` of phase
    ``k`` alone (eligibility re-evaluated at the phase's start — the
    attribution view).  ``overall`` spans the whole episode with one
    eligibility baseline (pre-episode connectivity) and problem
    intervals that survive phase boundaries; its
    ``disruption_duration`` therefore measures the episode's total
    data-plane outage window.
    """

    overall: TransientReport
    phases: List[TransientReport] = field(default_factory=list)


class _PhaseTracker:
    """Interval bookkeeping of one phase's attribution report.

    Mirrors the standalone analyzer's semantics exactly: the phase's
    first consumed scan seeds every eligible source as if classified
    from scratch (``old = None``), later scans fold in the engine's
    outcome changes (recomputing ``old`` against this tracker's own
    ledger — the engine's spans the whole episode), and
    :meth:`finalize` applies the standalone permanence and
    interval-closing rules.  Fed by :class:`_IncrementalScan` so the
    per-phase reports ride the single episode pass instead of a
    second, fully independent replay per segment.
    """

    __slots__ = (
        "eligible",
        "min_duration",
        "report",
        "outcome_of",
        "problem_since",
        "problems_now",
        "seeded",
        "last_time",
    )

    def __init__(self, eligible: Set[ASN], min_duration: float) -> None:
        self.eligible = eligible
        self.min_duration = min_duration
        self.report = TransientReport(eligible=eligible)
        self.outcome_of: Dict[ASN, Outcome] = {}
        self.problem_since: Dict[ASN, Tuple[float, Set[Outcome]]] = {}
        self.problems_now = 0
        self.seeded = False
        self.last_time = 0.0

    def _close_interval(self, asn: ASN, end: float) -> None:
        start, kinds = self.problem_since.pop(asn)
        if end - start < self.min_duration:
            return
        report = self.report
        report.affected.add(asn)
        if Outcome.LOOP in kinds:
            report.looped.add(asn)
        if Outcome.BLACKHOLE in kinds:
            report.blackholed.add(asn)

    def seed(self, outcomes_of: Dict[ASN, Outcome], time: float) -> None:
        """First consumed scan: every eligible source enters fresh."""
        self.seeded = True
        outcome_of = self.outcome_of
        problem_since = self.problem_since
        delivered = Outcome.DELIVERED
        outcomes_get = outcomes_of.get
        for asn in self.eligible:
            outcome = outcomes_get(asn, Outcome.BLACKHOLE)
            outcome_of[asn] = outcome
            if outcome is not delivered:
                self.problems_now += 1
                problem_since[asn] = (time, {outcome})
        self._append(time)

    def seed_from_table(self, table, time: float) -> None:
        """First consumed scan, reading fates straight off the table.

        Same semantics as :meth:`seed` over
        ``table.source_outcomes(self.eligible)`` without materializing
        the intermediate dict (one fused pass per phase).
        """
        self.seeded = True
        outcome_of = self.outcome_of
        problem_since = self.problem_since
        delivered = Outcome.DELIVERED
        blackhole = Outcome.BLACKHOLE
        pos_get = table.pos.get
        source_outcome = table.source_outcome
        for asn in self.eligible:
            i = pos_get(asn)
            outcome = blackhole if i is None else source_outcome[i]
            outcome_of[asn] = outcome
            if outcome is not delivered:
                self.problems_now += 1
                problem_since[asn] = (time, {outcome})
        self._append(time)

    def apply(self, changes, time: float) -> None:
        """Fold the engine's outcome transitions into this phase."""
        eligible = self.eligible
        outcome_of = self.outcome_of
        problem_since = self.problem_since
        delivered = Outcome.DELIVERED
        for asn, outcome, _old in changes:
            if asn not in eligible:
                continue
            old = outcome_of.get(asn)
            if outcome is old:
                continue
            outcome_of[asn] = outcome
            if outcome is delivered:
                self.problems_now -= 1
                if asn in problem_since:
                    self._close_interval(asn, time)
            else:
                if old is delivered:
                    self.problems_now += 1
                entry = problem_since.get(asn)
                if entry is None:
                    problem_since[asn] = (time, {outcome})
                else:
                    entry[1].add(outcome)
        self._append(time)

    def _append(self, time: float) -> None:
        report = self.report
        report.timeline.append((time, len(report.affected)))
        report.problem_timeline.append((time, self.problems_now))
        self.last_time = time

    def finalize(
        self,
        plane: WalkClassifier,
        final_state: Dict,
        failed_links: FrozenSet[Link],
        failed_ases: FrozenSet[ASN],
    ) -> TransientReport:
        """Resolve permanence and close still-open intervals."""
        report = self.report
        outcome_of = self.outcome_of
        if not self.seeded:
            final_outcomes = plane.classify(
                final_state,
                self.eligible,
                failed_links=failed_links,
                failed_ases=failed_ases,
            )
            outcome_of = {
                asn: final_outcomes.get(asn, Outcome.BLACKHOLE)
                for asn in self.eligible
            }
        for asn in self.eligible:
            if outcome_of.get(asn, Outcome.BLACKHOLE) is not Outcome.DELIVERED:
                report.permanently_unreachable.add(asn)
                self.problem_since.pop(asn, None)
        for asn in list(self.problem_since):
            self._close_interval(asn, self.last_time)
        report.affected -= report.permanently_unreachable
        report.looped -= report.permanently_unreachable
        report.blackholed -= report.permanently_unreachable
        return report


class _IncrementalScan:
    """The incremental scan engine shared by both analyzers.

    :func:`analyze_transient_problems` runs it over a single segment;
    the episode analyzer chains segments through it.  Interval
    bookkeeping (``outcome_of``/``problem_since``) persists across
    segments, and so — on the boundary fast path — do the walk
    session, fingerprint table, successor table, and dependency index:
    a phase boundary is applied as a *patch* (the snapshot diff plus
    the failure-set delta) that invalidates only the walks it touched
    (:meth:`_patch_segment`).  The rebuild path below remains the
    tested fallback for the first segment and for anything the patch
    cannot represent (a broken successor table, a plane without
    :meth:`WalkClassifier.boundary_touched_keys`).

    The engine classifies over ``universe`` (every source any consumer
    cares about) and feeds each scan's outcome *changes* to the
    episode-wide interval tracker (``eligible``, the report fields)
    and, when set, a per-phase :class:`_PhaseTracker` — which is how
    the episode analyzer derives its per-phase attribution reports
    from the same single pass.
    """

    _ABSENT = object()

    def __init__(
        self,
        plane: WalkClassifier,
        eligible: Set[ASN],
        report: TransientReport,
        min_duration: float,
    ) -> None:
        self.plane = plane
        self.eligible = eligible
        self.report = report
        self.min_duration = min_duration
        self.outcome_of: Dict[ASN, Outcome] = {}
        self.problem_since: Dict[ASN, Tuple[float, Set[Outcome]]] = {}
        self.problems_now = 0
        self.scanned_any = False
        self.last_time = 0.0
        #: Every source the engine classifies: the episode-wide
        #: eligible set plus each phase's (the single-event analyzer
        #: never grows it, keeping universe == eligible).
        self.universe: Set[ASN] = set(eligible)
        self.track_main = bool(eligible)
        #: Closure-engine boundary backlog: sources whose dependencies
        #: a boundary delta touched, consumed by the next scan.
        self.pending_sources: Set[ASN] = set()
        #: Failure-free successor table tracking the evolving snapshot
        #: (STAMP only): per-phase eligibility baselines come from it
        #: instead of a per-boundary full classification.  It is synced
        #: lazily — scans record fingerprint-changed keys in
        #: ``shadow_stale`` and the net diff is applied per boundary
        #: (``shadow_fp`` holds the fingerprints last fed to it, so
        #: keys that flapped back are skipped) — and its delivered
        #: source set is folded transition-by-transition.
        self.shadow = None
        self.shadow_stale: Set = set()
        self.shadow_fp: Dict[object, object] = {}
        self._shadow_allowed: Set[ASN] = set()
        self._shadow_delivered: Set[ASN] = set()
        #: Last snapshot handed to :meth:`scan` — at a boundary its
        #: content is what the fingerprint store reflects, so when the
        #: new segment's initial state equals it (the common case: a
        #: segment's final state *is* the next segment's initial
        #: state), the per-boundary fingerprint diff is skipped
        #: entirely.
        self._last_state: Optional[Dict] = None
        #: Active per-phase tracker (episode analyzer only).
        self.phase: Optional[_PhaseTracker] = None
        # Per-segment state (set by begin_segment).
        self.session = None
        self.key_fingerprint = None
        self.fingerprints: Dict[object, object] = {}
        self.deps_of: Dict[ASN, set] = {}
        self.dependents: Dict[object, Set[ASN]] = {}
        self.segment_scanned = False

    def begin_segment(
        self,
        initial_state: Dict,
        failed_links: FrozenSet[Link],
        failed_ases: FrozenSet[ASN],
    ) -> None:
        if (
            self.session is not None
            and self.segment_scanned
            and self._patch_segment(initial_state, failed_links, failed_ases)
        ):
            return
        # Rebuild fallback: a fresh session over the new snapshot.  The
        # shadow table and boundary backlog track the *patched* lineage
        # and are stale the moment a rebuild resets the fingerprints
        # without diffing them, so both are dropped (the episode
        # analyzer then derives phase eligibility by classification).
        self.shadow = None
        self.shadow_stale = set()
        self.shadow_fp = {}
        self._shadow_delivered = set()
        self.pending_sources = set()
        self.session = self.plane.analysis_session(
            initial_state,
            failed_links=failed_links,
            failed_ases=failed_ases,
        )
        spec = self.session.spec
        key_fingerprint = spec.key_fingerprint
        self.key_fingerprint = key_fingerprint
        # Fingerprint filter: walks observe only a projection of each
        # snapshot value (e.g. a route's next hop, never the full
        # path), so a value change whose fingerprint is unchanged
        # cannot change any outcome and is dropped before the
        # dependency lookup.
        if spec.bulk_fingerprint is not None:
            self.fingerprints = spec.bulk_fingerprint(initial_state)
        else:
            self.fingerprints = {
                key: key_fingerprint(key, value)
                for key, value in initial_state.items()
            }
        self.deps_of = {}
        self.dependents = {}
        self.segment_scanned = False

    def _patch_segment(
        self,
        initial_state: Dict,
        failed_links: FrozenSet[Link],
        failed_ases: FrozenSet[ASN],
    ) -> bool:
        """Carry the session across a phase boundary as a patch.

        Diffs the new segment's initial snapshot against the tracked
        fingerprints (normally empty or tiny: a segment's final state
        *is* the next segment's initial state) and applies the
        failure-set delta — to the successor table via
        :meth:`_SuccessorTable.apply_boundary`, or to the closure
        engine by queueing the dependents of every key the boundary
        can have touched (:meth:`WalkClassifier.boundary_touched_keys`
        plus the toggled sources themselves, whose recorded dependency
        sets are empty while they are failed).  Returns ``False`` when
        the patch cannot be applied soundly; the caller rebuilds.
        """
        session = self.session
        spec = session.spec
        absent = self._ABSENT
        prev_state = self._last_state
        if prev_state is not None and prev_state == initial_state:
            # Fast path: the previous segment's final replayed state is
            # content-identical to this segment's initial snapshot (the
            # collector snapshots right at the boundary, so this is the
            # norm) and the fingerprint store tracks the replayed state
            # by construction — nothing to diff, only the failure-set
            # delta to apply.
            changed: List = []
            removed: List = []
            new_fp = self.fingerprints
        else:
            key_fingerprint = spec.key_fingerprint
            if spec.bulk_fingerprint is not None:
                new_fp = spec.bulk_fingerprint(initial_state)
            else:
                new_fp = {
                    key: key_fingerprint(key, value)
                    for key, value in initial_state.items()
                }
            old_fp = self.fingerprints
            if new_fp == old_fp:
                changed = []
                removed = []
            else:
                old_fp_get = old_fp.get
                changed = [
                    key
                    for key, fingerprint in new_fp.items()
                    if old_fp_get(key, absent) != fingerprint
                ]
                removed = [key for key in old_fp if key not in new_fp]
        table = session.table
        if table is not None and not table.broken:
            initial_get = initial_state.get
            for key in changed:
                table.update(key, initial_get(key))
            for key in removed:
                table.update(key, None)
            if table.broken:
                return False
            table.apply_boundary(failed_links, failed_ases)
            if table.broken:
                return False
        else:
            touched_keys = self.plane.boundary_touched_keys(
                initial_state,
                session.failed_links,
                session.failed_ases,
                failed_links,
                failed_ases,
            )
            if touched_keys is None:
                return False
            pending = self.pending_sources
            dependents_get = self.dependents.get
            for key in touched_keys:
                sources = dependents_get(key)
                if sources:
                    pending |= sources
            for key in changed:
                sources = dependents_get(key)
                if sources:
                    pending |= sources
            for key in removed:
                sources = dependents_get(key)
                if sources:
                    pending |= sources
            delta_ases = session.failed_ases ^ failed_ases
            if delta_ases:
                # A failed source classifies with an *empty* dependency
                # set, so its restore is invisible to the dependent
                # index; queue the toggled sources themselves.
                pending |= delta_ases & self.universe
        shadow = self.shadow
        if shadow is not None:
            # Lazy shadow sync: flush the keys whose fingerprints moved
            # since the last boundary (scan records them instead of
            # updating the shadow per instant), skipping any that
            # flapped back to what the shadow last saw.
            stale = self.shadow_stale
            if changed:
                stale.update(changed)
            if removed:
                stale.update(removed)
            if stale:
                shadow_fp = self.shadow_fp
                shadow_fp_get = shadow_fp.get
                new_fp_get = new_fp.get
                initial_get = initial_state.get
                for key in stale:
                    fingerprint = new_fp_get(key, absent)
                    if shadow_fp_get(key, absent) == fingerprint:
                        continue
                    shadow.update(key, initial_get(key))
                    if fingerprint is absent:
                        shadow_fp.pop(key, None)
                    else:
                        shadow_fp[key] = fingerprint
                self.shadow_stale = set()
        self.fingerprints = new_fp
        session.reset_failures(initial_state, failed_links, failed_ases)
        return True

    def install_shadow(
        self, initial_state: Dict, all_ases: List[ASN]
    ) -> None:
        """Start the failure-free eligibility table (episode analyzer).

        Called after the first ``begin_segment``; planes without
        session tables return ``None`` and phase eligibility falls
        back to per-boundary classification.  The delivered-source set
        is computed once here and folded per boundary from the
        shadow's own outcome transitions.
        """
        table = self.plane._session_table(
            initial_state, frozenset(), frozenset()
        )
        if table is not None:
            table.activate_propagation()
            self.shadow_fp = dict(self.fingerprints)
            self.shadow_stale = set()
            self._shadow_allowed = set(all_ases)
            pos_get = table.pos.get
            source_outcome = table.source_outcome
            delivered = Outcome.DELIVERED
            self._shadow_delivered = {
                asn
                for asn in all_ases
                if (i := pos_get(asn)) is not None
                and source_outcome[i] is delivered
            }
        self.shadow = table

    def phase_eligibility(self, segment, all_ases: List[ASN]) -> Set[ASN]:
        """A phase's eligible set: failure-free delivery at its start.

        Identical semantics to the standalone analyzer's baseline
        (``classify_batch`` of the phase's initial state with no
        failure sets, minus the phase's failed and failed-at-start
        ASes); served from the shadow table when it is alive.
        """
        shadow = self.shadow
        if shadow is not None and not shadow.broken:
            transitions = shadow.collect_transitions()
            if not shadow.broken:
                base = self._shadow_delivered
                if transitions:
                    allowed = self._shadow_allowed
                    delivered = Outcome.DELIVERED
                    for asn, outcome in transitions:
                        if outcome is delivered:
                            if asn in allowed:
                                base.add(asn)
                        else:
                            base.discard(asn)
                return (
                    base
                    - set(segment.failed_ases)
                    - set(segment.failed_ases_at_start)
                )
        self.shadow = None
        self.shadow_stale = set()
        self.shadow_fp = {}
        self._shadow_delivered = set()
        baseline = self.plane.classify_batch(segment.initial_state, all_ases)
        return (
            {
                asn
                for asn in all_ases
                if baseline.get(asn) is Outcome.DELIVERED
            }
            - set(segment.failed_ases)
            - set(segment.failed_ases_at_start)
        )

    def add_universe(self, sources: Set[ASN]) -> None:
        """Grow the classified universe (new phase-eligible sources)."""
        new = sources - self.universe
        if not new:
            return
        self.universe |= new
        session = self.session
        if (
            session is not None
            and session.table is None
            and self.segment_scanned
        ):
            # Closure engine mid-episode: the newcomers have no ledger
            # entry or dependency record yet; classify them at the next
            # scan.  (Table mode and full first scans cover everyone.)
            self.pending_sources |= new

    def _close_interval(self, asn: ASN, end: float) -> None:
        start, kinds = self.problem_since.pop(asn)
        if end - start < self.min_duration:
            return
        report = self.report
        report.affected.add(asn)
        if Outcome.LOOP in kinds:
            report.looped.add(asn)
        if Outcome.BLACKHOLE in kinds:
            report.blackholed.add(asn)

    def scan(
        self,
        state: Dict,
        time: float,
        changed_keys: Optional[set],
        phase_boundary: bool = False,
    ) -> None:
        key_fingerprint = self.key_fingerprint
        fingerprints = self.fingerprints
        fingerprints_get = fingerprints.get
        absent = self._ABSENT
        session = self.session
        # The shadow is synced lazily: scans only record which keys
        # moved; values are read from the boundary snapshot when the
        # next ``_patch_segment`` flushes the batch.
        stale_add = (
            self.shadow_stale.add if self.shadow is not None else None
        )
        outcome_of = self.outcome_of
        changes: Sequence[Tuple[ASN, Outcome, Optional[Outcome]]]
        if not self.segment_scanned:
            # First scan of the segment: fold the instant's changes into
            # the fingerprints, then classify every universe source —
            # building the plane's successor table (when it has one)
            # from the now-current snapshot, with incremental outcome
            # propagation serving every later instant.
            for key in changed_keys or ():
                value = state.get(key)
                fingerprint = key_fingerprint(key, value)
                if fingerprints_get(key, absent) != fingerprint:
                    fingerprints[key] = fingerprint
                    if stale_add is not None:
                        stale_add(key)
            self.segment_scanned = True
            self.pending_sources = set()
            session.rebind(state)
            table = session.ensure_table()
            if table is not None:
                changes = self._fold_pairs(
                    table.source_outcomes(self.universe).items()
                )
            else:
                changes = session.classify_into(
                    sorted(self.universe),
                    outcome_of,
                    self.deps_of,
                    self.dependents,
                )
        else:
            table = session.table
            if table is not None:
                # Propagation mode: feed the fingerprint-changed keys
                # straight into the table; it knows exactly which
                # source fates changed, so no dependency index exists.
                for key in changed_keys or ():
                    value = state.get(key)
                    fingerprint = key_fingerprint(key, value)
                    if fingerprints_get(key, absent) == fingerprint:
                        continue
                    fingerprints[key] = fingerprint
                    table.update(key, value)
                    if stale_add is not None:
                        stale_add(key)
                if table.broken:
                    # A snapshot the table cannot represent appeared:
                    # fall back to the closure engine for good, seeding
                    # its dependency index with one full scan.
                    self.session.table = None
                    self.pending_sources = set()
                    session.rebind(state)
                    changes = session.classify_into(
                        sorted(self.universe),
                        outcome_of,
                        self.deps_of,
                        self.dependents,
                    )
                else:
                    changes = self._fold_pairs(table.collect_transitions())
            else:
                dependents_get = self.dependents.get
                pending = self.pending_sources
                # The boundary backlog is engine-owned, so it can be
                # mutated in place and is reset below once consumed.
                touched: Optional[Set[ASN]] = pending if pending else None
                touched_owned = bool(pending)
                for key in changed_keys or ():
                    value = state.get(key)
                    fingerprint = key_fingerprint(key, value)
                    if fingerprints_get(key, absent) == fingerprint:
                        continue
                    fingerprints[key] = fingerprint
                    if stale_add is not None:
                        stale_add(key)
                    sources = dependents_get(key)
                    if sources:
                        # Borrow the live index set while only one key
                        # contributes (list() below materializes before
                        # the index can change).  Classification order
                        # is immaterial: every source is classified
                        # independently against the same snapshot and
                        # the index merges commute, so no sort is
                        # needed.
                        if touched is None:
                            touched = sources
                        elif touched_owned:
                            touched |= sources
                        else:
                            touched = touched | sources
                            touched_owned = True
                if pending:
                    self.pending_sources = set()
                if touched:
                    session.rebind(state)
                    changes = session.classify_into(
                        list(touched),
                        outcome_of,
                        self.deps_of,
                        self.dependents,
                    )
                else:
                    changes = ()
        if self.track_main:
            self._apply_changes(changes, time)
            report = self.report
            report.timeline.append((time, len(report.affected)))
            report.problem_timeline.append((time, self.problems_now))
        phase = self.phase
        if phase is not None and not phase_boundary:
            # Phase attribution rides the same pass: trace instants
            # only (boundary scans are an episode-level concept the
            # standalone per-phase semantics never see).
            if phase.seeded:
                phase.apply(changes, time)
            elif self.session.table is not None:
                phase.seed_from_table(self.session.table, time)
            else:
                phase.seed(outcome_of, time)
        self.scanned_any = True
        self.last_time = time
        self._last_state = state

    def _fold_pairs(
        self, pairs
    ) -> List[Tuple[ASN, Outcome, Optional[Outcome]]]:
        """Ledger-fold ``(source, new outcome)`` pairs into transitions."""
        universe = self.universe
        outcome_of = self.outcome_of
        changes: List[Tuple[ASN, Outcome, Optional[Outcome]]] = []
        for asn, outcome in pairs:
            if asn not in universe:
                continue
            old = outcome_of.get(asn)
            if outcome is old:
                continue
            outcome_of[asn] = outcome
            changes.append((asn, outcome, old))
        return changes

    def _apply_changes(self, changes, time: float) -> None:
        """Fold outcome transitions into the episode-wide intervals."""
        eligible = self.eligible
        problem_since = self.problem_since
        delivered = Outcome.DELIVERED
        for asn, outcome, old in changes:
            if asn not in eligible:
                continue
            if outcome is delivered:
                if old is not None:
                    self.problems_now -= 1
                    if asn in problem_since:
                        self._close_interval(asn, time)
            else:
                if old is None or old is delivered:
                    self.problems_now += 1
                entry = problem_since.get(asn)
                if entry is None:
                    problem_since[asn] = (time, {outcome})
                else:
                    entry[1].add(outcome)

    def finalize(
        self,
        final_state: Dict,
        failed_links: FrozenSet[Link],
        failed_ases: FrozenSet[ASN],
    ) -> None:
        """Resolve permanence and close the still-open intervals.

        An AS still failing in the fully converged state was
        partitioned, not disrupted by convergence; when no instant was
        ever scanned (empty trace), the final (= initial) state is
        classified once, without touching the timelines.
        """
        report = self.report
        outcome_of = self.outcome_of
        if not self.scanned_any:
            final_outcomes = self.plane.classify(
                final_state,
                self.eligible,
                failed_links=failed_links,
                failed_ases=failed_ases,
            )
            outcome_of = {
                asn: final_outcomes.get(asn, Outcome.BLACKHOLE)
                for asn in self.eligible
            }
        for asn in self.eligible:
            if outcome_of.get(asn, Outcome.BLACKHOLE) is not Outcome.DELIVERED:
                report.permanently_unreachable.add(asn)
                self.problem_since.pop(asn, None)
        # Intervals still open recovered by the final classification
        # above, so they end at the last scanned instant.
        for asn in list(self.problem_since):
            self._close_interval(asn, self.last_time)
        report.affected -= report.permanently_unreachable
        report.looped -= report.permanently_unreachable
        report.blackholed -= report.permanently_unreachable


def _episode_eligibility(
    plane: WalkClassifier,
    segments: Sequence[EpisodeSegment],
    all_ases: List[ASN],
) -> Set[ASN]:
    """Pre-episode connectivity baseline minus every ever-failed AS.

    Mirrors the single-event analyzer: the baseline classification
    ignores failure sets (pre-event connectivity — the post-initial-
    convergence control plane has already routed around any pre-failed
    links), and ASes that are themselves failed at any point of the
    episode cannot "experience" transient problems.
    """
    baseline = plane.classify_batch(segments[0].initial_state, all_ases)
    ever_failed: Set[ASN] = set()
    for segment in segments:
        ever_failed |= segment.failed_ases
        ever_failed |= segment.failed_ases_at_start
    return {
        asn for asn in all_ases if baseline.get(asn) is Outcome.DELIVERED
    } - ever_failed


def analyze_episode_transient_problems(
    segments: Sequence[EpisodeSegment],
    plane: WalkClassifier,
    ases: Iterable[ASN],
    *,
    min_duration: float = 0.0,
) -> EpisodeTransientReport:
    """Analyze one multi-phase episode run.

    One replay pass serves both views.  The overall report runs the
    incremental engine over all segments with shared interval state;
    at each phase boundary after the first, the engine's session is
    *patched* across the boundary (:meth:`_IncrementalScan
    ._patch_segment`) instead of rebuilt, and a rescan is forced at
    the injection instant — folding in any same-instant synchronous
    reactions first, and scanning the unchanged state when there are
    none (a link restore flips walk outcomes without touching a single
    trace key).  The per-phase attribution reports (identical to
    running :func:`analyze_transient_problems` on each segment in
    isolation — the equivalence tests pin this) are derived from the
    same pass by a per-segment :class:`_PhaseTracker` fed the engine's
    outcome changes, with phase eligibility served by a shadow
    failure-free successor table where the plane has one.  For a
    single-segment episode the overall report is identical to the
    single-event analyzer's.
    """
    segments = list(segments)
    if not segments:
        return EpisodeTransientReport(overall=TransientReport())
    all_ases = list(ases)
    first = segments[0]

    # One failure-free baseline classification serves both the overall
    # eligibility (minus every ever-failed AS) and phase 0's (minus
    # only phase 0's failed sets) — they share the same snapshot.
    baseline = plane.classify_batch(first.initial_state, all_ases)
    delivered_at_start = {
        asn for asn in all_ases if baseline.get(asn) is Outcome.DELIVERED
    }
    ever_failed: Set[ASN] = set()
    for segment in segments:
        ever_failed |= segment.failed_ases
        ever_failed |= segment.failed_ases_at_start
    report = TransientReport()
    report.eligible = delivered_at_start - ever_failed

    engine = _IncrementalScan(plane, report.eligible, report, min_duration)
    phases: List[TransientReport] = []
    final_state: Dict = first.initial_state
    for index, segment in enumerate(segments):
        engine.begin_segment(
            segment.initial_state, segment.failed_links, segment.failed_ases
        )
        if index == 0:
            engine.install_shadow(segment.initial_state, all_ases)
            phase_eligible = (
                delivered_at_start
                - set(segment.failed_ases)
                - set(segment.failed_ases_at_start)
            )
        else:
            # A router that was down when this phase fired cannot be a
            # victim of the phase (its frozen pre-restore snapshot is
            # not real connectivity) — phase_eligibility subtracts
            # failed_ases_at_start alongside failed_ases.
            phase_eligible = engine.phase_eligibility(segment, all_ases)
        engine.add_universe(phase_eligible)
        tracker = (
            _PhaseTracker(phase_eligible, min_duration)
            if phase_eligible
            else None
        )
        engine.phase = tracker
        changes = segment.trace.changes
        if index > 0 and (not changes or changes[0].time > segment.start_time):
            # Boundary scan: no synchronous reaction shares the
            # injection instant, so classify the unchanged state under
            # the new failure sets.
            engine.scan(
                segment.initial_state,
                segment.start_time,
                None,
                phase_boundary=True,
            )
        final_state = segment.initial_state
        for time, state, changed in segment.trace.replay_with_changes(
            segment.initial_state
        ):
            engine.scan(state, time, changed)
            final_state = state
        engine.phase = None
        phases.append(
            tracker.finalize(
                plane,
                final_state,
                segment.failed_links,
                segment.failed_ases,
            )
            if tracker is not None
            else TransientReport()
        )

    if report.eligible:
        last = segments[-1]
        engine.finalize(final_state, last.failed_links, last.failed_ases)
    return EpisodeTransientReport(overall=report, phases=phases)


def _reference_analyze_episode_transient_problems(
    segments: Sequence[EpisodeSegment],
    plane: WalkClassifier,
    ases: Iterable[ASN],
    *,
    min_duration: float = 0.0,
) -> EpisodeTransientReport:
    """Full-rescan episode analyzer (the brute-force equivalence twin).

    Classifies every eligible AS at every instant of every segment via
    :meth:`WalkClassifier.classify`, with the identical boundary-scan
    and interval-bridging semantics as the incremental implementation.
    """
    segments = list(segments)
    if not segments:
        return EpisodeTransientReport(overall=TransientReport())
    all_ases = list(ases)
    phases = [
        _reference_analyze_transient_problems(
            segment.trace,
            segment.initial_state,
            plane,
            all_ases,
            failed_links=segment.failed_links,
            failed_ases=segment.failed_ases,
            min_duration=min_duration,
            exclude_sources=segment.failed_ases_at_start,
        )
        for segment in segments
    ]
    report = TransientReport()
    report.eligible = _episode_eligibility(plane, segments, all_ases)
    if not report.eligible:
        return EpisodeTransientReport(overall=report, phases=phases)
    eligible = report.eligible

    problem_since: Dict[ASN, Tuple[float, Set[Outcome]]] = {}
    outcome_of: Dict[ASN, Outcome] = {}
    last_time = 0.0
    scanned_any = False

    def close_interval(asn: ASN, end: float) -> None:
        start, kinds = problem_since.pop(asn)
        if end - start < min_duration:
            return
        report.affected.add(asn)
        if Outcome.LOOP in kinds:
            report.looped.add(asn)
        if Outcome.BLACKHOLE in kinds:
            report.blackholed.add(asn)

    def scan(segment: EpisodeSegment, state: Dict, time: float) -> None:
        nonlocal last_time, scanned_any
        outcomes = plane.classify(
            state,
            eligible,
            failed_links=segment.failed_links,
            failed_ases=segment.failed_ases,
        )
        problems_now = 0
        for asn in eligible:
            outcome = outcomes.get(asn, Outcome.BLACKHOLE)
            outcome_of[asn] = outcome
            if outcome is Outcome.DELIVERED:
                if asn in problem_since:
                    close_interval(asn, time)
                continue
            problems_now += 1
            if asn not in problem_since:
                problem_since[asn] = (time, set())
            problem_since[asn][1].add(outcome)
        report.timeline.append((time, len(report.affected)))
        report.problem_timeline.append((time, problems_now))
        last_time = time
        scanned_any = True

    final_state: Dict = dict(segments[0].initial_state)
    for index, segment in enumerate(segments):
        changes = segment.trace.changes
        if index > 0 and (not changes or changes[0].time > segment.start_time):
            scan(segment, dict(segment.initial_state), segment.start_time)
        final_state = dict(segment.initial_state)
        for time, state in segment.trace.replay(segment.initial_state):
            scan(segment, state, time)
            final_state = state

    last = segments[-1]
    if not scanned_any:
        final_outcomes = plane.classify(
            final_state,
            eligible,
            failed_links=last.failed_links,
            failed_ases=last.failed_ases,
        )
        outcome_of.update(
            (asn, final_outcomes.get(asn, Outcome.BLACKHOLE)) for asn in eligible
        )
    for asn in eligible:
        if outcome_of.get(asn, Outcome.BLACKHOLE) is not Outcome.DELIVERED:
            report.permanently_unreachable.add(asn)
            problem_since.pop(asn, None)
    for asn in list(problem_since):
        close_interval(asn, last_time)
    report.affected -= report.permanently_unreachable
    report.looped -= report.permanently_unreachable
    report.blackholed -= report.permanently_unreachable
    return EpisodeTransientReport(overall=report, phases=phases)


def _reference_analyze_transient_problems(
    trace: ForwardingTrace,
    initial_state: Dict,
    plane: WalkClassifier,
    ases: Iterable[ASN],
    *,
    failed_links: FrozenSet[Link] = frozenset(),
    failed_ases: FrozenSet[ASN] = frozenset(),
    pre_event_state: Optional[Dict] = None,
    include_detection_instant: bool = False,
    min_duration: float = 0.0,
    exclude_sources: FrozenSet[ASN] = frozenset(),
) -> TransientReport:
    """Full-rescan analyzer (pre-optimization behavior).

    Re-classifies every eligible AS at every instant.  Kept as the
    brute-force reference the incremental implementation is pinned to
    in the equivalence tests.
    """
    report = TransientReport()
    all_ases = list(ases)

    baseline_state = pre_event_state if pre_event_state is not None else initial_state
    baseline = plane.classify(baseline_state, all_ases)
    report.eligible = (
        {asn for asn in all_ases if baseline.get(asn) is Outcome.DELIVERED}
        - set(failed_ases)
        - set(exclude_sources)
    )
    if not report.eligible:
        return report

    eligible = report.eligible

    problem_since: Dict[ASN, Tuple[float, Set[Outcome]]] = {}
    last_time = 0.0

    def close_interval(asn: ASN, end: float) -> None:
        start, kinds = problem_since.pop(asn)
        if end - start < min_duration:
            return
        report.affected.add(asn)
        if Outcome.LOOP in kinds:
            report.looped.add(asn)
        if Outcome.BLACKHOLE in kinds:
            report.blackholed.add(asn)

    def scan(state: Dict, time: float) -> None:
        outcomes = plane.classify(
            state, eligible, failed_links=failed_links, failed_ases=failed_ases
        )
        problems_now = 0
        for asn in eligible:
            outcome = outcomes.get(asn, Outcome.BLACKHOLE)
            if outcome is Outcome.DELIVERED:
                if asn in problem_since:
                    close_interval(asn, time)
                continue
            problems_now += 1
            if asn not in problem_since:
                problem_since[asn] = (time, set())
            problem_since[asn][1].add(outcome)
        report.timeline.append((time, len(report.affected)))
        report.problem_timeline.append((time, problems_now))

    if include_detection_instant:
        event_time = trace.changes[0].time if trace.changes else 0.0
        scan(dict(initial_state), event_time)

    final_state = dict(initial_state)
    for time, state in trace.replay(initial_state):
        scan(state, time)
        final_state = state
        last_time = time

    final_outcomes = plane.classify(
        final_state, eligible, failed_links=failed_links, failed_ases=failed_ases
    )
    for asn in eligible:
        if final_outcomes.get(asn, Outcome.BLACKHOLE) is not Outcome.DELIVERED:
            report.permanently_unreachable.add(asn)
            problem_since.pop(asn, None)
    for asn in list(problem_since):
        close_interval(asn, last_time)
    report.affected -= report.permanently_unreachable
    report.looped -= report.permanently_unreachable
    report.blackholed -= report.permanently_unreachable
    return report
