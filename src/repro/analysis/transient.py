"""Counting ASes that experience transient routing problems.

The paper's metric (section 6.2): after a routing event, an AS
"experiences transient problems" if at any instant during convergence
the data plane from it toward the destination loops or blackholes —
given that it had working connectivity before the event.  We replay the
forwarding-change trace and classify every eligible AS at every instant
at which any control-plane state changed, including the instant of the
event itself.

The scan is *incremental*: a walk's outcome is a deterministic function
of the state keys it reads (reported by
:class:`repro.forwarding.walk.AnalysisSession`), so after one full
vectorized scan only the ASes whose recorded dependencies intersect an
instant's changed keys are re-walked — and a changed key only counts
when its *fingerprint* (the projection walks can observe, e.g. a
route's next hop) actually changed.  On Internet-like topologies a
convergence instant typically touches one or two ASes' forwarding
state, turning the per-instant cost from O(all eligible walks) into
O(affected walks).  :func:`_reference_analyze_transient_problems` keeps
the full-rescan implementation for equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.forwarding.walk import WalkClassifier
from repro.sim.tracing import ForwardingTrace
from repro.types import ASN, Link, Outcome


@dataclass
class TransientReport:
    """Result of one scenario's transient-problem analysis."""

    #: ASes that were delivered pre-event (the eligible population).
    eligible: Set[ASN] = field(default_factory=set)
    #: Eligible ASes that looped or blackholed at some instant but
    #: regained connectivity by convergence (*transient* problems, the
    #: paper's metric).
    affected: Set[ASN] = field(default_factory=set)
    #: Eligible ASes left without connectivity even after convergence:
    #: the event partitioned them (policy-wise) from the destination.
    #: No protocol can help these, so they are not "transient".
    permanently_unreachable: Set[ASN] = field(default_factory=set)
    #: Eligible ASes that ever looped.
    looped: Set[ASN] = field(default_factory=set)
    #: Eligible ASes that ever blackholed.
    blackholed: Set[ASN] = field(default_factory=set)
    #: (time, cumulative #affected) series.
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: (time, #currently-problematic) series — the data-plane health.
    problem_timeline: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def affected_count(self) -> int:
        """Number of ASes with transient problems (the paper's y-axis)."""
        return len(self.affected)

    @property
    def disruption_duration(self) -> float:
        """Seconds between the event and the last observed problem.

        This is the data-plane view of convergence: how long any
        eligible AS kept losing packets.  Zero when the data plane never
        broke (or broke only at the event instant itself).
        """
        start = end = None
        for time, problems in self.problem_timeline:
            if problems > 0:
                if start is None:
                    start = time
                end = None
            elif start is not None and end is None:
                end = time
        if start is None:
            return 0.0
        if end is None:  # never observed recovering (permanent cases)
            end = self.problem_timeline[-1][0]
        return end - start


def analyze_transient_problems(
    trace: ForwardingTrace,
    initial_state: Dict,
    plane: WalkClassifier,
    ases: Iterable[ASN],
    *,
    failed_links: FrozenSet[Link] = frozenset(),
    failed_ases: FrozenSet[ASN] = frozenset(),
    pre_event_state: Optional[Dict] = None,
    include_detection_instant: bool = False,
    min_duration: float = 0.0,
) -> TransientReport:
    """Replay a trace and count affected ASes.

    ``initial_state`` is the control-plane state at the instant the
    event fires (trace key space).  ``pre_event_state`` defaults to
    ``initial_state`` evaluated *without* failures and determines
    eligibility (ASes that could deliver before the event).

    The first classified snapshot is the event instant *after* the
    event-adjacent ASes have reacted (detection is atomic in the
    simulator).  This matches the paper's Theorem 5.1, which promises
    protection "once the ASes adjacent to where the routing event
    occurred have detected the event"; the un-detectable in-flight
    window penalizes every protocol identically and can be included
    with ``include_detection_instant=True``.

    ``min_duration`` (optional) filters micro-outages: an AS counts as
    affected only if some continuous problem interval lasts at least
    this many simulated seconds.  The default (0.0) counts a problem at
    any instant, which is the strictest reading of the paper's metric.
    """
    report = TransientReport()
    all_ases = list(ases)

    baseline_state = pre_event_state if pre_event_state is not None else initial_state
    baseline = plane.classify_batch(baseline_state, all_ases)
    report.eligible = {
        asn for asn in all_ases if baseline.get(asn) is Outcome.DELIVERED
    } - set(failed_ases)
    if not report.eligible:
        return report

    eligible = report.eligible

    # Open problem intervals: asn -> (start time, kinds seen so far).
    problem_since: Dict[ASN, Tuple[float, Set[Outcome]]] = {}
    last_time = 0.0

    def close_interval(asn: ASN, end: float) -> None:
        start, kinds = problem_since.pop(asn)
        if end - start < min_duration:
            return
        report.affected.add(asn)
        if Outcome.LOOP in kinds:
            report.looped.add(asn)
        if Outcome.BLACKHOLE in kinds:
            report.blackholed.add(asn)

    # Incremental classification state: the current outcome of each
    # eligible AS, which state keys its last walk read, and the reverse
    # index from state key to dependent sources.
    outcome_of: Dict[ASN, Outcome] = {}
    deps_of: Dict[ASN, set] = {}
    dependents: Dict[object, Set[ASN]] = {}
    problems_now = 0
    scanned_once = False
    # One walk-spec closure set serves every scan; the replay mutates a
    # single state dict in place (rebind is called once per scanned
    # dict, including the detached detection-instant copy).
    session = plane.analysis_session(
        initial_state, failed_links=failed_links, failed_ases=failed_ases
    )

    def apply_classification(asn: ASN, outcome: Outcome, reads: set, time: float) -> None:
        nonlocal problems_now
        old_reads = deps_of.get(asn)
        if old_reads is None:
            for key in reads:
                sources = dependents.get(key)
                if sources is None:
                    sources = dependents[key] = set()
                sources.add(asn)
            deps_of[asn] = reads
        elif reads is not old_reads and reads != old_reads:
            for key in old_reads - reads:
                dependents[key].discard(asn)
            for key in reads - old_reads:
                sources = dependents.get(key)
                if sources is None:
                    sources = dependents[key] = set()
                sources.add(asn)
            deps_of[asn] = reads

        old = outcome_of.get(asn)
        outcome_of[asn] = outcome
        if outcome is Outcome.DELIVERED:
            if old is not None and old is not Outcome.DELIVERED:
                problems_now -= 1
                if asn in problem_since:
                    close_interval(asn, time)
            return
        if old is None or old is Outcome.DELIVERED:
            problems_now += 1
        if asn not in problem_since:
            problem_since[asn] = (time, set())
        problem_since[asn][1].add(outcome)

    # Fingerprint filter: walks observe only a projection of each
    # snapshot value (e.g. a route's next hop, never the full path), so
    # a value change whose fingerprint is unchanged cannot change any
    # outcome and is dropped before the dependency lookup.  During BGP
    # path exploration most updates swap the tail of a path while the
    # next hop stays put, making this a major scan filter.
    key_fingerprint = session.spec.key_fingerprint
    fingerprints: Dict[object, object] = {
        key: key_fingerprint(key, value) for key, value in initial_state.items()
    }
    _ABSENT = object()

    def scan(state: Dict, time: float, changed_keys: Optional[set]) -> None:
        nonlocal scanned_once
        if not scanned_once:
            # Full scan: every change is absorbed, but the fingerprint
            # table must still advance past this instant's values.
            for key in changed_keys or ():
                fingerprints[key] = key_fingerprint(key, state.get(key))
            targets: Iterable[ASN] = sorted(eligible)
            scanned_once = True
        else:
            touched: Set[ASN] = set()
            for key in changed_keys or ():
                fingerprint = key_fingerprint(key, state.get(key))
                if fingerprints.get(key, _ABSENT) == fingerprint:
                    continue
                fingerprints[key] = fingerprint
                sources = dependents.get(key)
                if sources:
                    touched |= sources
            targets = sorted(touched)
        if targets:
            session.rebind(state)
            classified = session.classify_many(targets)
            for asn in targets:
                outcome, reads = classified[asn]
                # Unchanged outcome with the identical dependency-set
                # object needs no bookkeeping at all (any open problem
                # interval already has this outcome kind recorded).
                if outcome is outcome_of.get(asn) and reads is deps_of.get(asn):
                    continue
                apply_classification(asn, outcome, reads, time)
        report.timeline.append((time, len(report.affected)))
        report.problem_timeline.append((time, problems_now))

    if include_detection_instant:
        event_time = trace.changes[0].time if trace.changes else 0.0
        scan(dict(initial_state), event_time, None)

    final_state = dict(initial_state)
    for time, state, changed in trace.replay_with_changes(initial_state):
        scan(state, time, changed)
        final_state = state
        last_time = time

    # Separate permanent (topology-induced) unreachability from
    # transient problems: an AS still failing in the fully converged
    # state was partitioned by the event, not disrupted by convergence.
    if not scanned_once:
        # No instant was ever scanned (empty trace): classify the final
        # (= initial) state once, without touching the timelines.
        final_outcomes = plane.classify(
            final_state, eligible, failed_links=failed_links, failed_ases=failed_ases
        )
        outcome_of = {
            asn: final_outcomes.get(asn, Outcome.BLACKHOLE) for asn in eligible
        }
    for asn in eligible:
        if outcome_of.get(asn, Outcome.BLACKHOLE) is not Outcome.DELIVERED:
            report.permanently_unreachable.add(asn)
            problem_since.pop(asn, None)
    # Close intervals still open at convergence.  They recovered by the
    # final snapshot's classification above, so end them there.
    for asn in list(problem_since):
        close_interval(asn, last_time)
    report.affected -= report.permanently_unreachable
    report.looped -= report.permanently_unreachable
    report.blackholed -= report.permanently_unreachable
    return report


def _reference_analyze_transient_problems(
    trace: ForwardingTrace,
    initial_state: Dict,
    plane: WalkClassifier,
    ases: Iterable[ASN],
    *,
    failed_links: FrozenSet[Link] = frozenset(),
    failed_ases: FrozenSet[ASN] = frozenset(),
    pre_event_state: Optional[Dict] = None,
    include_detection_instant: bool = False,
    min_duration: float = 0.0,
) -> TransientReport:
    """Full-rescan analyzer (pre-optimization behavior).

    Re-classifies every eligible AS at every instant.  Kept as the
    brute-force reference the incremental implementation is pinned to
    in the equivalence tests.
    """
    report = TransientReport()
    all_ases = list(ases)

    baseline_state = pre_event_state if pre_event_state is not None else initial_state
    baseline = plane.classify(baseline_state, all_ases)
    report.eligible = {
        asn for asn in all_ases if baseline.get(asn) is Outcome.DELIVERED
    } - set(failed_ases)
    if not report.eligible:
        return report

    eligible = report.eligible

    problem_since: Dict[ASN, Tuple[float, Set[Outcome]]] = {}
    last_time = 0.0

    def close_interval(asn: ASN, end: float) -> None:
        start, kinds = problem_since.pop(asn)
        if end - start < min_duration:
            return
        report.affected.add(asn)
        if Outcome.LOOP in kinds:
            report.looped.add(asn)
        if Outcome.BLACKHOLE in kinds:
            report.blackholed.add(asn)

    def scan(state: Dict, time: float) -> None:
        outcomes = plane.classify(
            state, eligible, failed_links=failed_links, failed_ases=failed_ases
        )
        problems_now = 0
        for asn in eligible:
            outcome = outcomes.get(asn, Outcome.BLACKHOLE)
            if outcome is Outcome.DELIVERED:
                if asn in problem_since:
                    close_interval(asn, time)
                continue
            problems_now += 1
            if asn not in problem_since:
                problem_since[asn] = (time, set())
            problem_since[asn][1].add(outcome)
        report.timeline.append((time, len(report.affected)))
        report.problem_timeline.append((time, problems_now))

    if include_detection_instant:
        event_time = trace.changes[0].time if trace.changes else 0.0
        scan(dict(initial_state), event_time)

    final_state = dict(initial_state)
    for time, state in trace.replay(initial_state):
        scan(state, time)
        final_state = state
        last_time = time

    final_outcomes = plane.classify(
        final_state, eligible, failed_links=failed_links, failed_ases=failed_ases
    )
    for asn in eligible:
        if final_outcomes.get(asn, Outcome.BLACKHOLE) is not Outcome.DELIVERED:
            report.permanently_unreachable.add(asn)
            problem_since.pop(asn, None)
    for asn in list(problem_since):
        close_interval(asn, last_time)
    report.affected -= report.permanently_unreachable
    report.looped -= report.permanently_unreachable
    report.blackholed -= report.permanently_unreachable
    return report
