"""Partial-deployment analysis (paper section 6.3).

The paper reports that deploying STAMP only at tier-1 ASes still gives
about 75% of all ASes two downhill node-disjoint paths to any
destination.  The workshop paper does not spell out the interop model;
we use the natural one (documented in DESIGN.md):

* legacy ASes run a single BGP process and announce their prefixes to
  *all* providers normally, so a destination's reachability climbs to
  the tier-1 core over every uphill chain;
* each deployed tier-1 assigns each customer session to its red or
  blue process uniformly at random (the only coordination a tier-1 can
  apply without downstream support);
* an AS then has two downhill node-disjoint paths to destination *d*
  exactly when two node-disjoint uphill chains of *d* enter the core
  over sessions of *different* colors (the fully-peered core connects
  any source's uphill path to both entry points).

The reported number is the probability of that event over random
session colorings, averaged over destinations — a Monte Carlo estimate
with the disjoint-chain-pair set precomputed per destination.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.phi import uphill_paths_to_tier1
from repro.topology.graph import ASGraph
from repro.types import ASN


def _anchor(graph: ASGraph, destination: ASN) -> Optional[ASN]:
    """Footnote-4 transfer: single-homed destinations inherit the
    disjointness of their first multi-homed (indirect) provider."""
    if graph.is_multihomed(destination):
        return destination
    return graph.first_multihomed_ancestor(destination)


def _disjoint_chain_pairs(
    graph: ASGraph, destination: ASN, *, max_paths: int = 2_000
) -> List[Tuple[Tuple[ASN, ...], Tuple[ASN, ...]]]:
    """All pairs of uphill chains of ``destination`` that are node
    disjoint (except at the destination itself) and end at distinct
    tier-1s."""
    paths, _ = uphill_paths_to_tier1(graph, destination, max_paths=max_paths)
    pairs = []
    for i, a in enumerate(paths):
        interior_a = set(a[1:])
        for b in paths[i + 1 :]:
            if a[-1] == b[-1]:
                continue
            if interior_a & set(b[1:]):
                continue
            pairs.append((a, b))
    return pairs


def _entry_session(chain: Tuple[ASN, ...]) -> Tuple[ASN, ASN]:
    """The (customer, tier-1) session over which a chain enters the core."""
    return (chain[-2], chain[-1])


def partial_deployment_fraction(
    graph: ASGraph,
    *,
    destinations: Optional[Sequence[ASN]] = None,
    trials: int = 32,
    seed: int = 0,
    max_paths: int = 2_000,
) -> float:
    """Fraction of (destination, coloring) cases with two downhill
    node-disjoint paths under tier-1-only deployment."""
    rng = random.Random(seed)
    dests = list(destinations) if destinations is not None else graph.ases
    successes = 0
    total = 0
    # Destinations sharing a footnote-4 anchor share chain pairs; the
    # Monte Carlo draws stay per-destination, so results are unchanged.
    pairs_of: Dict[ASN, List[Tuple[Tuple[ASN, ...], Tuple[ASN, ...]]]] = {}
    for dest in dests:
        if graph.is_tier1(dest):
            # A tier-1 destination is reached inside the deployed core;
            # both of its processes serve every session directly.
            successes += trials
            total += trials
            continue
        anchor = _anchor(graph, dest)
        if anchor is None:
            total += trials
            continue
        pairs = pairs_of.get(anchor)
        if pairs is None:
            pairs = _disjoint_chain_pairs(graph, anchor, max_paths=max_paths)
            pairs_of[anchor] = pairs
        if not pairs:
            total += trials
            continue
        sessions: Set[Tuple[ASN, ASN]] = set()
        for a, b in pairs:
            sessions.add(_entry_session(a))
            sessions.add(_entry_session(b))
        session_list = sorted(sessions)
        for _ in range(trials):
            coloring = {s: rng.random() < 0.5 for s in session_list}
            if any(
                coloring[_entry_session(a)] != coloring[_entry_session(b)]
                for a, b in pairs
            ):
                successes += 1
            total += 1
    return successes / total if total else 0.0


def full_deployment_fraction(
    graph: ASGraph,
    *,
    destinations: Optional[Sequence[ASN]] = None,
    max_paths: int = 2_000,
) -> float:
    """Fraction of destinations with *any* disjoint chain pair.

    The full-deployment upper bound the partial number is compared
    against (existence, not the lock-choice probability Φ).
    """
    dests = list(destinations) if destinations is not None else graph.ases
    hits = 0
    has_pair: Dict[ASN, bool] = {}
    for dest in dests:
        if graph.is_tier1(dest):
            hits += 1
            continue
        anchor = _anchor(graph, dest)
        if anchor is None:
            continue
        cached = has_pair.get(anchor)
        if cached is None:
            cached = bool(
                _disjoint_chain_pairs(graph, anchor, max_paths=max_paths)
            )
            has_pair[anchor] = cached
        if cached:
            hits += 1
    return hits / len(dests) if dests else 0.0
