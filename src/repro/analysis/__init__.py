"""Analyses over topologies and simulation traces.

* :mod:`repro.analysis.transient` — counts ASes experiencing transient
  routing problems during convergence (Figures 2-3).
* :mod:`repro.analysis.phi` — the paper's disjoint-path probability
  Φ and its CDF (Figure 1), plus intelligent blue-provider selection.
* :mod:`repro.analysis.deployment` — partial-deployment estimates
  (section 6.3).
* :mod:`repro.analysis.cdf` — small CDF utilities.
"""

from repro.analysis.transient import TransientReport, analyze_transient_problems
from repro.analysis.phi import (
    PhiResult,
    phi_for_destination,
    phi_distribution,
    uphill_paths_to_tier1,
)
from repro.analysis.cdf import empirical_cdf
from repro.analysis.deployment import partial_deployment_fraction

__all__ = [
    "TransientReport",
    "analyze_transient_problems",
    "PhiResult",
    "phi_for_destination",
    "phi_distribution",
    "uphill_paths_to_tier1",
    "empirical_cdf",
    "partial_deployment_fraction",
]
