"""Small empirical-CDF helpers used by the figure benches."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def empirical_cdf(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Sorted ``(value, cumulative fraction)`` points.

    The fraction at each point is the share of samples <= that value.
    """
    data = sorted(values)
    n = len(data)
    if n == 0:
        return []
    return [(value, (index + 1) / n) for index, value in enumerate(data)]


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """Share of samples <= threshold."""
    data = list(values)
    if not data:
        return 0.0
    return sum(1 for v in data if v <= threshold) / len(data)


def fraction_greater(values: Sequence[float], threshold: float) -> float:
    """Share of samples > threshold."""
    data = list(values)
    if not data:
        return 0.0
    return sum(1 for v in data if v > threshold) / len(data)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    data = list(values)
    return sum(data) / len(data) if data else 0.0
