"""The paper's disjoint-path probability Φ (section 6.1, Figure 1).

For a multi-homed destination AS *m*, let λ be the number of uphill
paths (provider chains) from *m* to any tier-1 AS.  A path *l* is a
"good" locked blue path if, with the interior of *l* removed, another
uphill path from *m* to a different tier-1 still exists (then STAMP is
guaranteed to find a red path).  With the locked blue provider chosen
uniformly at random, Φ_m = λ'/λ where λ' counts good paths.

Single-homed destinations inherit the Φ of their first multi-homed
direct/indirect provider (footnote 4).  Boundary cases we define (the
paper leaves them implicit):

* a tier-1 destination gets Φ = 1.0 (its prefix floods both colors
  through the fully-peered core; no locked chain is needed);
* a destination whose single-homed chain reaches a tier-1 without ever
  meeting a multi-homed AS gets Φ = 0.0 (no disjoint pair can exist).

Performance: all per-anchor work runs on a single precomputed
uphill-reachability view (restricted provider adjacency + tier-1 flags)
instead of re-querying the graph per DFS step, and
:func:`phi_distribution` memoizes results per anchor — footnote-4
inheritance means hundreds of stub destinations share one anchor's
answer.  ``_reference_*`` twins keep the brute-force implementations
alive for equivalence tests.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.topology.graph import ASGraph
from repro.types import ASN


@dataclass(frozen=True)
class PhiResult:
    """Φ for one destination."""

    destination: ASN
    phi: float
    #: λ — number of uphill tier-1 paths enumerated from the anchor.
    n_paths: int
    #: λ' — number of good locked blue paths.
    n_good: int
    #: The multi-homed AS whose Φ this is (footnote 4); equals the
    #: destination unless it is single-homed.
    anchor: Optional[ASN]
    #: Whether path enumeration hit the cap (Φ is then an estimate).
    capped: bool = False


class UphillView:
    """Uphill-reachable subgraph of one anchor, precomputed once.

    Holds the provider adjacency restricted to ASes reachable from the
    anchor by climbing provider links, plus which of them are tier-1s.
    Every per-path disjointness DFS then runs on plain dict/tuple
    lookups instead of graph queries.
    """

    __slots__ = ("anchor", "providers_of", "tier1s")

    def __init__(self, graph: ASGraph, anchor: ASN) -> None:
        self.anchor = anchor
        self.providers_of: Dict[ASN, Tuple[ASN, ...]] = {}
        self.tier1s: Set[ASN] = set()
        stack = [anchor]
        while stack:
            node = stack.pop()
            if node in self.providers_of:
                continue
            providers = graph.providers(node)
            self.providers_of[node] = providers
            if not providers:
                self.tier1s.add(node)
            stack.extend(p for p in providers if p not in self.providers_of)

    def uphill_paths_to_tier1(
        self, *, max_paths: int = 100_000
    ) -> Tuple[List[Tuple[ASN, ...]], bool]:
        """Enumerate every provider chain from the anchor to a tier-1."""
        if max_paths < 1:
            raise ConfigurationError("max_paths must be positive")
        paths: List[Tuple[ASN, ...]] = []
        capped = False
        providers_of = self.providers_of
        stack: List[Tuple[ASN, Tuple[ASN, ...]]] = [(self.anchor, (self.anchor,))]
        while stack:
            node, path = stack.pop()
            providers = providers_of[node]
            if not providers:
                paths.append(path)
                if len(paths) >= max_paths:
                    capped = True
                    break
                continue
            # The provider hierarchy is acyclic, so no visited-set is
            # needed within one chain.
            for provider in reversed(providers):
                stack.append((provider, path + (provider,)))
        return paths, capped

    def disjoint_alternative_exists(self, blocked: Set[ASN]) -> bool:
        """Uphill reachability of a tier-1 from the anchor avoiding ``blocked``."""
        providers_of = self.providers_of
        tier1s = self.tier1s
        seen: Set[ASN] = set()
        stack = [self.anchor]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for provider in providers_of[node]:
                if provider in blocked or provider in seen:
                    continue
                if provider in tier1s:
                    return True
                stack.append(provider)
        return False


def uphill_paths_to_tier1(
    graph: ASGraph, start: ASN, *, max_paths: int = 100_000
) -> Tuple[List[Tuple[ASN, ...]], bool]:
    """Enumerate every provider chain from ``start`` to a tier-1.

    Returns ``(paths, capped)``; each path starts at ``start`` and ends
    at a tier-1 AS.  Enumeration stops (capped=True) at ``max_paths``.
    """
    return UphillView(graph, start).uphill_paths_to_tier1(max_paths=max_paths)


class UphillViewCache:
    """Cross-call cache of per-anchor uphill views and derived Φ stats.

    One figure drives several Φ entry points (`phi_distribution`,
    `conditional_phi_by_provider`, `phi_with_intelligent_selection`)
    over the same graph, and footnote-4 inheritance funnels hundreds of
    destinations through the same few anchors — without a shared cache
    each entry point rebuilds identical :class:`UphillView`s and
    re-enumerates identical path sets.  Entries are keyed by graph
    *identity* (weakly, so graphs can be collected) and invalidated by
    :attr:`ASGraph.version`, making the cache safe across the link
    mutations failure experiments perform.
    """

    def __init__(self) -> None:
        self._by_graph: "weakref.WeakKeyDictionary[ASGraph, dict]" = (
            weakref.WeakKeyDictionary()
        )

    def clear(self) -> None:
        """Drop every cached view (benchmarks and tests use this)."""
        self._by_graph.clear()

    def _entry(self, graph: ASGraph) -> dict:
        entry = self._by_graph.get(graph)
        if entry is None or entry["version"] != graph.version:
            entry = {
                "version": graph.version,
                "views": {},
                "phi": {},
                "conditional": {},
            }
            self._by_graph[graph] = entry
        return entry

    def view(self, graph: ASGraph, anchor: ASN) -> UphillView:
        """The anchor's uphill view, built at most once per graph version."""
        views = self._entry(graph)["views"]
        view = views.get(anchor)
        if view is None:
            view = views[anchor] = UphillView(graph, anchor)
        return view

    def phi_stats(
        self, graph: ASGraph, anchor: ASN, max_paths: int
    ) -> Tuple[float, int, int, bool]:
        """Memoized ``(phi, n_paths, n_good, capped)`` for one anchor."""
        return self.phi_stats_in_entry(self._entry(graph), graph, anchor, max_paths)

    def phi_stats_in_entry(
        self, entry: dict, graph: ASGraph, anchor: ASN, max_paths: int
    ) -> Tuple[float, int, int, bool]:
        """Like :meth:`phi_stats` with the entry lookup hoisted out.

        ``phi_distribution`` resolves the graph's entry once and then
        runs hundreds of anchors against plain dicts; re-validating the
        weak entry per destination measurably slows the cold path.
        """
        key = (anchor, max_paths)
        stats = entry["phi"].get(key)
        if stats is None:
            views = entry["views"]
            view = views.get(anchor)
            if view is None:
                view = views[anchor] = UphillView(graph, anchor)
            stats = entry["phi"][key] = _phi_from_view(view, max_paths=max_paths)
        return stats

    def conditional_stats(
        self, graph: ASGraph, anchor: ASN, max_paths: int
    ) -> Dict[ASN, Tuple[int, int]]:
        """Memoized per-first-hop (good, total) stats for one anchor."""
        entry = self._entry(graph)
        key = (anchor, max_paths)
        stats = entry["conditional"].get(key)
        if stats is None:
            view = self.view(graph, anchor)
            paths, _ = view.uphill_paths_to_tier1(max_paths=max_paths)
            stats = {}
            for path in paths:
                first_hop = path[1] if len(path) > 1 else None
                if first_hop is None:
                    continue
                blocked = set(path)
                blocked.discard(anchor)
                good = view.disjoint_alternative_exists(blocked)
                hits, total = stats.get(first_hop, (0, 0))
                stats[first_hop] = (hits + (1 if good else 0), total + 1)
            entry["conditional"][key] = stats
        return stats


#: Process-wide cache shared by every Φ entry point (each worker
#: process of a parallel run holds its own).
_UPHILL_CACHE = UphillViewCache()


def _phi_from_view(
    view: UphillView, *, max_paths: int
) -> Tuple[float, int, int, bool]:
    """(phi, n_paths, n_good, capped) of one anchor's uphill view."""
    paths, capped = view.uphill_paths_to_tier1(max_paths=max_paths)
    if not paths:
        return 0.0, 0, 0, capped
    anchor = view.anchor
    good = 0
    for path in paths:
        blocked = set(path)
        blocked.discard(anchor)
        if view.disjoint_alternative_exists(blocked):
            good += 1
    return good / len(paths), len(paths), good, capped


def phi_for_destination(
    graph: ASGraph, destination: ASN, *, max_paths: int = 100_000
) -> PhiResult:
    """Compute Φ for one destination AS."""
    anchor = _phi_anchor(graph, destination)
    if anchor is None:
        if graph.is_tier1(destination):
            return PhiResult(destination, 1.0, 0, 0, None)
        return PhiResult(destination, 0.0, 0, 0, None)
    phi, n_paths, n_good, capped = _UPHILL_CACHE.phi_stats(
        graph, anchor, max_paths
    )
    return PhiResult(destination, phi, n_paths, n_good, anchor, capped)


def _phi_anchor(graph: ASGraph, destination: ASN) -> Optional[ASN]:
    """The multi-homed AS whose Φ the destination inherits."""
    if graph.is_multihomed(destination):
        return destination
    return graph.first_multihomed_ancestor(destination)


def phi_distribution(
    graph: ASGraph,
    destinations: Optional[Sequence[ASN]] = None,
    *,
    max_paths: int = 100_000,
) -> List[PhiResult]:
    """Φ for every destination (Figure 1's underlying data).

    Memoized per anchor: single-homed destinations inherit their first
    multi-homed ancestor's Φ (footnote 4), so each anchor's paths are
    enumerated and checked exactly once however many destinations map
    to it — and, via :class:`UphillViewCache`, at most once per *graph
    version* across every Φ entry point a figure calls.
    """
    dests = list(destinations) if destinations is not None else graph.ases
    entry = _UPHILL_CACHE._entry(graph)
    results: List[PhiResult] = []
    for dest in dests:
        anchor = _phi_anchor(graph, dest)
        if anchor is None:
            phi = 1.0 if graph.is_tier1(dest) else 0.0
            results.append(PhiResult(dest, phi, 0, 0, None))
            continue
        phi, n_paths, n_good, capped = _UPHILL_CACHE.phi_stats_in_entry(
            entry, graph, anchor, max_paths
        )
        results.append(PhiResult(dest, phi, n_paths, n_good, anchor, capped))
    return results


# ----------------------------------------------------------------------
# Reference (brute-force) implementations — kept for equivalence tests
# ----------------------------------------------------------------------


def _reference_disjoint_alternative_exists(
    graph: ASGraph, start: ASN, blocked: Set[ASN]
) -> bool:
    """Per-path DFS over the full graph (pre-optimization behavior)."""
    seen: Set[ASN] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for provider in graph.providers(node):
            if provider in blocked or provider in seen:
                continue
            if graph.is_tier1(provider):
                return True
            stack.append(provider)
    return False


def _reference_phi_for_destination(
    graph: ASGraph, destination: ASN, *, max_paths: int = 100_000
) -> PhiResult:
    """Unmemoized, per-path-DFS Φ (pre-optimization behavior)."""
    anchor = _phi_anchor(graph, destination)
    if anchor is None:
        if graph.is_tier1(destination):
            return PhiResult(destination, 1.0, 0, 0, None)
        return PhiResult(destination, 0.0, 0, 0, None)
    paths, capped = uphill_paths_to_tier1(graph, anchor, max_paths=max_paths)
    if not paths:
        return PhiResult(destination, 0.0, 0, 0, anchor, capped)
    good = 0
    for path in paths:
        blocked = set(path) - {anchor}
        if _reference_disjoint_alternative_exists(graph, anchor, blocked):
            good += 1
    return PhiResult(
        destination, good / len(paths), len(paths), good, anchor, capped
    )


def _reference_phi_distribution(
    graph: ASGraph,
    destinations: Optional[Sequence[ASN]] = None,
    *,
    max_paths: int = 100_000,
) -> List[PhiResult]:
    """Destination-by-destination Φ with no anchor sharing."""
    dests = list(destinations) if destinations is not None else graph.ases
    return [
        _reference_phi_for_destination(graph, dest, max_paths=max_paths)
        for dest in dests
    ]


# ----------------------------------------------------------------------
# Intelligent locked-blue-provider selection (section 6.1)
# ----------------------------------------------------------------------


def conditional_phi_by_provider(
    graph: ASGraph, origin: ASN, *, max_paths: int = 100_000
) -> Dict[ASN, Tuple[int, int]]:
    """Per-first-hop statistics: provider -> (good paths, total paths).

    Conditioning Φ on the origin's first-hop choice: paths through
    provider ``p`` are the locked blue chains possible once the origin
    picks ``p``.
    """
    anchor = _phi_anchor(graph, origin)
    if anchor is None:
        return {}
    # Copy so callers can mutate their result without poisoning the
    # cross-call cache.
    return dict(_UPHILL_CACHE.conditional_stats(graph, anchor, max_paths))


def phi_with_intelligent_selection(
    graph: ASGraph, destination: ASN, *, max_paths: int = 100_000
) -> PhiResult:
    """Φ when the origin picks its locked blue provider intelligently.

    The origin fixes the first hop to the provider with the highest
    conditional good fraction; intermediate ASes still choose randomly,
    so Φ becomes the conditional fraction of that best provider.
    """
    anchor = _phi_anchor(graph, destination)
    if anchor is None:
        return phi_for_destination(graph, destination, max_paths=max_paths)
    stats = conditional_phi_by_provider(graph, anchor, max_paths=max_paths)
    if not stats:
        return phi_for_destination(graph, destination, max_paths=max_paths)
    best = max(
        stats.items(),
        key=lambda item: (item[1][0] / item[1][1], -item[0]),
    )
    provider, (good, total) = best
    del provider
    return PhiResult(destination, good / total, total, good, anchor)


def best_blue_provider(
    graph: ASGraph, origin: ASN, *, max_paths: int = 100_000
) -> Optional[ASN]:
    """The origin's best locked-blue-provider choice, or ``None``."""
    stats = conditional_phi_by_provider(graph, origin, max_paths=max_paths)
    if not stats:
        return None
    return max(
        stats.items(), key=lambda item: (item[1][0] / item[1][1], -item[0])
    )[0]
