"""Command-line interface: regenerate the paper's experiments.

Usage examples::

    repro-stamp fig1                  # Phi CDF summary
    repro-stamp fig2 --instances 10   # single link failure comparison
    repro-stamp fig3a
    repro-stamp fig3b
    repro-stamp node-failure
    repro-stamp flap --period 40 --flaps 2   # link-flap episode campaign
    repro-stamp deployment
    repro-stamp overhead
    repro-stamp delay
    repro-stamp topology --out as_graph.txt

    repro-stamp serve --ledger results.jsonl      # campaign daemon
    repro-stamp serve --ledger results.jsonl --max-concurrent 4
    repro-stamp ledger stats results.jsonl
    repro-stamp ledger compact results.jsonl --max-bytes 10000000
    repro-stamp ledger merge merged.jsonl a.jsonl b.jsonl
    repro-stamp journal stats results.jsonl.journal
    repro-stamp journal compact results.jsonl.journal
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.experiments.figures import (
    fig1_phi_cdf,
    fig2_single_link_failure,
    fig3a_two_links_distinct_as,
    fig3b_two_links_same_as,
    link_flap_comparison,
    node_failure_comparison,
    sec61_intelligent_selection,
    sec63_convergence_delay,
    sec63_message_overhead,
    sec63_partial_deployment,
)
from repro.experiments.reporting import (
    ascii_bar_chart,
    cdf_sparkline,
    format_failure_report,
    format_table,
)
from repro.experiments.runner import ExperimentConfig, PROTOCOL_LABELS
from repro.topology.caida import load_caida
from repro.topology.generators import InternetTopologyConfig, generate_internet_topology
from repro.topology.serialization import save_graph


def _load_topology(args: argparse.Namespace):
    """The real topology requested with ``--topology-file``, or None.

    Loads CAIDA AS-relationship text (the format ``repro-stamp
    topology --out`` writes is the same serial-1 convention), runs the
    structural validation pass, and warns — without refusing — when
    the file violates the paper's idealizations: real AS graphs
    routinely do, and the experiments still run on them.
    """
    if getattr(args, "topology_file", None) is None:
        return None
    report = load_caida(args.topology_file, validate=True)
    print(
        f"loaded {args.topology_file}: {report.summary()}", file=sys.stderr
    )
    if report.validation is not None and not report.validation.ok:
        print(
            "warning: topology violates structural assumptions; "
            "results may not match the paper's idealized model",
            file=sys.stderr,
        )
    return report.graph


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    topology = InternetTopologyConfig(
        seed=args.seed,
        n_tier1=args.tier1,
        n_tier2=args.tier2,
        n_tier3=args.tier3,
        n_stub=args.stubs,
    )
    return ExperimentConfig(
        seed=args.seed,
        topology=topology,
        n_instances=args.instances,
        workers=args.workers,
        retries=args.retries,
        unit_timeout=args.unit_timeout,
        ledger_path=args.ledger,
    )


def _print_failure(title: str, data) -> None:
    measured = {
        PROTOCOL_LABELS[p]: v for p, v in data.mean_affected().items()
    }
    print(ascii_bar_chart(measured, title=title, unit=" ASes"))
    report = format_failure_report(getattr(data, "failures", ()))
    if report:
        print()
        print(report)


def cmd_fig1(args) -> int:
    data = fig1_phi_cdf(_build_config(args), graph=_load_topology(args))
    print(
        format_table(
            ["quantity", "paper", "measured"],
            [
                ("mean Phi", "0.92", f"{data.mean_phi:.3f}"),
                ("fraction <= 0.7", "< 0.10", f"{data.fraction_below_070:.3f}"),
                ("fraction > 0.9", "> 0.75", f"{data.fraction_above_090:.3f}"),
            ],
        )
    )
    print(f"CDF: |{cdf_sparkline(data.cdf)}|")
    return 0


def cmd_fig2(args) -> int:
    _print_failure(
        "Figure 2: single provider-link failure (mean affected ASes)",
        fig2_single_link_failure(_build_config(args), graph=_load_topology(args)),
    )
    return 0


def cmd_fig3a(args) -> int:
    _print_failure(
        "Figure 3(a): two failed links at distinct ASes",
        fig3a_two_links_distinct_as(_build_config(args), graph=_load_topology(args)),
    )
    return 0


def cmd_fig3b(args) -> int:
    _print_failure(
        "Figure 3(b): two failed links at the same AS",
        fig3b_two_links_same_as(_build_config(args), graph=_load_topology(args)),
    )
    return 0


def cmd_node_failure(args) -> int:
    _print_failure(
        "Single node (AS) failure", node_failure_comparison(_build_config(args), graph=_load_topology(args))
    )
    return 0


def cmd_flap(args) -> int:
    data = link_flap_comparison(
        _build_config(args), period=args.period, flaps=args.flaps,
        graph=_load_topology(args),
    )
    _print_failure(
        f"Link-flap campaign ({args.flaps} flap(s), period {args.period:g}s): "
        "episode-wide mean affected ASes",
        data,
    )
    print()
    by_phase = data.mean_affected_by_phase()
    headers = ["protocol"] + [
        f"phase {k}" for k in range(data.n_phases())
    ]
    rows = [
        [PROTOCOL_LABELS[p]] + [f"{v:.1f}" for v in values]
        for p, values in by_phase.items()
    ]
    print("Mean affected ASes attributable to each phase "
          "(even phases fail the link, odd phases restore it):")
    print(format_table(headers, rows))
    return 0


def cmd_intelligent(args) -> int:
    data = sec61_intelligent_selection(_build_config(args), graph=_load_topology(args))
    print(f"mean Phi, random selection     : {data.mean_phi_random:.3f}")
    print(f"mean Phi, intelligent selection: {data.mean_phi_intelligent:.3f}")
    return 0


def cmd_deployment(args) -> int:
    data = sec63_partial_deployment(_build_config(args), graph=_load_topology(args))
    print(f"tier-1-only deployment fraction: {data.tier1_only_fraction:.3f} "
          f"(paper: ~0.75)")
    print(f"full deployment fraction       : {data.full_deployment_fraction:.3f}")
    return 0


def cmd_overhead(args) -> int:
    data = sec63_message_overhead(_build_config(args), graph=_load_topology(args))
    print(f"initial convergence: BGP {data.mean_initial_updates_bgp:.0f} vs "
          f"STAMP {data.mean_initial_updates_stamp:.0f} updates "
          f"(ratio {data.initial_ratio:.2f}, paper < 2)")
    print(f"failure episode    : BGP {data.mean_episode_updates_bgp:.0f} vs "
          f"STAMP {data.mean_episode_updates_stamp:.0f} updates "
          f"(ratio {data.episode_ratio:.2f})")
    return 0


def cmd_delay(args) -> int:
    data = sec63_convergence_delay(_build_config(args), graph=_load_topology(args))
    print(f"control-plane quiescence: BGP {data.mean_seconds_bgp:.1f}s, "
          f"STAMP {data.mean_seconds_stamp:.1f}s")
    print(f"data-plane disruption   : BGP {data.mean_disruption_bgp:.2f}s, "
          f"STAMP {data.mean_disruption_stamp:.2f}s")
    return 0


def cmd_topology(args) -> int:
    config = InternetTopologyConfig(
        seed=args.seed,
        n_tier1=args.tier1,
        n_tier2=args.tier2,
        n_tier3=args.tier3,
        n_stub=args.stubs,
    )
    graph, tiers = generate_internet_topology(config)
    save_graph(graph, args.out)
    print(f"wrote {graph} to {args.out} "
          f"(tier-1 clique: {graph.tier1s()})")
    return 0


def cmd_serve(args) -> int:
    # Imported lazily: figure commands never pay for the HTTP stack.
    from repro.service.app import ServiceConfig, run_service
    from repro.service.spec import ServiceLimits

    journal = args.journal or f"{args.serve_ledger}.journal"
    # The flag wins over the environment; the environment keeps the
    # secret out of `ps` output on shared machines.
    token = args.auth_token or os.environ.get("REPRO_SERVICE_TOKEN") or None
    config = ServiceConfig(
        journal_path=journal,
        ledger_path=args.serve_ledger,
        workers=args.workers,
        max_queue=args.max_queue,
        max_concurrent=args.max_concurrent,
        journal_max_bytes=args.journal_max_bytes,
        auth_token=token,
        limits=ServiceLimits(
            max_instances=args.max_instances,
            max_total_ases=args.max_total_ases,
            max_retries=args.max_retries,
            max_unit_timeout=args.max_unit_timeout,
            max_workers=args.max_workers,
        ),
    )
    return run_service(args.host, args.port, config)


def cmd_ledger(args) -> int:
    from repro.errors import LedgerMergeError
    from repro.experiments.ledger import ResultLedger, merge_ledgers

    if args.ledger_command == "stats":
        with ResultLedger(args.path) as ledger:
            stats = ledger.stats()
        for key in (
            "path", "records", "file_bytes", "live_bytes",
            "dropped_records", "salt", "oldest_ts", "newest_ts",
        ):
            print(f"{key:15s} {stats[key]}")
        return 0
    if args.ledger_command == "compact":
        with ResultLedger(args.path) as ledger:
            evicted = ledger.compact(
                max_age_seconds=args.max_age_seconds,
                max_bytes=args.max_bytes,
            )
            remaining = len(ledger)
        print(f"evicted {evicted} record(s); {remaining} remain")
        return 0
    # merge
    try:
        summary = merge_ledgers(args.out, args.inputs)
    except LedgerMergeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"merged {summary['records']} record(s) into {args.out} "
        f"({summary['duplicates']} duplicate key(s) resolved "
        f"last-write-wins)"
    )
    return 0


def cmd_journal(args) -> int:
    from repro.service.journal import CampaignJournal

    if args.journal_command == "stats":
        journal = CampaignJournal(args.path)
        try:
            stats = journal.stats()
        finally:
            journal.close()
        for key in (
            "path", "records", "file_bytes", "snapshots",
            "campaigns", "active_campaigns", "dropped_records",
        ):
            print(f"{key:17s} {stats[key]}")
        return 0
    # compact
    journal = CampaignJournal(args.path)
    try:
        summary = journal.compact(max_age_seconds=args.max_age_seconds)
    finally:
        journal.close()
    print(
        f"compacted {summary['bytes_before']} -> "
        f"{summary['bytes_after']} bytes; {summary['campaigns']} "
        f"campaign(s) kept, {summary['evicted']} evicted"
    )
    return 0


_COMMANDS = {
    "fig1": cmd_fig1,
    "fig2": cmd_fig2,
    "fig3a": cmd_fig3a,
    "fig3b": cmd_fig3b,
    "node-failure": cmd_node_failure,
    "flap": cmd_flap,
    "intelligent": cmd_intelligent,
    "deployment": cmd_deployment,
    "overhead": cmd_overhead,
    "delay": cmd_delay,
    "topology": cmd_topology,
    "serve": cmd_serve,
    "ledger": cmd_ledger,
    "journal": cmd_journal,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stamp",
        description="Reproduce the STAMP paper's experiments (ReArch'08).",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--instances", type=int, default=10,
        help="simulation instances per failure figure (paper: 100)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the (instance, protocol) fan-out; "
             "results are identical for any worker count",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="re-attempts after a unit's first failure (crashed or "
             "hung simulations are retried, then reported; default 1)",
    )
    parser.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock limit; a hung unit is killed, "
             "retried, and reported if it keeps hanging (default: none)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="crash-safe result ledger: completed units are persisted "
             "as they finish and never recomputed, so an interrupted "
             "campaign restarted with the same ledger resumes where it "
             "left off (see docs/robustness.md)",
    )
    parser.add_argument(
        "--topology-file", default=None, metavar="PATH",
        help="run on a real topology: a CAIDA AS-relationship file "
             "('provider|customer|-1' / 'a|b|0', '#' comments; the "
             "format 'repro-stamp topology --out' writes) instead of "
             "the synthetic generator — the --tier*/--stubs knobs are "
             "then ignored",
    )
    parser.add_argument("--tier1", type=int, default=8, help="tier-1 ASes")
    parser.add_argument("--tier2", type=int, default=48, help="tier-2 ASes")
    parser.add_argument("--tier3", type=int, default=120, help="tier-3 ASes")
    parser.add_argument("--stubs", type=int, default=440, help="stub ASes")
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        command = sub.add_parser(name)
        if name == "topology":
            command.add_argument("--out", default="as_graph.txt")
        if name == "serve":
            command.add_argument(
                "--host", default="127.0.0.1", help="bind address"
            )
            command.add_argument(
                "--port", type=int, default=8421,
                help="bind port (0 picks a free one; the daemon prints "
                     "the bound address either way)",
            )
            command.add_argument(
                "--ledger", dest="serve_ledger", required=True,
                metavar="PATH",
                help="shared crash-safe result ledger all campaigns "
                     "read and write (resume lives here)",
            )
            command.add_argument(
                "--journal", default=None, metavar="PATH",
                help="campaign journal path "
                     "(default: <ledger>.journal)",
            )
            command.add_argument(
                "--max-queue", type=int, default=8,
                help="campaigns allowed to wait; beyond this "
                     "submissions get 429 + Retry-After",
            )
            command.add_argument(
                "--max-concurrent", type=int, default=2,
                help="executor lanes: campaigns running at once, all "
                     "sharing the --workers slot budget (results are "
                     "identical for any lane count)",
            )
            command.add_argument(
                "--journal-max-bytes", type=int, default=None,
                metavar="BYTES",
                help="rotate the campaign journal once it grows past "
                     "this (atomic snapshot+tail rewrite; default: "
                     "never)",
            )
            command.add_argument(
                "--auth-token", default=None, metavar="TOKEN",
                help="require 'Authorization: Bearer TOKEN' on "
                     "mutating endpoints (env REPRO_SERVICE_TOKEN "
                     "also works; /healthz and /readyz stay open)",
            )
            command.add_argument(
                "--max-workers", type=int, default=8,
                help="ceiling a campaign's requested workers clamp to",
            )
            command.add_argument(
                "--max-instances", type=int, default=1000,
                help="per-campaign instance ceiling (400 beyond it)",
            )
            command.add_argument(
                "--max-total-ases", type=int, default=20000,
                help="per-campaign topology size ceiling",
            )
            command.add_argument(
                "--max-retries", type=int, default=5,
                help="ceiling a campaign's requested retries clamp to",
            )
            command.add_argument(
                "--max-unit-timeout", type=float, default=900.0,
                help="ceiling a campaign's unit_timeout clamps to",
            )
        if name == "ledger":
            ledger_sub = command.add_subparsers(
                dest="ledger_command", required=True
            )
            stats = ledger_sub.add_parser(
                "stats", help="record counts, bytes, salt, timestamps"
            )
            stats.add_argument("path")
            compact = ledger_sub.add_parser(
                "compact",
                help="rewrite atomically, dropping dead/expired records",
            )
            compact.add_argument("path")
            compact.add_argument(
                "--max-age-seconds", type=float, default=None,
                help="evict records older than this",
            )
            compact.add_argument(
                "--max-bytes", type=int, default=None,
                help="evict oldest records until the file fits",
            )
            merge = ledger_sub.add_parser(
                "merge",
                help="combine ledgers from several machines "
                     "(last-write-wins; refuses salt/version mismatches)",
            )
            merge.add_argument("out")
            merge.add_argument("inputs", nargs="+", metavar="in")
        if name == "journal":
            journal_sub = command.add_subparsers(
                dest="journal_command", required=True
            )
            jstats = journal_sub.add_parser(
                "stats",
                help="record/snapshot/campaign counts and file size",
            )
            jstats.add_argument("path")
            jcompact = journal_sub.add_parser(
                "compact",
                help="rewrite atomically as one snapshot record "
                     "(replay reads snapshot+tail identically)",
            )
            jcompact.add_argument("path")
            jcompact.add_argument(
                "--max-age-seconds", type=float, default=None,
                help="also evict finished campaigns older than this",
            )
        if name == "flap":
            command.add_argument(
                "--period", type=float, default=40.0,
                help="seconds between a failure and the next restore "
                     "(default 40: partial convergence under a 30s MRAI)",
            )
            command.add_argument(
                "--flaps", type=int, default=2,
                help="number of fail/restore cycles (2*flaps phases)",
            )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
