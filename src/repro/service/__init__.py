"""Campaign-as-a-service: the long-lived experiment daemon.

`repro-stamp serve` wraps the supervised pool + result ledger behind a
small HTTP API (submit/status/result/cancel) with crash recovery via
an append-only journal, idempotent content-hash submission, bounded
admission, and graceful drain on SIGTERM.  See ``docs/service.md``.
"""

from repro.service.app import (
    CampaignHTTPServer,
    CampaignService,
    QueueFullError,
    ResultNotReadyError,
    ServiceConfig,
    ShuttingDownError,
    UnknownCampaignError,
    build_result_document,
    run_service,
)
from repro.service.journal import CampaignJournal
from repro.service.spec import CampaignSpec, ServiceLimits
from repro.service.state import (
    CANCELLED,
    Campaign,
    DONE,
    FAILED,
    PARTIAL,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
)

__all__ = [
    "Campaign",
    "CampaignHTTPServer",
    "CampaignJournal",
    "CampaignService",
    "CampaignSpec",
    "QueueFullError",
    "ResultNotReadyError",
    "ServiceConfig",
    "ServiceLimits",
    "ShuttingDownError",
    "UnknownCampaignError",
    "build_result_document",
    "run_service",
    "QUEUED",
    "RUNNING",
    "DONE",
    "PARTIAL",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
]
