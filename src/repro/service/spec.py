"""Campaign specs: validation, server-side ceilings, content-hash ids.

A client submits a JSON object describing one figure/flap campaign.
This module turns it into a :class:`CampaignSpec`:

* **Validation is structured.**  Every problem is collected as a
  ``{"field", "message"}`` pair and raised as
  :class:`~repro.errors.SpecValidationError`; the HTTP layer returns
  the list verbatim in a 400 body, so a client sees *all* its mistakes
  at once, field by field — not one opaque string.
* **Ceilings, not trust.**  Work-shaping knobs (``instances``,
  topology size) are validated against :class:`ServiceLimits`;
  execution knobs that cannot change results (``retries``,
  ``unit_timeout``, ``workers``) are *clamped* to the server ceilings, because a
  client asking for more patience than the operator allows should
  still get its campaign, just under house rules.
* **The campaign id is the spec.**  :meth:`CampaignSpec.campaign_id`
  is the SHA-256 of the canonical JSON of the *defaults-filled* spec
  document (:func:`repro.experiments.canonical.canonical_json`), so
  equal campaigns — however sparsely the client wrote them, whatever
  order the protocols were listed in — hash to the same id, and
  duplicate submissions converge on one execution.  Clamped execution
  knobs are excluded from the hash: they cannot change any result.

The spec's ``kind`` selects a module-level scenario/episode builder
(the same importable-builder discipline the ledger keys require), so
the campaign fans out over the existing supervised pool unchanged.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SpecValidationError
from repro.experiments.canonical import canonical_bytes, sha256_hex
from repro.experiments.runner import PROTOCOLS
from repro.experiments.scenarios import (
    link_flap_episode,
    provider_node_failure,
    single_provider_link_failure,
    two_link_failures_distinct_as,
    two_link_failures_same_as,
)
from repro.topology.generators import InternetTopologyConfig

#: kind -> (module-level builder, ledger unit kind).  Episode kinds
#: additionally bind their knobs via ``functools.partial`` (canonical
#: kwargs — part of the ledger key, as they change results).
_SCENARIO_KINDS: Dict[str, Tuple[Callable, str]] = {
    "fig2": (single_provider_link_failure, "fig2-single-link"),
    "fig3a": (two_link_failures_distinct_as, "fig3a-distinct-as"),
    "fig3b": (two_link_failures_same_as, "fig3b-same-as"),
    "node-failure": (provider_node_failure, "node-failure"),
}

#: Episode kinds carry extra knobs; handled explicitly in builder().
_EPISODE_KINDS = ("flap",)

KINDS: Tuple[str, ...] = tuple(_SCENARIO_KINDS) + _EPISODE_KINDS

_TOPOLOGY_FIELDS = ("seed", "tier1", "tier2", "tier3", "stubs")
_TOPOLOGY_DEFAULTS = {
    "seed": 0, "tier1": 8, "tier2": 48, "tier3": 120, "stubs": 440,
}


@dataclass(frozen=True)
class ServiceLimits:
    """Server-side ceilings a deployment enforces at admission.

    ``max_instances`` and ``max_total_ases`` bound the work one
    campaign may demand (violations are 400s: the spec itself is
    overambitious).  ``max_retries`` and ``max_unit_timeout`` are
    clamps: the accepted campaign simply runs under the ceiling.
    """

    max_instances: int = 1000
    max_total_ases: int = 20000
    max_retries: int = 5
    max_unit_timeout: float = 900.0
    #: Ceiling a campaign's requested ``workers`` clamps to.  A clamp,
    #: not a rejection: worker count is result-invariant, and the
    #: scheduler's shared budget may grant even fewer under contention.
    max_workers: int = 8


@dataclass(frozen=True)
class CampaignSpec:
    """One validated campaign: what to run, at what scale, how patiently."""

    kind: str
    seed: int
    instances: int
    protocols: Tuple[str, ...]
    topology: Dict[str, int]
    period: Optional[float] = None
    flaps: Optional[int] = None
    retries: int = 1
    unit_timeout: Optional[float] = None
    #: Requested worker processes (``None``: the server default).
    #: Clamped to :attr:`ServiceLimits.max_workers`; the concurrent
    #: scheduler grants at most this many slots from the shared budget.
    workers: Optional[int] = None

    # -- parsing -------------------------------------------------------

    @classmethod
    def parse(
        cls, payload: Any, limits: Optional[ServiceLimits] = None
    ) -> "CampaignSpec":
        """Validate a submitted JSON object into a spec.

        Raises :class:`~repro.errors.SpecValidationError` carrying one
        ``{"field", "message"}`` entry per problem.  Unknown fields are
        rejected — a typoed knob silently ignored would run the wrong
        campaign under the right-looking id.
        """
        limits = limits or ServiceLimits()
        errors: List[Dict[str, str]] = []

        def fail(field: str, message: str) -> None:
            errors.append({"field": field, "message": message})

        if not isinstance(payload, dict):
            raise SpecValidationError(
                [{"field": "$", "message": "spec must be a JSON object"}]
            )

        known = {
            "kind", "seed", "instances", "protocols", "topology",
            "period", "flaps", "retries", "unit_timeout", "workers",
        }
        for field in sorted(set(payload) - known):
            fail(field, "unknown field")

        kind = payload.get("kind")
        if kind not in KINDS:
            fail("kind", f"must be one of {', '.join(KINDS)}")

        seed = payload.get("seed", 0)
        if not _is_int(seed):
            fail("seed", "must be an integer")
            seed = 0

        instances = payload.get("instances", 10)
        if not _is_int(instances) or instances < 1:
            fail("instances", "must be a positive integer")
            instances = 1
        elif instances > limits.max_instances:
            fail(
                "instances",
                f"exceeds the server ceiling of {limits.max_instances}",
            )

        protocols = payload.get("protocols", list(PROTOCOLS))
        normalized: Tuple[str, ...] = ()
        if (
            not isinstance(protocols, (list, tuple))
            or not protocols
            or not all(isinstance(p, str) for p in protocols)
        ):
            fail("protocols", "must be a non-empty list of protocol names")
        else:
            unknown = sorted(set(protocols) - set(PROTOCOLS))
            if unknown:
                fail(
                    "protocols",
                    f"unknown: {', '.join(unknown)} "
                    f"(valid: {', '.join(PROTOCOLS)})",
                )
            else:
                # Normalize to canonical display order and dedupe, so
                # ["stamp", "bgp"] and ["bgp", "stamp"] are the same
                # campaign (per-protocol results are order-free).
                seen = set(protocols)
                normalized = tuple(p for p in PROTOCOLS if p in seen)

        topology = dict(_TOPOLOGY_DEFAULTS)
        supplied = payload.get("topology", {})
        if not isinstance(supplied, dict):
            fail("topology", "must be an object")
        else:
            for field in sorted(set(supplied) - set(_TOPOLOGY_FIELDS)):
                fail(f"topology.{field}", "unknown field")
            for field in _TOPOLOGY_FIELDS:
                if field not in supplied:
                    continue
                value = supplied[field]
                if not _is_int(value) or (field != "seed" and value < 0):
                    fail(f"topology.{field}", "must be a non-negative integer")
                else:
                    topology[field] = value
            if topology["tier1"] < 2:
                fail("topology.tier1", "need at least two tier-1 ASes")
            total = sum(topology[f] for f in ("tier1", "tier2", "tier3", "stubs"))
            if total > limits.max_total_ases:
                fail(
                    "topology",
                    f"{total} ASes exceeds the server ceiling of "
                    f"{limits.max_total_ases}",
                )

        period = payload.get("period")
        flaps = payload.get("flaps")
        if kind in _EPISODE_KINDS:
            period = 40.0 if period is None else period
            flaps = 2 if flaps is None else flaps
            if not isinstance(period, (int, float)) or isinstance(
                period, bool
            ) or not period > 0:
                fail("period", "must be a positive number of seconds")
                period = 40.0
            if not _is_int(flaps) or not 1 <= flaps <= 50:
                fail("flaps", "must be an integer between 1 and 50")
                flaps = 2
            period = float(period)
        else:
            if period is not None:
                fail("period", f"only valid for kinds: {', '.join(_EPISODE_KINDS)}")
                period = None
            if flaps is not None:
                fail("flaps", f"only valid for kinds: {', '.join(_EPISODE_KINDS)}")
                flaps = None

        retries = payload.get("retries", 1)
        if not _is_int(retries) or retries < 0:
            fail("retries", "must be a non-negative integer")
            retries = 1
        else:
            retries = min(retries, limits.max_retries)  # clamp, not reject

        unit_timeout = payload.get("unit_timeout")
        if unit_timeout is not None:
            if not isinstance(unit_timeout, (int, float)) or isinstance(
                unit_timeout, bool
            ) or not unit_timeout > 0:
                fail("unit_timeout", "must be a positive number of seconds")
                unit_timeout = None
            else:
                unit_timeout = min(float(unit_timeout), limits.max_unit_timeout)

        workers = payload.get("workers")
        if workers is not None:
            if not _is_int(workers) or workers < 1:
                fail("workers", "must be a positive integer")
                workers = None
            else:
                workers = min(workers, limits.max_workers)  # clamp

        if errors:
            raise SpecValidationError(errors)

        return cls(
            kind=kind,
            seed=seed,
            instances=instances,
            protocols=normalized,
            topology=topology,
            period=period,
            flaps=flaps,
            retries=retries,
            unit_timeout=unit_timeout,
            workers=workers,
        )

    # -- identity ------------------------------------------------------

    def canonical_document(self) -> Dict[str, Any]:
        """The defaults-filled document the campaign id hashes.

        Excludes the clamped execution knobs (``retries``,
        ``unit_timeout``, ``workers``): they decide how patiently units
        are retried and how wide the pool fans out, never what any unit
        computes, so two submissions differing only there are the same
        campaign.
        """
        doc: Dict[str, Any] = {
            "kind": self.kind,
            "seed": self.seed,
            "instances": self.instances,
            "protocols": list(self.protocols),
            "topology": {k: self.topology[k] for k in _TOPOLOGY_FIELDS},
        }
        if self.kind in _EPISODE_KINDS:
            doc["period"] = self.period
            doc["flaps"] = self.flaps
        return doc

    def campaign_id(self) -> str:
        """Content-hash id: equal specs collide, different specs never."""
        return sha256_hex(canonical_bytes(self.canonical_document()))

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from its journaled canonical document."""
        return cls.parse(document)

    # -- execution surface ---------------------------------------------

    def builder(self) -> Callable:
        """The module-level (ledger-keyable) scenario/episode builder."""
        if self.kind == "flap":
            return functools.partial(
                link_flap_episode, period=self.period, flaps=self.flaps
            )
        return _SCENARIO_KINDS[self.kind][0]

    def unit_kind(self) -> str:
        """The ledger/seed-derivation kind string for this campaign."""
        if self.kind == "flap":
            return "link-flap"
        return _SCENARIO_KINDS[self.kind][1]

    def topology_config(self) -> InternetTopologyConfig:
        return InternetTopologyConfig(
            seed=self.topology["seed"],
            n_tier1=self.topology["tier1"],
            n_tier2=self.topology["tier2"],
            n_tier3=self.topology["tier3"],
            n_stub=self.topology["stubs"],
        )

    def total_units(self) -> int:
        return self.instances * len(self.protocols)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)
