"""The campaign service: HTTP daemon over the supervised pool.

``repro-stamp serve`` runs this long-lived daemon.  Clients submit
figure/flap campaign specs as JSON and poll for status and results:

* ``POST /campaigns`` — submit a spec.  Returns ``202`` with the
  campaign's content-hash id, ``200`` if that exact campaign already
  exists (idempotent resubmission), ``400`` with per-field errors on an
  invalid spec, ``429``/``503`` with ``Retry-After`` under overload or
  shutdown.
* ``GET /campaigns`` / ``GET /campaigns/{id}`` — status: lifecycle
  state, per-unit progress, the structured failure report.
* ``GET /campaigns/{id}/result`` — the canonical result document
  (``409`` until the campaign finishes).
* ``POST /campaigns/{id}/cancel`` — cooperative cancel: dispatch
  stops, in-flight units drain to the ledger, the campaign lands in
  ``cancelled`` (a resubmission requeues it and resumes from the
  ledger).
* ``GET /healthz`` (liveness) and ``GET /readyz`` (admission-ready).

Robustness model (see ``docs/service.md``):

* **Crash recovery.**  Every campaign is journaled durably *before*
  its 202 is acknowledged, and every state transition after; on start
  the service replays the journal, re-lists every campaign ever
  accepted, and requeues the non-terminal ones.  Completed units live
  in the shared result ledger, so a recovered campaign recomputes only
  what never finished — and its final result document is byte-identical
  to an uninterrupted run's, because the document is a pure function of
  the spec and the unit results (execution counters and timestamps are
  deliberately excluded).
* **Idempotent submission.**  The campaign id is the SHA-256 of the
  canonical spec document, so duplicate submissions — concurrent ones
  included — converge on one execution and one result.
* **Concurrent scheduling with lane isolation.**  ``--max-concurrent``
  executor lanes pull from the admission queue in FIFO order; each
  lane is an isolation domain, so a slow, poisoned, or cancelled
  campaign occupies only its own lane and never head-of-line-blocks
  the others.  All lanes draw worker slots from one shared
  :class:`~repro.experiments.supervisor.WorkerBudget` (``--workers``
  is the machine-wide total): a campaign asks for ``workers`` and the
  scheduler grants ``min(requested, available)`` — fewer under
  contention — which cannot change any result because worker count is
  result-invariant throughout the stack.
* **Admission control.**  The queue is bounded (``429`` beyond it,
  with a ``Retry-After`` computed from queue depth and recent campaign
  durations); body size is bounded (``413``); malformed specs are
  structured ``400``s; per-campaign execution knobs are clamped to
  server ceilings at admission.  With ``--auth-token`` (or
  ``REPRO_SERVICE_TOKEN``) set, mutating endpoints require a matching
  ``Authorization: Bearer`` header (``401`` otherwise); ``/healthz``
  and ``/readyz`` stay open for probes.
* **Journal rotation.**  With ``--journal-max-bytes`` set, a journal
  grown past the bound is atomically rewritten as one snapshot record
  (:meth:`~repro.service.journal.CampaignJournal.compact`); recovery
  reads snapshot+tail identically to a full replay.
* **Graceful shutdown.**  SIGTERM/SIGINT stops admissions (``503``),
  asks every running campaign to stop cooperatively, drains their
  in-flight units to the ledger, journals the interruptions and a
  checkpoint, and exits 0.  Interrupted campaigns resume on the
  next start — the journal replay requeues *every* non-terminal
  campaign, however many lanes were mid-flight at the crash.
"""

from __future__ import annotations

import hmac
import json
import logging
import math
import signal
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ServiceError, SpecValidationError
from repro.experiments.canonical import canonical_json
from repro.experiments.figures import EpisodeCampaignData, FailureFigureData
from repro.experiments.parallel import CampaignOutcome, ParallelRunner
from repro.experiments.supervisor import UnitFailure, WorkerBudget
from repro.service.journal import CampaignJournal
from repro.service.spec import CampaignSpec, ServiceLimits
from repro.service.state import (
    CANCELLED,
    Campaign,
    DONE,
    FAILED,
    PARTIAL,
    QUEUED,
    REQUEUEABLE_STATES,
    RUNNING,
    TERMINAL_STATES,
)
from repro.topology.generators import generate_internet_topology

logger = logging.getLogger("repro.service.app")


class QueueFullError(ServiceError):
    """Admission refused: the bounded campaign queue is at capacity."""


class ShuttingDownError(ServiceError):
    """Admission refused: the service is draining for shutdown."""


class UnknownCampaignError(ServiceError):
    """No campaign with that id was ever accepted."""


class ResultNotReadyError(ServiceError):
    """The campaign exists but has not produced a result document."""

    def __init__(self, message: str, state: str) -> None:
        super().__init__(message)
        self.state = state


def failure_status(failure: UnitFailure) -> Dict[str, Any]:
    """Full structured failure record for status documents."""
    return {
        "kind": failure.kind,
        "seed": failure.seed,
        "instance": failure.instance,
        "protocol": failure.protocol,
        "attempts": [
            {"cause": a.cause, "detail": a.detail} for a in failure.attempts
        ],
    }


def _failure_summary(failure: Dict[str, Any]) -> Dict[str, Any]:
    """Deterministic failure identity for *result* documents.

    Attempt details carry tracebacks (pids, addresses, timings) that
    vary run to run; the result document keeps only what is a pure
    function of the spec and the fault — the unit identity and the
    failure causes — preserving the byte-identical result contract.
    """
    return {
        "kind": failure["kind"],
        "seed": failure["seed"],
        "instance": failure["instance"],
        "protocol": failure["protocol"],
        "causes": [a["cause"] for a in failure["attempts"]],
    }


def build_result_document(
    campaign_id: str, spec: CampaignSpec, outcome: CampaignOutcome
) -> Dict[str, Any]:
    """The canonical result of one finished campaign.

    A pure function of the spec and the per-unit results: execution
    counters (``executed``/``ledger_hits``), timestamps, and attempt
    details are all excluded, so an interrupted-and-resumed campaign
    serves exactly the bytes an uninterrupted one would.
    """
    data: FailureFigureData
    if spec.kind == "flap":
        data = EpisodeCampaignData(
            scenario_kind=spec.unit_kind(),
            runs=outcome.runs,
            failures=outcome.failures,
        )
    else:
        data = FailureFigureData(
            scenario_kind=spec.unit_kind(),
            runs=outcome.runs,
            failures=outcome.failures,
        )
    document: Dict[str, Any] = {
        "id": campaign_id,
        "spec": spec.canonical_document(),
        "samples": {p: len(runs) for p, runs in outcome.runs.items()},
        "mean_affected": data.mean_affected(),
        "mean_convergence_time": data.mean_convergence_time(),
        "mean_updates": data.mean_updates(),
        "mean_initial_updates": data.mean_initial_updates(),
        "mean_disruption": data.mean_disruption(),
        "failures": [
            _failure_summary(failure_status(f)) for f in outcome.failures
        ],
    }
    if isinstance(data, EpisodeCampaignData):
        document["n_phases"] = data.n_phases()
        document["mean_affected_by_phase"] = data.mean_affected_by_phase()
    return document


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one daemon instance needs to know.

    ``workers`` is the machine-wide worker-slot total shared by all
    lanes; ``max_concurrent`` is the lane count (campaigns executing
    at once); ``journal_max_bytes`` auto-rotates the journal once it
    grows past the bound (``None`` disables); ``auth_token`` gates
    mutating endpoints behind a bearer token (``None`` leaves the
    service open).
    """

    journal_path: Union[str, Path]
    ledger_path: Union[str, Path]
    workers: int = 1
    max_queue: int = 8
    max_body_bytes: int = 256 * 1024
    retry_after: int = 5
    max_concurrent: int = 2
    journal_max_bytes: Optional[int] = None
    auth_token: Optional[str] = None
    limits: ServiceLimits = ServiceLimits()


class CampaignService:
    """Journal-backed campaign registry plus its executor lanes.

    All public methods are thread-safe (the HTTP layer calls them from
    handler threads).  Execution happens on ``max_concurrent``
    dedicated lane threads pulling from the admission queue in FIFO
    order; every lane draws worker slots from one shared
    :class:`~repro.experiments.supervisor.WorkerBudget`, so total
    parallelism stays bounded by ``config.workers`` however many
    campaigns are in flight.  Lanes are isolation domains: a hung,
    poisoned, or cancelled campaign occupies only its own lane.  The
    journal is only ever written under the service lock, so lanes
    never interleave records; ledger appends are O_APPEND+fsync and
    concurrent campaigns touch disjoint unit keys, so the shared
    ledger is concurrent-writer safe by construction.
    """

    def __init__(
        self, config: ServiceConfig, *, clock=time.time
    ) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._campaigns: Dict[str, Campaign] = {}
        self._specs: Dict[str, CampaignSpec] = {}
        self._queue: deque = deque()
        self._journal = CampaignJournal(config.journal_path)
        self._shutdown = threading.Event()
        self._budget = WorkerBudget(config.workers)
        #: lane index -> campaign id currently running there (or None).
        self._lanes: List[Optional[str]] = (
            [None] * max(1, int(config.max_concurrent))
        )
        #: Wall-clock durations of recently finished campaigns, for
        #: the Retry-After estimate.
        self._durations: deque = deque(maxlen=32)
        self._graphs: Dict[Tuple, Any] = {}
        self._graph_lock = threading.Lock()
        self.recovered = 0
        self.resumed = 0
        self._recover()
        self._executors = [
            threading.Thread(
                target=self._executor_loop, args=(lane,),
                name=f"campaign-lane-{lane}", daemon=True,
            )
            for lane in range(len(self._lanes))
        ]

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        for thread in self._executors:
            thread.start()

    def begin_shutdown(self) -> None:
        """Stop admissions and ask every running campaign to stop."""
        with self._wake:
            if self._shutdown.is_set():
                return
            self._shutdown.set()
            for cid in self._lanes:
                if cid is not None:
                    self._campaigns[cid].stop_event.set()
            self._wake.notify_all()
        logger.info("shutdown requested: admissions closed, draining")

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every lane to finish draining; then checkpoint.

        Returns ``True`` on a clean drain.  The checkpoint record is
        written either way — it marks how far the journal is known
        good, not that the stop was pretty.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        clean = True
        for thread in self._executors:
            if not thread.is_alive():
                continue
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
            if thread.is_alive():
                clean = False
                logger.warning(
                    "%s did not drain within %ss", thread.name, timeout
                )
        with self._lock:
            self._journal.append(
                {
                    "event": "checkpoint",
                    "ts": self._clock(),
                    "reason": "shutdown" if clean else "drain-timeout",
                }
            )
            self._journal.close()
        return clean

    def _journal_append(self, body: Dict[str, Any]) -> None:
        """Append one record; auto-rotate past the configured bound.

        Callers hold the service lock, so rotation never races another
        append — the journal has exactly one writer at a time.
        """
        self._journal.append(body)
        if self.config.journal_max_bytes is not None:
            self._journal.maybe_compact(self.config.journal_max_bytes)

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal: re-list every campaign, requeue the
        unfinished ones (their completed units are in the ledger)."""
        entries, dropped = self._journal.replay()
        if dropped:
            logger.warning(
                "journal replay skipped %d torn/corrupt record(s)", dropped
            )
        now = self._clock()
        for cid, entry in entries.items():
            campaign = Campaign(
                campaign_id=cid,
                spec_document=entry["spec"],
                state=entry["state"],
                submitted_at=entry.get("ts") or 0.0,
                updated_at=entry.get("ts") or 0.0,
            )
            try:
                spec = CampaignSpec.from_document(entry["spec"])
            except SpecValidationError as exc:
                # A journal from a spec dialect this build no longer
                # accepts: keep the record visible, never run it.
                if campaign.state not in TERMINAL_STATES:
                    campaign.state = FAILED
                campaign.error = f"journaled spec no longer valid: {exc}"
                self._campaigns[cid] = campaign
                self.recovered += 1
                continue
            campaign.total_units = spec.total_units()
            campaign.executed = int(entry.get("executed") or 0)
            campaign.ledger_hits = int(entry.get("ledger_hits") or 0)
            failures = entry.get("failures")
            if isinstance(failures, list):
                campaign.failures = failures
            if entry.get("error") is not None:
                campaign.error = str(entry["error"])
            result = entry.get("result")
            if campaign.state in (DONE, PARTIAL) and isinstance(result, dict):
                campaign.result_json = canonical_json(result)
                campaign.resolved_units = campaign.total_units
            self._campaigns[cid] = campaign
            self._specs[cid] = spec
            self.recovered += 1
            if campaign.state not in TERMINAL_STATES:
                # queued stays queued; running was interrupted by a
                # crash — journal the requeue so the file matches what
                # the recovered service is about to do.
                if campaign.state == RUNNING:
                    campaign.advance(QUEUED, at=now)
                    self._journal_append(
                        {
                            "event": "state",
                            "id": cid,
                            "state": QUEUED,
                            "ts": now,
                        }
                    )
                self._queue.append(cid)
                self.resumed += 1
        if self.recovered:
            logger.info(
                "recovered %d campaign(s) from journal; requeued %d",
                self.recovered, self.resumed,
            )

    # -- client operations ---------------------------------------------

    def submit(self, payload: Any) -> Tuple[bool, Dict[str, Any]]:
        """Admit one spec; returns ``(accepted, status_document)``.

        ``accepted`` is True when this call (re)queued an execution
        (HTTP 202) and False when it matched an existing campaign
        (HTTP 200).  Raises :class:`~repro.errors.SpecValidationError`,
        :class:`QueueFullError`, or :class:`ShuttingDownError`.
        """
        spec = CampaignSpec.parse(payload, self.config.limits)
        cid = spec.campaign_id()
        now = self._clock()
        with self._wake:
            if self._shutdown.is_set():
                raise ShuttingDownError("service is shutting down")
            existing = self._campaigns.get(cid)
            if existing is not None:
                if existing.state in REQUEUEABLE_STATES:
                    if len(self._queue) >= self.config.max_queue:
                        raise QueueFullError(
                            f"campaign queue is full "
                            f"({self.config.max_queue} waiting)"
                        )
                    existing.reset_for_requeue()
                    existing.advance(QUEUED, at=now)
                    self._specs[cid] = spec
                    self._journal_append(
                        {"event": "state", "id": cid, "state": QUEUED,
                         "ts": now}
                    )
                    self._queue.append(cid)
                    self._wake.notify_all()
                    return True, self._status_locked(cid)
                return False, self._status_locked(cid)
            if len(self._queue) >= self.config.max_queue:
                raise QueueFullError(
                    f"campaign queue is full "
                    f"({self.config.max_queue} waiting)"
                )
            campaign = Campaign(
                campaign_id=cid,
                spec_document=spec.canonical_document(),
                submitted_at=now,
                updated_at=now,
                total_units=spec.total_units(),
            )
            # Durable before acknowledged: the journal record hits disk
            # before the 202 leaves the building.
            self._journal_append(
                {
                    "event": "submitted",
                    "id": cid,
                    "spec": campaign.spec_document,
                    "ts": now,
                }
            )
            self._campaigns[cid] = campaign
            self._specs[cid] = spec
            self._queue.append(cid)
            self._wake.notify_all()
            return True, self._status_locked(cid)

    def status(self, cid: str) -> Dict[str, Any]:
        with self._lock:
            if cid not in self._campaigns:
                raise UnknownCampaignError(f"unknown campaign {cid}")
            return self._status_locked(cid)

    def list_campaigns(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [self._status_locked(cid) for cid in self._campaigns]

    def result(self, cid: str) -> str:
        """The canonical result JSON text, exactly as first computed."""
        with self._lock:
            campaign = self._campaigns.get(cid)
            if campaign is None:
                raise UnknownCampaignError(f"unknown campaign {cid}")
            if campaign.result_json is None:
                raise ResultNotReadyError(
                    f"campaign is {campaign.state}; no result document",
                    campaign.state,
                )
            return campaign.result_json

    def cancel(self, cid: str) -> Dict[str, Any]:
        """Cancel a queued campaign now, or a running one cooperatively."""
        now = self._clock()
        with self._lock:
            campaign = self._campaigns.get(cid)
            if campaign is None:
                raise UnknownCampaignError(f"unknown campaign {cid}")
            if campaign.state == QUEUED:
                try:
                    self._queue.remove(cid)
                except ValueError:
                    pass
                campaign.cancel_requested = True
                campaign.advance(CANCELLED, at=now)
                self._journal_append(
                    {"event": "state", "id": cid, "state": CANCELLED,
                     "ts": now}
                )
            elif campaign.state == RUNNING:
                campaign.cancel_requested = True
                campaign.stop_event.set()
            elif campaign.state in TERMINAL_STATES:
                raise ServiceError(
                    f"campaign is already {campaign.state}"
                )
            return self._status_locked(cid)

    def ready(self) -> bool:
        return (
            any(t.is_alive() for t in self._executors)
            and not self._shutdown.is_set()
        )

    def readiness_document(self) -> Dict[str, Any]:
        """The JSON body of ``GET /readyz``: lanes, queue, budget."""
        with self._lock:
            lanes = []
            for lane, cid in enumerate(self._lanes):
                entry: Dict[str, Any] = {
                    "lane": lane, "busy": cid is not None,
                }
                if cid is not None:
                    entry["campaign"] = cid
                lanes.append(entry)
            return {
                "ready": self.ready(),
                "lanes": lanes,
                "queue_depth": len(self._queue),
                "worker_budget": self._budget.utilization(),
            }

    def retry_after_estimate(self) -> int:
        """Seconds a refused client should wait before retrying.

        Queue depth times the mean recent campaign duration, divided
        across the lanes; floored at 1s, capped at 300s.  With no
        finished campaigns yet there is nothing to extrapolate from,
        so the configured constant is used.
        """
        with self._lock:
            depth = len(self._queue) + sum(
                1 for cid in self._lanes if cid is not None
            )
            durations = list(self._durations)
        if not durations:
            return max(1, int(self.config.retry_after))
        mean = sum(durations) / len(durations)
        estimate = math.ceil((depth + 1) * mean / max(1, len(self._lanes)))
        return max(1, min(int(estimate), 300))

    def _status_locked(self, cid: str) -> Dict[str, Any]:
        campaign = self._campaigns[cid]
        position = None
        if campaign.state == QUEUED:
            try:
                position = list(self._queue).index(cid)
            except ValueError:
                position = None
        return campaign.status_document(queue_position=position)

    # -- execution -----------------------------------------------------

    def _executor_loop(self, lane: int) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._shutdown.is_set():
                    self._wake.wait(timeout=0.5)
                if self._shutdown.is_set():
                    return
                cid = self._queue.popleft()
                campaign = self._campaigns[cid]
                now = self._clock()
                campaign.advance(RUNNING, at=now)
                campaign.lane = lane
                self._lanes[lane] = cid
                self._journal_append(
                    {"event": "state", "id": cid, "state": RUNNING,
                     "ts": now}
                )
            started = time.monotonic()
            try:
                self._run_campaign(campaign)
            except Exception:
                logger.exception("campaign %s failed", cid[:12])
                self._finish_exception(campaign)
            finally:
                with self._lock:
                    self._lanes[lane] = None
                    campaign.lane = None
                    self._durations.append(
                        max(0.0, time.monotonic() - started)
                    )

    def _graph_for(self, spec: CampaignSpec):
        # Serialized across lanes: building the same topology twice
        # wastes minutes of CPU; the lock makes the second lane a
        # cache hit instead.
        with self._graph_lock:
            key = tuple(sorted(spec.topology.items()))
            graph = self._graphs.get(key)
            if graph is None:
                graph, _ = generate_internet_topology(spec.topology_config())
                self._graphs[key] = graph
            return graph

    def _run_campaign(self, campaign: Campaign) -> None:
        cid = campaign.campaign_id
        spec = self._specs.get(cid)
        if spec is None:
            spec = CampaignSpec.from_document(campaign.spec_document)
            self._specs[cid] = spec
        graph = self._graph_for(spec)
        requested = (
            spec.workers if spec.workers is not None else self.config.workers
        )
        runner = ParallelRunner(
            workers=requested,
            max_attempts=spec.retries + 1,
            unit_timeout=spec.unit_timeout,
            ledger_path=self.config.ledger_path,
            budget=self._budget,
        )

        def on_progress(resolved: int, total: int) -> None:
            with self._lock:
                campaign.total_units = total
                campaign.resolved_units = resolved
                campaign.updated_at = self._clock()

        outcome = runner.run_failure_comparison(
            spec.builder(),
            spec.unit_kind(),
            spec.seed,
            spec.instances,
            spec.protocols,
            graph,
            stop_event=campaign.stop_event,
            on_progress=on_progress,
        )
        self._finish(campaign, spec, outcome)

    def _finish(
        self, campaign: Campaign, spec: CampaignSpec, outcome: CampaignOutcome
    ) -> None:
        cid = campaign.campaign_id
        now = self._clock()
        with self._wake:
            # Atomic with the state transition: a status read must never
            # see a non-running campaign still claiming a lane.
            campaign.lane = None
            campaign.executed = outcome.executed
            campaign.ledger_hits = outcome.ledger_hits
            campaign.failures = [failure_status(f) for f in outcome.failures]
            record: Dict[str, Any] = {
                "event": "state",
                "id": cid,
                "ts": now,
                "executed": campaign.executed,
                "ledger_hits": campaign.ledger_hits,
                "failures": campaign.failures,
            }
            if outcome.stopped:
                if campaign.cancel_requested:
                    campaign.advance(CANCELLED, at=now)
                    record["state"] = CANCELLED
                else:
                    # Graceful shutdown interrupted the run: back to the
                    # front of the queue, resumed on the next start.
                    campaign.advance(QUEUED, at=now)
                    record["state"] = QUEUED
                    self._queue.appendleft(cid)
            elif not any(outcome.runs.values()):
                campaign.error = "every unit failed terminally"
                campaign.advance(FAILED, at=now)
                record["state"] = FAILED
                record["error"] = campaign.error
            else:
                document = build_result_document(cid, spec, outcome)
                campaign.result_json = canonical_json(document)
                state = PARTIAL if outcome.failures else DONE
                campaign.advance(state, at=now)
                record["state"] = state
                record["result"] = document
            self._journal_append(record)

    def _finish_exception(self, campaign: Campaign) -> None:
        import traceback

        now = self._clock()
        with self._lock:
            campaign.lane = None
            campaign.error = traceback.format_exc(limit=20)
            campaign.advance(FAILED, at=now)
            self._journal_append(
                {
                    "event": "state",
                    "id": campaign.campaign_id,
                    "state": FAILED,
                    "ts": now,
                    "error": campaign.error,
                }
            )


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class CampaignRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the :class:`CampaignService`."""

    server_version = "repro-stamp-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_body(
        self, status: int, body: bytes,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, status: int, document: Any,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (canonical_json(document) + "\n").encode("ascii")
        self._send_body(status, body, extra_headers)

    def _send_error_json(
        self, status: int, message: str,
        details: Optional[List[Dict[str, str]]] = None,
        retry_after: Optional[int] = None,
    ) -> None:
        document: Dict[str, Any] = {"error": message}
        if details is not None:
            document["details"] = details
        headers = (
            {"Retry-After": str(retry_after)}
            if retry_after is not None else None
        )
        self._send_json(status, document, headers)

    def _authorized(self) -> bool:
        """True when no token is configured or the request bears it.

        Constant-time comparison: an attacker probing byte by byte
        learns nothing from response timing.
        """
        token = self.service.config.auth_token
        if token is None:
            return True
        supplied = self.headers.get("Authorization", "")
        return hmac.compare_digest(supplied, f"Bearer {token}")

    def _read_json_body(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise _BadRequest("missing or invalid Content-Length")
        if length > self.service.config.max_body_bytes:
            raise _BodyTooLarge(
                f"body exceeds {self.service.config.max_body_bytes} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw or b"{}")
        except ValueError:
            raise _BadRequest("request body is not valid JSON")

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802  (http.server convention)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._send_json(200, {"ok": True})
            elif path == "/readyz":
                document = self.service.readiness_document()
                if document["ready"]:
                    self._send_json(200, document)
                else:
                    self._send_json(
                        503, document,
                        {"Retry-After":
                         str(self.service.retry_after_estimate())},
                    )
            elif path == "/campaigns":
                self._send_json(
                    200, {"campaigns": self.service.list_campaigns()}
                )
            elif path.startswith("/campaigns/") and path.endswith("/result"):
                cid = path[len("/campaigns/"):-len("/result")]
                text = self.service.result(cid)
                self._send_body(200, (text + "\n").encode("ascii"))
            elif path.startswith("/campaigns/"):
                cid = path[len("/campaigns/"):]
                self._send_json(200, self.service.status(cid))
            else:
                self._send_error_json(404, f"no route {path}")
        except UnknownCampaignError as exc:
            self._send_error_json(404, str(exc))
        except ResultNotReadyError as exc:
            self._send_error_json(
                409, str(exc),
                retry_after=(
                    self.service.retry_after_estimate()
                    if exc.state not in TERMINAL_STATES else None
                ),
            )
        except Exception:
            logger.exception("GET %s failed", path)
            self._send_error_json(500, "internal error")

    def do_POST(self) -> None:  # noqa: N802
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            # Every POST mutates campaign state; all of them require
            # the bearer token when one is configured.  Probes and
            # reads (GET /healthz, /readyz, statuses) stay open.
            if not self._authorized():
                self._send_json(
                    401, {"error": "missing or invalid bearer token"},
                    {"WWW-Authenticate": "Bearer"},
                )
                return
            if path == "/campaigns":
                payload = self._read_json_body()
                accepted, document = self.service.submit(payload)
                self._send_json(202 if accepted else 200, document)
            elif path.startswith("/campaigns/") and path.endswith("/cancel"):
                cid = path[len("/campaigns/"):-len("/cancel")]
                self._send_json(202, self.service.cancel(cid))
            else:
                self._send_error_json(404, f"no route {path}")
        except SpecValidationError as exc:
            self._send_error_json(400, "invalid campaign spec", exc.details)
        except _BadRequest as exc:
            self._send_error_json(400, str(exc))
        except _BodyTooLarge as exc:
            self._send_error_json(413, str(exc))
        except QueueFullError as exc:
            self._send_error_json(
                429, str(exc),
                retry_after=self.service.retry_after_estimate(),
            )
        except ShuttingDownError as exc:
            self._send_error_json(
                503, str(exc),
                retry_after=self.service.retry_after_estimate(),
            )
        except UnknownCampaignError as exc:
            self._send_error_json(404, str(exc))
        except ServiceError as exc:
            self._send_error_json(409, str(exc))
        except Exception:
            logger.exception("POST %s failed", path)
            self._send_error_json(500, "internal error")


class _BadRequest(ServiceError):
    pass


class _BodyTooLarge(ServiceError):
    pass


class CampaignHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True  # lingering keep-alives never block shutdown

    def __init__(self, address, service: CampaignService) -> None:
        super().__init__(address, CampaignRequestHandler)
        self.service = service


# ----------------------------------------------------------------------
# Daemon entry point
# ----------------------------------------------------------------------


def run_service(
    host: str,
    port: int,
    config: ServiceConfig,
    *,
    drain_timeout: Optional[float] = 60.0,
    stream=None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the exit code.

    Prints one ``listening on http://HOST:PORT`` line (flushed) once
    the socket is bound — with ``port=0`` this is how callers learn the
    real port.  On signal: admissions close, the in-flight campaign
    drains cooperatively, a checkpoint is journaled, and the process
    exits 0 (1 only if the drain timed out).
    """
    stream = stream if stream is not None else sys.stdout
    service = CampaignService(config)
    server = CampaignHTTPServer((host, port), service)
    service.start()

    def request_shutdown(signum, frame) -> None:
        service.begin_shutdown()
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, request_shutdown)
    bound_host, bound_port = server.server_address[:2]
    print(f"listening on http://{bound_host}:{bound_port}",
          file=stream, flush=True)
    if service.resumed:
        print(f"resuming {service.resumed} interrupted campaign(s)",
              file=stream, flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
    service.begin_shutdown()
    clean = service.drain(drain_timeout)
    print("drained; journal checkpointed", file=stream, flush=True)
    return 0 if clean else 1
