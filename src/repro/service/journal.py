"""Crash-safe campaign journal: the service's source of truth on disk.

The daemon journals every externally visible lifecycle fact *before*
acknowledging it — a campaign is journaled ``submitted`` before the
202 goes out, every state transition is journaled as it happens, and
the final ``done``/``partial`` record carries the canonical result
document.  After any crash — ``kill -9`` included — a restarted
service replays the journal and knows every campaign ever accepted,
its last state, and its result if it finished; campaigns that were
queued or running resume (their completed units are already in the
shared result ledger, so only the missing units recompute).

The file discipline is exactly the result ledger's
(:mod:`repro.experiments.ledger`): one JSON object per line, each
append a single ``os.write`` on an ``O_APPEND`` descriptor followed by
``fsync``; a torn trailing line (crash mid-append) is sealed with a
newline before the first new append and skipped with a warning on
replay; corrupt interior lines are likewise skipped.  Each line is
``{"v": 1, "body": {...}, "sha": sha256(canonical_json(body))}`` — the
digest catches bit rot the same way the ledger's ``psha`` does.

Record bodies (``body["event"]``):

* ``submitted`` — ``{"event", "id", "spec", "ts"}``; ``spec`` is the
  canonical defaults-filled document the id hashes.
* ``state`` — ``{"event", "id", "state", "ts"}`` plus, on terminal
  records, ``"executed"``, ``"ledger_hits"``, ``"failures"`` and (for
  ``done``/``partial``) ``"result"``: the result document.
* ``checkpoint`` — ``{"event", "ts", "reason"}``; written by graceful
  shutdown after the drain, so an operator can see clean stops in the
  journal.  Replay ignores it for state.

Replay folds records in file order: last state wins, exactly one
``submitted`` per id counts (duplicates are impossible through the
service API, which journals only the first), unknown-id state records
are skipped with a warning.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.experiments.canonical import canonical_bytes, canonical_json, sha256_hex

logger = logging.getLogger("repro.service.journal")

_JOURNAL_VERSION = 1

#: Events replay folds into campaign state.
_STATE_EVENTS = frozenset({"submitted", "state"})


class CampaignJournal:
    """Append-only, fsynced journal of campaign lifecycle records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fd: Optional[int] = None

    # -- appends -------------------------------------------------------

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            self._seal_torn_tail(self._fd)
        return self._fd

    def _seal_torn_tail(self, fd: int) -> None:
        """Newline-terminate a torn tail so new appends stay parseable."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                last = handle.read(1)
        except OSError:
            return
        if last != b"\n":
            os.write(fd, b"\n")
            os.fsync(fd)

    @staticmethod
    def encode_record(body: Dict[str, Any]) -> bytes:
        """One complete journal line for ``body`` (digest included)."""
        sha = sha256_hex(canonical_bytes(body))
        line = canonical_json(
            {"v": _JOURNAL_VERSION, "body": body, "sha": sha}
        )
        return (line + "\n").encode("ascii")

    def append(self, body: Dict[str, Any]) -> None:
        """Durably append one record; returns only after ``fsync``."""
        line = self.encode_record(body)
        fd = self._ensure_fd()
        os.write(fd, line)
        os.fsync(fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- replay --------------------------------------------------------

    def replay(self) -> Tuple[Dict[str, Dict[str, Any]], int]:
        """Reconstruct every campaign's last journaled state.

        Returns ``(campaigns, dropped)``: an insertion-ordered dict
        ``id -> {"spec", "state", "ts", "result", "executed",
        "ledger_hits", "failures", "error"}`` (fields beyond ``spec``/
        ``state`` present when the winning records carried them), and
        the count of torn/corrupt lines skipped.
        """
        campaigns: Dict[str, Dict[str, Any]] = {}
        dropped = 0
        if not self.path.exists():
            return campaigns, dropped
        data = self.path.read_bytes()
        lines = data.split(b"\n")
        for lineno, line in enumerate(lines, start=1):
            if not line:
                continue
            body = self._parse_line(line, lineno, torn=(lineno == len(lines)))
            if body is None:
                dropped += 1
                continue
            event = body.get("event")
            if event == "submitted":
                cid = body.get("id")
                spec = body.get("spec")
                if not isinstance(cid, str) or not isinstance(spec, dict):
                    logger.warning(
                        "%s: malformed submitted record at line %d",
                        self.path, lineno,
                    )
                    dropped += 1
                    continue
                entry = campaigns.setdefault(
                    cid, {"spec": spec, "state": "queued"}
                )
                entry["spec"] = spec
                entry.setdefault("ts", body.get("ts"))
            elif event == "state":
                cid = body.get("id")
                state = body.get("state")
                if not isinstance(cid, str) or not isinstance(state, str):
                    logger.warning(
                        "%s: malformed state record at line %d",
                        self.path, lineno,
                    )
                    dropped += 1
                    continue
                entry = campaigns.get(cid)
                if entry is None:
                    logger.warning(
                        "%s: state record for unknown campaign %s at "
                        "line %d; skipping", self.path, cid[:12], lineno,
                    )
                    dropped += 1
                    continue
                entry["state"] = state
                entry["ts"] = body.get("ts", entry.get("ts"))
                for field in (
                    "result", "executed", "ledger_hits", "failures", "error"
                ):
                    if field in body:
                        entry[field] = body[field]
            elif event == "checkpoint":
                continue
            else:
                logger.warning(
                    "%s: unknown event %r at line %d; skipping",
                    self.path, event, lineno,
                )
                dropped += 1
        return campaigns, dropped

    def _parse_line(self, line: bytes, lineno: int, torn: bool):
        where = "torn trailing" if torn else "corrupt"
        try:
            record = json.loads(line)
        except ValueError:
            logger.warning(
                "%s: skipping %s record at line %d (unparseable JSON)",
                self.path, where, lineno,
            )
            return None
        if (
            not isinstance(record, dict)
            or record.get("v") != _JOURNAL_VERSION
            or not isinstance(record.get("body"), dict)
            or not isinstance(record.get("sha"), str)
        ):
            logger.warning(
                "%s: skipping %s record at line %d (missing/invalid fields)",
                self.path, where, lineno,
            )
            return None
        body = record["body"]
        try:
            digest = sha256_hex(canonical_bytes(body))
        except Exception:
            digest = None
        if digest != record["sha"]:
            logger.warning(
                "%s: skipping %s record at line %d (body digest mismatch)",
                self.path, where, lineno,
            )
            return None
        return body
