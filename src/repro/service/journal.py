"""Crash-safe campaign journal: the service's source of truth on disk.

The daemon journals every externally visible lifecycle fact *before*
acknowledging it — a campaign is journaled ``submitted`` before the
202 goes out, every state transition is journaled as it happens, and
the final ``done``/``partial`` record carries the canonical result
document.  After any crash — ``kill -9`` included — a restarted
service replays the journal and knows every campaign ever accepted,
its last state, and its result if it finished; campaigns that were
queued or running resume (their completed units are already in the
shared result ledger, so only the missing units recompute).

The file discipline is exactly the result ledger's
(:mod:`repro.experiments.ledger`): one JSON object per line, each
append a single ``os.write`` on an ``O_APPEND`` descriptor followed by
``fsync``; a torn trailing line (crash mid-append) is sealed with a
newline before the first new append and skipped with a warning on
replay; corrupt interior lines are likewise skipped.  Each line is
``{"v": 1, "body": {...}, "sha": sha256(canonical_json(body))}`` — the
digest catches bit rot the same way the ledger's ``psha`` does.

Record bodies (``body["event"]``):

* ``submitted`` — ``{"event", "id", "spec", "ts"}``; ``spec`` is the
  canonical defaults-filled document the id hashes.
* ``state`` — ``{"event", "id", "state", "ts"}`` plus, on terminal
  records, ``"executed"``, ``"ledger_hits"``, ``"failures"`` and (for
  ``done``/``partial``) ``"result"``: the result document.
* ``checkpoint`` — ``{"event", "ts", "reason"}``; written by graceful
  shutdown after the drain, so an operator can see clean stops in the
  journal.  Replay ignores it for state.
* ``snapshot`` — ``{"event", "ts", "campaigns": [entry...]}``; one
  folded entry per campaign (the same shape :meth:`replay` returns,
  plus ``"id"``).  Written by :meth:`compact` as the sole record of a
  rotated journal; every append after it is the *tail*, and replay of
  snapshot+tail reconstructs exactly what replaying the unrotated file
  would have.

Replay folds records in file order: last state wins, exactly one
``submitted`` per id counts (duplicates are impossible through the
service API, which journals only the first), unknown-id state records
are skipped with a warning, a ``snapshot`` replaces everything known
about the campaigns it lists.

**Rotation** gives the journal the ledger's lifecycle treatment: the
file grows with every lifecycle fact by design, so :meth:`compact`
atomically rewrites it as a single snapshot record (temp sibling +
``fsync`` + ``os.replace`` + directory fsync — the exact discipline of
:meth:`repro.experiments.ledger.ResultLedger.compact`), optionally
evicting *terminal* campaigns older than an age bound (non-terminal
campaigns are never evicted: dropping one would forget accepted work).
:meth:`maybe_compact` is the size-triggered form the live service
calls after appends.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.experiments.canonical import canonical_bytes, canonical_json, sha256_hex
from repro.service.state import TERMINAL_STATES

logger = logging.getLogger("repro.service.journal")

_JOURNAL_VERSION = 1

#: Events replay folds into campaign state.
_STATE_EVENTS = frozenset({"submitted", "state"})


class CampaignJournal:
    """Append-only, fsynced journal of campaign lifecycle records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fd: Optional[int] = None
        #: Size of the snapshot the last :meth:`compact` wrote — the
        #: floor below which :meth:`maybe_compact` refuses to thrash.
        self._last_compact_bytes = 0

    # -- appends -------------------------------------------------------

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            self._seal_torn_tail(self._fd)
        return self._fd

    def _seal_torn_tail(self, fd: int) -> None:
        """Newline-terminate a torn tail so new appends stay parseable."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                last = handle.read(1)
        except OSError:
            return
        if last != b"\n":
            os.write(fd, b"\n")
            os.fsync(fd)

    @staticmethod
    def encode_record(body: Dict[str, Any]) -> bytes:
        """One complete journal line for ``body`` (digest included)."""
        sha = sha256_hex(canonical_bytes(body))
        line = canonical_json(
            {"v": _JOURNAL_VERSION, "body": body, "sha": sha}
        )
        return (line + "\n").encode("ascii")

    def append(self, body: Dict[str, Any]) -> None:
        """Durably append one record; returns only after ``fsync``."""
        line = self.encode_record(body)
        fd = self._ensure_fd()
        os.write(fd, line)
        os.fsync(fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- replay --------------------------------------------------------

    def replay(self) -> Tuple[Dict[str, Dict[str, Any]], int]:
        """Reconstruct every campaign's last journaled state.

        Returns ``(campaigns, dropped)``: an insertion-ordered dict
        ``id -> {"spec", "state", "ts", "result", "executed",
        "ledger_hits", "failures", "error"}`` (fields beyond ``spec``/
        ``state`` present when the winning records carried them), and
        the count of torn/corrupt lines skipped.
        """
        campaigns: Dict[str, Dict[str, Any]] = {}
        dropped = 0
        if not self.path.exists():
            return campaigns, dropped
        data = self.path.read_bytes()
        lines = data.split(b"\n")
        for lineno, line in enumerate(lines, start=1):
            if not line:
                continue
            body = self._parse_line(line, lineno, torn=(lineno == len(lines)))
            if body is None:
                dropped += 1
                continue
            event = body.get("event")
            if event == "submitted":
                cid = body.get("id")
                spec = body.get("spec")
                if not isinstance(cid, str) or not isinstance(spec, dict):
                    logger.warning(
                        "%s: malformed submitted record at line %d",
                        self.path, lineno,
                    )
                    dropped += 1
                    continue
                entry = campaigns.setdefault(
                    cid, {"spec": spec, "state": "queued"}
                )
                entry["spec"] = spec
                entry.setdefault("ts", body.get("ts"))
            elif event == "state":
                cid = body.get("id")
                state = body.get("state")
                if not isinstance(cid, str) or not isinstance(state, str):
                    logger.warning(
                        "%s: malformed state record at line %d",
                        self.path, lineno,
                    )
                    dropped += 1
                    continue
                entry = campaigns.get(cid)
                if entry is None:
                    logger.warning(
                        "%s: state record for unknown campaign %s at "
                        "line %d; skipping", self.path, cid[:12], lineno,
                    )
                    dropped += 1
                    continue
                entry["state"] = state
                entry["ts"] = body.get("ts", entry.get("ts"))
                for field in (
                    "result", "executed", "ledger_hits", "failures", "error"
                ):
                    if field in body:
                        entry[field] = body[field]
            elif event == "snapshot":
                listed = body.get("campaigns")
                if not isinstance(listed, list):
                    logger.warning(
                        "%s: malformed snapshot record at line %d",
                        self.path, lineno,
                    )
                    dropped += 1
                    continue
                for item in listed:
                    if not isinstance(item, dict):
                        continue
                    cid = item.get("id")
                    spec = item.get("spec")
                    if not isinstance(cid, str) or not isinstance(spec, dict):
                        logger.warning(
                            "%s: malformed snapshot entry at line %d",
                            self.path, lineno,
                        )
                        continue
                    entry = {k: v for k, v in item.items() if k != "id"}
                    entry.setdefault("state", "queued")
                    # The snapshot supersedes everything known so far
                    # about this campaign (it *is* the fold of every
                    # earlier record), and fixes the listing order.
                    campaigns.pop(cid, None)
                    campaigns[cid] = entry
            elif event == "checkpoint":
                continue
            else:
                logger.warning(
                    "%s: unknown event %r at line %d; skipping",
                    self.path, event, lineno,
                )
                dropped += 1
        return campaigns, dropped

    # -- rotation ------------------------------------------------------

    def size(self) -> int:
        """Current on-disk size in bytes (0 when the file is missing)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def compact(
        self,
        *,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Atomically rewrite the journal as one snapshot record.

        The replacement holds a single ``snapshot`` record folding the
        current file (snapshot + tail included, recursively), written
        with the ledger-compaction discipline: temp sibling, ``fsync``,
        ``os.replace``, directory fsync — a crash at any instant leaves
        either the old or the new complete file, never a torn one.

        With ``max_age_seconds`` set, **terminal** campaigns whose last
        transition is older than the bound are evicted; queued/running
        campaigns survive any age — evicting one would silently forget
        accepted work.  Returns a summary dict (``campaigns``,
        ``evicted``, ``dropped``, ``bytes_before``, ``bytes_after``).
        """
        now = time.time() if now is None else now
        bytes_before = self.size()
        entries, dropped = self.replay()
        evicted = 0
        survivors: Dict[str, Dict[str, Any]] = {}
        for cid, entry in entries.items():
            if (
                max_age_seconds is not None
                and entry.get("state") in TERMINAL_STATES
                and (entry.get("ts") or 0.0) < now - max_age_seconds
            ):
                evicted += 1
                continue
            survivors[cid] = entry
        line = self.encode_record(
            {
                "event": "snapshot",
                "ts": now,
                "campaigns": [
                    dict(entry, id=cid) for cid, entry in survivors.items()
                ],
            }
        )
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, line)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self.path)
        dir_fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        self._last_compact_bytes = len(line)
        return {
            "campaigns": len(survivors),
            "evicted": evicted,
            "dropped": dropped,
            "bytes_before": bytes_before,
            "bytes_after": len(line),
        }

    def maybe_compact(self, max_bytes: int) -> bool:
        """Rotate if the journal has outgrown ``max_bytes``.

        Thrash guard: when the snapshot itself exceeds the bound (many
        live campaigns, a small bound), compacting after every append
        would be O(n²) — so rotation also waits until the file has
        doubled past the last snapshot.  Returns True when it rotated.
        """
        size = self.size()
        if size <= max_bytes:
            return False
        if size < 2 * self._last_compact_bytes:
            return False
        summary = self.compact()
        logger.info(
            "%s: rotated at %d bytes -> %d-byte snapshot of %d campaign(s)",
            self.path, summary["bytes_before"], summary["bytes_after"],
            summary["campaigns"],
        )
        return True

    def stats(self) -> Dict[str, Any]:
        """Operational summary: records, folded campaigns, liveness."""
        records = 0
        snapshots = 0
        if self.path.exists():
            for line in self.path.read_bytes().split(b"\n"):
                if not line:
                    continue
                records += 1
                try:
                    obj = json.loads(line)
                except ValueError:
                    continue
                if (
                    isinstance(obj, dict)
                    and isinstance(obj.get("body"), dict)
                    and obj["body"].get("event") == "snapshot"
                ):
                    snapshots += 1
        entries, dropped = self.replay()
        active = sum(
            1 for entry in entries.values()
            if entry.get("state") not in TERMINAL_STATES
        )
        return {
            "path": str(self.path),
            "file_bytes": self.size(),
            "records": records,
            "snapshots": snapshots,
            "campaigns": len(entries),
            "active_campaigns": active,
            "dropped_records": dropped,
        }

    def _parse_line(self, line: bytes, lineno: int, torn: bool):
        where = "torn trailing" if torn else "corrupt"
        try:
            record = json.loads(line)
        except ValueError:
            logger.warning(
                "%s: skipping %s record at line %d (unparseable JSON)",
                self.path, where, lineno,
            )
            return None
        if (
            not isinstance(record, dict)
            or record.get("v") != _JOURNAL_VERSION
            or not isinstance(record.get("body"), dict)
            or not isinstance(record.get("sha"), str)
        ):
            logger.warning(
                "%s: skipping %s record at line %d (missing/invalid fields)",
                self.path, where, lineno,
            )
            return None
        body = record["body"]
        try:
            digest = sha256_hex(canonical_bytes(body))
        except Exception:
            digest = None
        if digest != record["sha"]:
            logger.warning(
                "%s: skipping %s record at line %d (body digest mismatch)",
                self.path, where, lineno,
            )
            return None
        return body
