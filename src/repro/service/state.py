"""Campaign lifecycle state machine and the in-memory campaign record.

A campaign moves through a small, explicitly validated state machine::

    queued ──▶ running ──▶ done        (complete, result available)
      │           │  ├───▶ partial     (finished; some units failed)
      │           │  ├───▶ failed      (campaign-level error)
      │           │  └───▶ cancelled   (client cancel drained in-flight)
      │           └──────▶ queued      (requeued: shutdown or restart)
      └──────────────────▶ cancelled   (cancelled while still queued)

    cancelled ──▶ queued               (resubmitted: a fresh attempt)
    failed ─────▶ queued               (resubmitted: a fresh attempt)

``done`` and ``partial`` are frozen: their result document is journaled
and resubmitting the same spec returns it without re-executing
(idempotency).  ``failed`` and ``cancelled`` may be *requeued* by
resubmission — the campaign id stays the same, and any units completed
before the failure/cancel are answered from the shared result ledger.
``running -> queued`` is the graceful-shutdown/crash-recovery edge: the
interrupted campaign re-enters the queue and resumes where the ledger
says it left off.

Every transition goes through :func:`advance`, which raises
:class:`~repro.errors.ServiceError` on anything not listed above — a
lifecycle bug becomes a loud error, never silent state corruption.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
PARTIAL = "partial"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a campaign never leaves on its own.
TERMINAL_STATES = frozenset({DONE, PARTIAL, FAILED, CANCELLED})

#: States from which resubmission starts a fresh attempt.
REQUEUEABLE_STATES = frozenset({FAILED, CANCELLED})

_TRANSITIONS = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, PARTIAL, FAILED, CANCELLED, QUEUED}),
    DONE: frozenset(),
    PARTIAL: frozenset(),
    FAILED: frozenset({QUEUED}),
    CANCELLED: frozenset({QUEUED}),
}


def advance(current: str, new: str) -> str:
    """Validate one lifecycle transition; return the new state."""
    allowed = _TRANSITIONS.get(current)
    if allowed is None:
        raise ServiceError(f"unknown campaign state {current!r}")
    if new not in allowed:
        raise ServiceError(
            f"invalid campaign transition {current!r} -> {new!r}"
        )
    return new


@dataclass
class Campaign:
    """One submitted campaign: spec identity plus live execution state.

    ``spec_document`` is the canonical (defaults-filled) spec the id
    was hashed from — the journal stores exactly this document, so a
    recovered service re-derives the identical id.  ``result_json`` is
    the canonical-JSON result document, set exactly once when the
    campaign reaches ``done``/``partial`` and served byte-identically
    ever after (including across restarts, via the journal).
    """

    campaign_id: str
    spec_document: Dict[str, Any]
    state: str = QUEUED
    submitted_at: float = 0.0
    updated_at: float = 0.0
    total_units: int = 0
    resolved_units: int = 0
    executed: int = 0
    ledger_hits: int = 0
    failures: List[Dict[str, Any]] = field(default_factory=list)
    result_json: Optional[str] = None
    error: Optional[str] = None
    #: Set by cancel/shutdown; the supervisor watches it cooperatively.
    stop_event: threading.Event = field(default_factory=threading.Event)
    #: True when the stop was a client cancel (vs a server shutdown).
    cancel_requested: bool = False
    #: Executor lane currently running this campaign, or ``None``.
    #: Lanes are isolation domains: a poisoned, hung, or cancelled
    #: campaign occupies only its own lane.
    lane: Optional[int] = None

    def advance(self, new_state: str, *, at: float) -> None:
        self.state = advance(self.state, new_state)
        self.updated_at = at

    def reset_for_requeue(self) -> None:
        """Prepare a fresh attempt (resubmit of failed/cancelled)."""
        self.stop_event = threading.Event()
        self.cancel_requested = False
        self.lane = None
        self.resolved_units = 0
        self.executed = 0
        self.ledger_hits = 0
        self.failures = []
        self.error = None

    def status_document(
        self, *, queue_position: Optional[int] = None
    ) -> Dict[str, Any]:
        """The JSON body of ``GET /campaigns/{id}``."""
        doc: Dict[str, Any] = {
            "id": self.campaign_id,
            "state": self.state,
            "spec": self.spec_document,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "progress": {
                "total_units": self.total_units,
                "resolved_units": self.resolved_units,
                "failed_units": len(self.failures),
            },
            "executed": self.executed,
            "ledger_hits": self.ledger_hits,
            "failures": self.failures,
        }
        if queue_position is not None:
            doc["queue_position"] = queue_position
        if self.lane is not None:
            doc["lane"] = self.lane
        if self.error is not None:
            doc["error"] = self.error
        if self.cancel_requested and self.state == RUNNING:
            doc["cancelling"] = True
        return doc
