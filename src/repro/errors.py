"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class TopologyError(ReproError):
    """An AS graph is malformed or violates a structural assumption."""


class CyclicHierarchyError(TopologyError):
    """The customer-provider relationships contain a cycle.

    The paper (and Gao-Rexford safety) assumes the provider hierarchy is
    acyclic; topologies violating this are rejected at construction.
    """


class UnknownASError(TopologyError):
    """An operation referenced an AS that is not in the graph."""


class UnknownLinkError(TopologyError):
    """An operation referenced a link that is not in the graph."""


class SimulationError(ReproError):
    """The discrete-event engine was driven incorrectly."""


class ConvergenceError(SimulationError):
    """A protocol failed to converge within the configured horizon."""


class ProtocolError(ReproError):
    """A routing process violated one of its own invariants."""


class ConfigurationError(ReproError):
    """An experiment or generator was configured inconsistently."""


class CampaignError(ReproError):
    """A campaign finished with terminally failed units.

    Raised only by APIs that promise a complete result list; the
    ``outcome`` attribute carries the partial
    ``SupervisedOutcome`` (completed results plus the structured
    failure report), so nothing the campaign computed is lost.
    """

    def __init__(self, message: str, *, outcome=None) -> None:
        super().__init__(message)
        self.outcome = outcome


class ParseError(ReproError):
    """A serialized topology or routing table could not be parsed."""


class LedgerMergeError(ReproError):
    """Two ledgers cannot be merged safely.

    Raised when the inputs declare different ``LEDGER_SALT`` values or
    contain records of a different format version — merging them would
    produce a ledger whose keys silently mean different things.
    """


class ServiceError(ReproError):
    """The campaign service was driven incorrectly.

    Covers invalid lifecycle transitions (cancelling a finished
    campaign, fetching the result of one still running) and journal
    misuse; the HTTP layer maps these onto structured 4xx responses.
    """


class SpecValidationError(ServiceError):
    """A submitted campaign spec failed validation.

    ``details`` is a list of ``{"field": ..., "message": ...}`` dicts —
    one entry per offending field — which the service returns verbatim
    in the structured 400 response body.
    """

    def __init__(self, details) -> None:
        message = "; ".join(
            f"{d['field']}: {d['message']}" for d in details
        ) or "invalid campaign spec"
        super().__init__(message)
        self.details = list(details)
