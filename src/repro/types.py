"""Shared primitive types used across the reproduction.

The paper models the Internet at the AS level: each AS is a single node,
links between ASes carry a business relationship (customer-provider or
peer-peer), and routing operates on one destination prefix at a time.
This module defines the small vocabulary of enums and aliases every
other package builds on.
"""

from __future__ import annotations

import enum
from typing import Tuple

#: Autonomous system number.  Plain ints keep the simulator fast.
ASN = int

#: An AS-level path, origin last (``path[0]`` is the AS announcing to us,
#: ``path[-1]`` is the origin of the prefix).  Matches AS_PATH reading
#: order in BGP updates.
ASPath = Tuple[ASN, ...]

#: A directed or undirected AS adjacency, stored as an (a, b) pair.
Link = Tuple[ASN, ASN]


class Relationship(enum.Enum):
    """Business relationship of a neighbor, from the local AS viewpoint.

    ``CUSTOMER`` means the neighbor is *our customer* (we are its
    provider); ``PROVIDER`` means the neighbor is *our provider*;
    ``PEER`` is a settlement-free peer.
    """

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"

    @property
    def inverse(self) -> "Relationship":
        """Relationship as seen from the other end of the link."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


#: Preference order used by the Gao-Rexford "prefer customer" policy.
#: Higher is better.
RELATIONSHIP_PREFERENCE = {
    Relationship.CUSTOMER: 2,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 0,
}


class Color(enum.Enum):
    """Identity of one of STAMP's two parallel routing processes."""

    RED = "red"
    BLUE = "blue"

    @property
    def other(self) -> "Color":
        """The complementary process color."""
        return Color.BLUE if self is Color.RED else Color.RED


class EventType(enum.IntEnum):
    """STAMP's 1-bit ET path attribute (paper section 5.2).

    ``LOSS`` (0) marks updates ultimately caused by losing a route; any
    other update carries ``NO_LOSS`` (1).
    """

    LOSS = 0
    NO_LOSS = 1


class Outcome(enum.Enum):
    """Result of walking the data plane from an AS toward a destination."""

    DELIVERED = "delivered"
    LOOP = "loop"
    BLACKHOLE = "blackhole"

    @property
    def is_problem(self) -> bool:
        """Whether this outcome counts as a transient routing problem."""
        return self is not Outcome.DELIVERED


# Enum.__hash__ is a Python-level call (hash of the member name) and
# Color/Outcome sit inside dict keys and read-sets on the data-plane
# walk hot path; members are singletons, so the C-level identity hash
# is equivalent (equality is already identity) and much faster.
Color.__hash__ = object.__hash__  # type: ignore[method-assign]
Outcome.__hash__ = object.__hash__  # type: ignore[method-assign]


def normalize_link(a: ASN, b: ASN) -> Link:
    """Canonical undirected representation of the link between two ASes."""
    return (a, b) if a <= b else (b, a)
