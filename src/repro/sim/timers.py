"""Per-peer MRAI (Minimum Route Advertisement Interval) pacing.

The paper configures a peer-based MRAI of 30 seconds multiplied by a
random factor uniform in [0.75, 1.0]; following common router behavior
(and the original Labovitz analysis) withdrawals are not rate-limited
unless configured otherwise.

The pacer is the speaker's batching point: between the instant a
decision change marks a peer stale and the instant MRAI allows the next
advertisement, any number of further changes *coalesce* — the armed
timer is left untouched and the speaker advertises only its latest
state when the timer fires.  Coalescing cannot reorder deliveries: it
only ever drops intermediate states that the peer would have observed
strictly between two messages on the same FIFO session, never the
messages themselves, and the flush always re-reads the speaker's
current Adj-RIB-Out state at fire time.

Timers are armed on the engine's far timer wheel (they sit 0-30 s out),
so arm, cancel, and re-arm are all O(1); the per-peer flush callback is
created once and pooled, so steady-state pacing allocates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Engine, EventHandle
from repro.types import ASN


@dataclass(frozen=True)
class MRAIConfig:
    """MRAI parameters (paper defaults)."""

    base: float = 30.0
    jitter_low: float = 0.75
    jitter_high: float = 1.0
    #: Whether withdrawals are subject to MRAI pacing (WRATE).  Off by
    #: default, matching common implementations.
    applies_to_withdrawals: bool = False

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigurationError("MRAI base must be non-negative")
        if not 0 <= self.jitter_low <= self.jitter_high:
            raise ConfigurationError("invalid MRAI jitter bounds")

    @property
    def disabled(self) -> bool:
        """A zero base disables pacing: every send is immediate.

        Purely a predicate for callers and tests — the pacer needs no
        special casing, because ``base * jitter == 0`` already makes
        ``try_send_now`` grant every request on the spot.
        """
        return self.base == 0


class MRAIPacer:
    """Rate-limits advertisements from one speaker to its peers.

    Each peer gets a fixed per-peer interval drawn once (base x jitter).
    ``request_send(peer)`` either fires the flush callback immediately
    (restarting the interval) or arms a timer for the earliest allowed
    instant; repeated requests while armed coalesce, mirroring how a BGP
    speaker advertises only its latest state when the timer expires.

    Speakers that already know what they would flush can instead call
    :meth:`try_send_now`, which claims the send slot without invoking
    the flush callback — the caller emits the precomputed update itself,
    skipping a redundant export computation (see
    :meth:`repro.bgp.speaker.BGPSpeaker.refresh_peer`).
    """

    def __init__(
        self,
        engine: Engine,
        config: MRAIConfig,
        flush: Callable[[ASN], None],
    ) -> None:
        self._engine = engine
        self._config = config
        self._flush = flush
        self._interval: Dict[ASN, float] = {}
        self._next_allowed: Dict[ASN, float] = {}
        self._armed: Dict[ASN, EventHandle] = {}
        #: Pooled per-peer timer callbacks: one ``partial`` per peer for
        #: the pacer's lifetime instead of one closure per arm.
        self._timer_callbacks: Dict[ASN, Callable[[], None]] = {}

    def __getstate__(self):
        """Pickle without the pooled callbacks (rebuilt lazily on arm)."""
        state = self.__dict__.copy()
        state["_timer_callbacks"] = {}
        return state

    def interval_for(self, peer: ASN) -> float:
        """The fixed MRAI interval used toward one peer."""
        interval = self._interval.get(peer)
        if interval is None:
            jitter = self._engine.rng.uniform(
                self._config.jitter_low, self._config.jitter_high
            )
            interval = self._interval[peer] = self._config.base * jitter
        return interval

    def try_send_now(self, peer: ASN, *, is_withdrawal: bool = False) -> bool:
        """Claim an immediate send slot toward ``peer`` if MRAI allows.

        Returns ``True`` when the caller may (and must) send right now:
        the interval is restarted exactly as a flush-callback fire would
        have (withdrawal bypass sends never restart it).  Returns
        ``False`` after arming the coalescing timer for the earliest
        allowed instant — the flush callback will run then.
        """
        if is_withdrawal and not self._config.applies_to_withdrawals:
            return True
        now = self._engine._now
        if now >= self._next_allowed.get(peer, 0.0):
            interval = self._interval.get(peer)
            if interval is None:
                interval = self.interval_for(peer)
            self._next_allowed[peer] = now + interval
            return True
        self._arm(peer)
        return False

    def request_send(self, peer: ASN, *, is_withdrawal: bool = False) -> None:
        """Ask to advertise to ``peer`` as soon as MRAI allows."""
        if self.try_send_now(peer, is_withdrawal=is_withdrawal):
            self._flush(peer)

    def _arm(self, peer: ASN) -> None:
        if peer in self._armed:
            return
        callback = self._timer_callbacks.get(peer)
        if callback is None:
            callback = self._timer_callbacks[peer] = partial(self._on_timer, peer)
        self._armed[peer] = self._engine.schedule_at(
            self._next_allowed[peer], callback
        )

    def cancel(self, peer: ASN) -> None:
        """Drop any armed timer toward a peer (e.g., session went down).

        With the far timer wheel this is O(1): the cancelled timer is
        removed from its bucket immediately and never reaches the event
        heap.
        """
        handle = self._armed.pop(peer, None)
        if handle is not None:
            handle.cancel()
        self._next_allowed.pop(peer, None)

    def reset(self) -> None:
        """Cancel every armed timer and forget pacing history.

        Used when the owning speaker reboots (an AS-restore episode
        event): a restarted router has no pending advertisements and no
        MRAI debt.  The per-peer jittered *intervals* are kept — they
        model a per-run configuration constant, and re-drawing them
        would consume engine RNG draws the non-rebooting twin of a run
        never makes.
        """
        for handle in self._armed.values():
            handle.cancel()
        self._armed.clear()
        self._next_allowed.clear()

    def _on_timer(self, peer: ASN) -> None:
        self._armed.pop(peer, None)
        self._next_allowed[peer] = self._engine.now + self.interval_for(peer)
        self._flush(peer)

    def dispose(self) -> None:
        """Break reference cycles (pacer ↔ speaker ↔ callbacks).

        Called when the owning network is torn down, so a dead
        simulation frees by reference counting alone — the experiment
        runner pauses cyclic GC during runs and relies on this.
        """
        for handle in self._armed.values():
            handle.cancel()
        self._armed.clear()
        self._timer_callbacks.clear()
        self._flush = _disposed_flush


def _disposed_flush(peer: ASN) -> None:  # pragma: no cover - defensive
    raise RuntimeError("MRAIPacer used after dispose()")
