"""Per-peer MRAI (Minimum Route Advertisement Interval) pacing.

The paper configures a peer-based MRAI of 30 seconds multiplied by a
random factor uniform in [0.75, 1.0]; following common router behavior
(and the original Labovitz analysis) withdrawals are not rate-limited
unless configured otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Engine, EventHandle
from repro.types import ASN


@dataclass(frozen=True)
class MRAIConfig:
    """MRAI parameters (paper defaults)."""

    base: float = 30.0
    jitter_low: float = 0.75
    jitter_high: float = 1.0
    #: Whether withdrawals are subject to MRAI pacing (WRATE).  Off by
    #: default, matching common implementations.
    applies_to_withdrawals: bool = False

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigurationError("MRAI base must be non-negative")
        if not 0 <= self.jitter_low <= self.jitter_high:
            raise ConfigurationError("invalid MRAI jitter bounds")


class MRAIPacer:
    """Rate-limits advertisements from one speaker to its peers.

    Each peer gets a fixed per-peer interval drawn once (base x jitter).
    ``request_send(peer)`` either fires the flush callback immediately
    (restarting the interval) or arms a timer for the earliest allowed
    instant; repeated requests while armed coalesce, mirroring how a BGP
    speaker advertises only its latest state when the timer expires.
    """

    def __init__(
        self,
        engine: Engine,
        config: MRAIConfig,
        flush: Callable[[ASN], None],
    ) -> None:
        self._engine = engine
        self._config = config
        self._flush = flush
        self._interval: Dict[ASN, float] = {}
        self._next_allowed: Dict[ASN, float] = {}
        self._armed: Dict[ASN, EventHandle] = {}

    def interval_for(self, peer: ASN) -> float:
        """The fixed MRAI interval used toward one peer."""
        if peer not in self._interval:
            jitter = self._engine.rng.uniform(
                self._config.jitter_low, self._config.jitter_high
            )
            self._interval[peer] = self._config.base * jitter
        return self._interval[peer]

    def request_send(self, peer: ASN, *, is_withdrawal: bool = False) -> None:
        """Ask to advertise to ``peer`` as soon as MRAI allows."""
        if is_withdrawal and not self._config.applies_to_withdrawals:
            self._fire(peer, restart_timer=False)
            return
        now = self._engine.now
        allowed_at = self._next_allowed.get(peer, 0.0)
        if now >= allowed_at:
            self._fire(peer, restart_timer=True)
            return
        if peer not in self._armed:
            handle = self._engine.schedule_at(
                allowed_at, lambda: self._on_timer(peer)
            )
            self._armed[peer] = handle

    def cancel(self, peer: ASN) -> None:
        """Drop any armed timer toward a peer (e.g., session went down)."""
        handle = self._armed.pop(peer, None)
        if handle is not None:
            handle.cancel()
        self._next_allowed.pop(peer, None)

    def _on_timer(self, peer: ASN) -> None:
        self._armed.pop(peer, None)
        self._fire(peer, restart_timer=True)

    def _fire(self, peer: ASN, *, restart_timer: bool) -> None:
        if restart_timer:
            self._next_allowed[peer] = self._engine.now + self.interval_for(peer)
        self._flush(peer)
