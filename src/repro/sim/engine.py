"""Minimal deterministic discrete-event engine.

Events are callbacks scheduled at absolute simulated times; ties are
broken by insertion order, which (together with seeded RNGs everywhere)
makes every simulation fully reproducible.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "cancelled", "_engine")

    def __init__(self, time: float, engine: "Optional[Engine]" = None) -> None:
        self.time = time
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancelled(self)


class Engine:
    """Event loop with a seeded random stream.

    The single :attr:`rng` is the only source of randomness used by
    protocol machinery (delays, MRAI jitter, blue-provider choices), so
    a fixed seed reproduces a run exactly.
    """

    #: Compaction threshold: never compact below this many cancelled
    #: entries (avoids thrashing on small queues).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._now = 0.0
        self._seq = 0
        self._queue: List[Tuple[float, int, EventHandle, Callable[[], Any]]] = []
        self._events_processed = 0
        self._cancelled_in_queue = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def pending(self) -> int:
        """Number of queued (non-cancelled) events — O(1)."""
        return len(self._queue) - self._cancelled_in_queue

    def _note_cancelled(self, handle: EventHandle) -> None:
        """Account a cancellation; compact when tombstones dominate.

        Cancelled entries stay in the heap (lazy deletion) and are
        skipped on pop; once they make up half of a large queue the heap
        is rebuilt without them, so abandoned MRAI timers cannot
        accumulate unboundedly.
        """
        del handle
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        self._queue = [
            entry for entry in self._queue if not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0

    def schedule(self, delay: float, action: Callable[[], Any]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self._now + delay, self)
        heapq.heappush(self._queue, (handle.time, self._seq, handle, action))
        self._seq += 1
        return handle

    def schedule_at(self, time: float, action: Callable[[], Any]) -> EventHandle:
        """Schedule ``action`` at an absolute simulated time."""
        return self.schedule(time - self._now, action)

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events until the queue drains (or a limit is hit).

        Returns the number of events executed by this call.  ``until``
        stops the clock at an absolute time (later events stay queued);
        ``max_events`` bounds the number of callbacks, raising
        :class:`SimulationError` when exceeded — the backstop against a
        non-converging protocol bug.
        """
        executed = 0
        while self._queue:
            time, _, handle, action = self._queue[0]
            if until is not None and time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            # Detach so a late cancel() of a consumed handle cannot
            # skew the tombstone accounting.
            handle._engine = None
            if handle.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._now = time
            action()
            executed += 1
            self._events_processed += 1
            if max_events is not None and executed >= max_events:
                if self._queue:
                    raise SimulationError(
                        f"exceeded max_events={max_events} with "
                        f"{self.pending()} events still pending"
                    )
        return executed
