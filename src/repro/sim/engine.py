"""Minimal deterministic discrete-event engine.

Events are callbacks scheduled at absolute simulated times; ties are
broken by insertion order, which (together with seeded RNGs everywhere)
makes every simulation fully reproducible.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float) -> None:
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.cancelled = True


class Engine:
    """Event loop with a seeded random stream.

    The single :attr:`rng` is the only source of randomness used by
    protocol machinery (delays, MRAI jitter, blue-provider choices), so
    a fixed seed reproduces a run exactly.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._now = 0.0
        self._seq = 0
        self._queue: List[Tuple[float, int, EventHandle, Callable[[], Any]]] = []
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for _, _, handle, _ in self._queue if not handle.cancelled)

    def schedule(self, delay: float, action: Callable[[], Any]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self._now + delay)
        heapq.heappush(self._queue, (handle.time, self._seq, handle, action))
        self._seq += 1
        return handle

    def schedule_at(self, time: float, action: Callable[[], Any]) -> EventHandle:
        """Schedule ``action`` at an absolute simulated time."""
        return self.schedule(time - self._now, action)

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events until the queue drains (or a limit is hit).

        Returns the number of events executed by this call.  ``until``
        stops the clock at an absolute time (later events stay queued);
        ``max_events`` bounds the number of callbacks, raising
        :class:`SimulationError` when exceeded — the backstop against a
        non-converging protocol bug.
        """
        executed = 0
        while self._queue:
            time, _, handle, action = self._queue[0]
            if until is not None and time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            action()
            executed += 1
            self._events_processed += 1
            if max_events is not None and executed >= max_events:
                if self._queue:
                    raise SimulationError(
                        f"exceeded max_events={max_events} with "
                        f"{self.pending()} events still pending"
                    )
        return executed
