"""Minimal deterministic discrete-event engine on a hierarchical timer wheel.

Events are callbacks scheduled at absolute simulated times; ties are
broken by insertion order, which (together with seeded RNGs everywhere)
makes every simulation fully reproducible.

Internally the queue is split into two tiers:

* a **near heap** — a conventional ``(time, seq)`` binary heap holding
  every event that falls before the current *horizon* (the end of the
  wheel bucket the clock is in).  Message deliveries (10-20 ms ahead)
  almost always land here, so the heap stays small and its ``log n``
  factor cheap.
* a **far wheel** — events at or beyond the horizon are parked in
  coarse time buckets (``BUCKET_WIDTH`` seconds each) as plain dict
  entries keyed by their insertion sequence number.  Arming a timer is
  one dict insert; cancelling one is one dict delete.  This is where
  MRAI timers live: armed ~22-30 s ahead, frequently cancelled or
  re-armed, and with the wheel a cancelled timer **never enters the
  heap at all** — there is no tombstone to skip and nothing to compact.

When the near heap drains, the earliest non-empty bucket is promoted:
its surviving entries are heapified into the near heap (restoring exact
``(time, seq)`` order) and the horizon advances past that bucket.
Promotion preserves the global ordering invariant — the wheel only ever
holds events at or beyond the horizon, the heap only events before it —
so the pop sequence is identical, event for event, to a single global
``(time, seq)`` heap.  The golden determinism test pins this: the wheel
is a data-structure change, not a behavior change.

Events that are never cancelled (message deliveries) can be scheduled
with :meth:`Engine.post_at`, which skips the :class:`EventHandle`
allocation entirely.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError


class EventHandle:
    """Cancellable reference to a scheduled event.

    The handle tracks where its event currently lives: ``_bucket`` is
    the far-wheel bucket index while parked there (cancel = O(1) dict
    delete), ``None`` once the event is in the near heap (cancel =
    lazy tombstone) or consumed.
    """

    __slots__ = ("time", "cancelled", "_engine", "_bucket", "_seq")

    def __init__(
        self,
        time: float,
        engine: "Optional[Engine]" = None,
        bucket: Optional[int] = None,
        seq: int = -1,
    ) -> None:
        self.time = time
        self.cancelled = False
        self._engine = engine
        self._bucket = bucket
        self._seq = seq

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancelled(self)


class Engine:
    """Event loop with a seeded random stream.

    The single :attr:`rng` is the only source of randomness used by
    protocol machinery (delays, MRAI jitter, blue-provider choices), so
    a fixed seed reproduces a run exactly.
    """

    #: Width of one far-wheel bucket in simulated seconds.  Message
    #: delays (10-20 ms) stay under the horizon; MRAI timers (~22-30 s)
    #: land several buckets out where arm/cancel is O(1).
    BUCKET_WIDTH = 1.0

    #: Compaction threshold for the near heap: never compact below this
    #: many cancelled entries (avoids thrashing on small queues).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._now = 0.0
        self._seq = 0
        #: Near heap: (time, seq, handle_or_None, action) before horizon.
        self._near: List[Tuple[float, int, Optional[EventHandle], Callable[[], Any]]] = []
        #: Far wheel: bucket index -> {seq: (time, seq, handle, action)}.
        self._wheel: Dict[int, Dict[int, Tuple[float, int, Optional[EventHandle], Callable[[], Any]]]] = {}
        #: Number of live (non-cancelled) entries parked in the wheel.
        self._far_count = 0
        #: Absolute time of the end of the current near window; events
        #: strictly before it go to the heap, everything else to the wheel.
        self._horizon = self.BUCKET_WIDTH
        self._events_processed = 0
        self._cancelled_in_near = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def pending(self) -> int:
        """Number of queued (non-cancelled) events — O(1)."""
        return len(self._near) - self._cancelled_in_near + self._far_count

    # ------------------------------------------------------------------
    # Cancellation accounting
    # ------------------------------------------------------------------

    def _note_cancelled(self, handle: EventHandle) -> None:
        """Remove or tombstone a cancelled event.

        Wheel-resident events are deleted outright (O(1)); they never
        reach the heap.  Near-heap events stay as tombstones (lazy
        deletion) and are skipped on pop; once tombstones make up half
        of a large heap it is rebuilt without them, so cancellations
        cannot accumulate unboundedly even inside the near window.
        """
        bucket_index = handle._bucket
        if bucket_index is not None:
            bucket = self._wheel.get(bucket_index)
            if bucket is not None and bucket.pop(handle._seq, None) is not None:
                self._far_count -= 1
                if not bucket:
                    del self._wheel[bucket_index]
            handle._bucket = None
            handle._engine = None
            return
        self._cancelled_in_near += 1
        if (
            self._cancelled_in_near >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_near * 2 >= len(self._near)
        ):
            self._compact()

    def _compact(self) -> None:
        self._near = [
            entry
            for entry in self._near
            if entry[2] is None or not entry[2].cancelled
        ]
        heapq.heapify(self._near)
        self._cancelled_in_near = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], Any]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        if time < self._horizon:
            handle = EventHandle(time, self)
            heapq.heappush(self._near, (time, seq, handle, action))
        else:
            bucket_index = int(time / self.BUCKET_WIDTH)
            handle = EventHandle(time, self, bucket_index, seq)
            bucket = self._wheel.get(bucket_index)
            if bucket is None:
                bucket = self._wheel[bucket_index] = {}
            bucket[seq] = (time, seq, handle, action)
            self._far_count += 1
        return handle

    def schedule_at(self, time: float, action: Callable[[], Any]) -> EventHandle:
        """Schedule ``action`` at an absolute simulated time."""
        return self.schedule(time - self._now, action)

    def post_at(self, time: float, action: Callable[[], Any]) -> None:
        """Schedule a non-cancellable event at an absolute time.

        Identical ordering semantics to :meth:`schedule_at`, but no
        :class:`EventHandle` is allocated — the fast path for message
        deliveries, which are never cancelled individually (loss is
        decided at delivery time by the transport).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (delay={time - self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        if time < self._horizon:
            heapq.heappush(self._near, (time, seq, None, action))
        else:
            bucket_index = int(time / self.BUCKET_WIDTH)
            bucket = self._wheel.get(bucket_index)
            if bucket is None:
                bucket = self._wheel[bucket_index] = {}
            bucket[seq] = (time, seq, None, action)
            self._far_count += 1

    # ------------------------------------------------------------------
    # Wheel promotion
    # ------------------------------------------------------------------

    def _promote(self, limit: Optional[float] = None) -> bool:
        """Move the earliest wheel bucket into the near heap.

        Returns ``False`` when the wheel is empty — or when ``limit``
        is given and the earliest bucket starts beyond it, in which
        case nothing is promoted and far timers keep their O(1)
        cancellability (``run(until=...)`` must not demote parked MRAI
        timers into heap tombstones).  Only called when the near heap
        is exhausted (the run loop pops tombstones eagerly), so
        heapifying the bucket's entries restores the exact global
        ``(time, seq)`` order.
        """
        while self._wheel:
            bucket_index = min(self._wheel)
            if limit is not None and bucket_index * self.BUCKET_WIDTH > limit:
                return False
            bucket = self._wheel.pop(bucket_index)
            self._horizon = (bucket_index + 1) * self.BUCKET_WIDTH
            if not bucket:
                continue
            entries = list(bucket.values())
            self._far_count -= len(entries)
            for _, _, handle, _ in entries:
                if handle is not None:
                    handle._bucket = None
            heapq.heapify(entries)
            self._near = entries
            return True
        return False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events until the queue drains (or a limit is hit).

        Returns the number of events executed by this call.  ``until``
        stops the clock at an absolute time (later events stay queued);
        ``max_events`` bounds the number of callbacks, raising
        :class:`SimulationError` when exceeded — the backstop against a
        non-converging protocol bug.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run backwards (until={until} < now={self._now})"
            )
        executed = 0
        near = self._near
        heappop = heapq.heappop
        while True:
            if not near:
                if not self._promote(until):
                    if until is not None and self._wheel:
                        # Events exist but all lie beyond the stop time.
                        self._now = until
                    break
                near = self._near
            time, _, handle, action = near[0]
            if until is not None and time > until:
                self._now = until
                break
            heappop(near)
            if handle is not None:
                # Detach so a late cancel() of a consumed handle cannot
                # skew the tombstone accounting.
                handle._engine = None
                if handle.cancelled:
                    self._cancelled_in_near -= 1
                    continue
            self._now = time
            action()
            executed += 1
            self._events_processed += 1
            near = self._near  # compaction may have replaced the list
            if max_events is not None and executed >= max_events:
                if self.pending():
                    raise SimulationError(
                        f"exceeded max_events={max_events} with "
                        f"{self.pending()} events still pending"
                    )
        return executed
