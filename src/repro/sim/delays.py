"""Message delay models.

The paper models combined processing and transmission delay as uniform
in [10 ms, 20 ms] for every protocol it simulates (section 6.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


class DelayModel:
    """Interface for per-message delay sampling."""

    def sample(self, rng: random.Random) -> float:
        """Draw one message delay in seconds."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Uniform delay on ``[low, high]`` seconds (paper: 10-20 ms)."""

    low: float = 0.010
    high: float = 0.020

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ConfigurationError(
                f"invalid delay bounds [{self.low}, {self.high}]"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class FixedDelay(DelayModel):
    """Deterministic delay, handy for unit tests."""

    value: float = 0.010

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError(f"negative delay {self.value}")

    def sample(self, rng: random.Random) -> float:
        return self.value
