"""Reliable FIFO message transport between AS neighbors.

Each ordered pair of adjacent ASes gets an independent channel.  A
channel delivers messages in order (BGP runs over TCP) with a sampled
per-message delay; messages in flight when the underlying link fails
are lost, and both endpoints get a session-down notification at the
failure instant (BGP's session reset).

Channels are keyed by an optional ``tag`` so that STAMP's red and blue
processes get their own sessions over the same physical link, exactly
like running two BGP processes on distinct TCP ports.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Hashable, Iterable, Set, Tuple

from repro.errors import SimulationError
from repro.sim.delays import DelayModel, UniformDelay
from repro.sim.engine import Engine
from repro.types import ASN, Link, normalize_link

#: Callback invoked when a message arrives: (sender, message).
Receiver = Callable[[ASN, Any], None]
#: Callback invoked when the session to a neighbor resets: (neighbor,).
SessionDownListener = Callable[[ASN], None]


class _Channel:
    """One direction of one (possibly tagged) session.

    Pooled across messages: the channel owns a FIFO queue and a single
    bound ``deliver`` callback that the engine re-schedules per
    message, instead of allocating a fresh delivery closure per send.
    Per-channel delivery times are strictly increasing (FIFO epsilon),
    so the queue's head is always the message belonging to the next
    scheduled delivery.
    """

    __slots__ = (
        "transport",
        "src",
        "dst",
        "tag",
        "last_delivery",
        "queue",
        "receiver",
        "deliver",
        "pending_losses",
    )

    def __init__(self, transport: "Transport", src: ASN, dst: ASN, tag: Hashable) -> None:
        self.transport = transport
        self.src = src
        self.dst = dst
        self.tag = tag
        self.last_delivery = 0.0
        self.queue: Deque[Any] = deque()
        #: Receiver resolved on first delivery (registrations are
        #: register-once, so the binding can never change afterwards).
        self.receiver: Receiver | None = None
        #: The one bound method the engine schedules for every message.
        self.deliver = self._deliver
        #: Head-of-queue messages already condemned by a failure event
        #: (see :meth:`lose_in_flight`); consumed FIFO at delivery.
        self.pending_losses = 0

    def __getstate__(self):
        """Pickle only durable channel state (twin-start snapshots).

        ``receiver`` re-resolves on the next delivery and ``deliver``
        re-binds in ``__setstate__``.
        """
        return (self.transport, self.src, self.dst, self.tag,
                self.last_delivery, list(self.queue), self.pending_losses)

    def __setstate__(self, state) -> None:
        transport, src, dst, tag, last_delivery, queued, pending_losses = state
        self.transport = transport
        self.src = src
        self.dst = dst
        self.tag = tag
        self.last_delivery = last_delivery
        self.queue = deque(queued)
        self.receiver = None
        self.deliver = self._deliver
        self.pending_losses = pending_losses

    def lose_in_flight(self) -> None:
        """Condemn every currently queued message (a failure instant).

        Loss must be decided *at the failure*, not at delivery time: a
        link or AS that recovers within one message delay (an episode's
        instantaneous power-cycle) must still have killed whatever was
        in flight when it went down.  The engine's delivery events stay
        scheduled — each pops its message and counts it lost instead of
        delivering; messages queued after a recovery sit behind the
        condemned prefix and deliver normally.
        """
        self.pending_losses = len(self.queue)

    def _deliver(self) -> None:
        transport = self.transport
        message = self.queue.popleft()
        if self.pending_losses:
            # Condemned by a failure event while in flight.
            self.pending_losses -= 1
            transport.messages_lost += 1
            return
        # Messages in flight toward a *still-failed* element are lost.
        # (Fast path: with no failed element anywhere the link is
        # trivially up.)
        if (
            transport._failed_links or transport._failed_ases
        ) and not transport.link_is_up(self.src, self.dst):
            transport.messages_lost += 1
            return
        receiver = self.receiver
        if receiver is None:
            receiver = transport._receivers.get((self.dst, self.tag))
            if receiver is None:
                raise SimulationError(
                    f"no receiver for AS {self.dst} tag {self.tag!r}"
                )
            self.receiver = receiver
        transport.messages_delivered += 1
        receiver(self.src, message)


class Transport:
    """All sessions of a simulated network, plus link failure state."""

    #: Minimal spacing between deliveries on one channel, to preserve
    #: FIFO order under random per-message delays.
    FIFO_EPSILON = 1e-9

    def __init__(self, engine: Engine, delay_model: DelayModel | None = None) -> None:
        self._engine = engine
        self._delay = delay_model or UniformDelay()
        #: Inlined bounds for the (ubiquitous) uniform delay model:
        #: ``(low, high - low)``, drawn as ``low + span * rng.random()``
        #: — the exact expression ``Random.uniform`` evaluates, so the
        #: stream and values are bit-identical to sampling the model.
        self._uniform_bounds: Tuple[float, float] | None = (
            (self._delay.low, self._delay.high - self._delay.low)
            if type(self._delay) is UniformDelay
            else None
        )
        self._receivers: Dict[Tuple[ASN, Hashable], Receiver] = {}
        self._down_listeners: Dict[ASN, SessionDownListener] = {}
        self._channels: Dict[Tuple[ASN, ASN, Hashable], _Channel] = {}
        self._failed_links: Set[Link] = set()
        self._failed_ases: Set[ASN] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0

    def __getstate__(self):
        """Pickle without drained channels (twin-start snapshots).

        Channels are created lazily per send, so only their FIFO
        bookkeeping (``last_delivery``) is state — and with a strictly
        positive minimum delay, any post-restore send is scheduled after
        ``now`` and hence after every past delivery, so the bookkeeping
        of a *drained* channel can never influence a future delivery
        time.  Channels with queued in-flight messages are real state
        and stay; so does everything when the delay model's lower bound
        is not provably positive.
        """
        state = self.__dict__.copy()
        bounds = self._uniform_bounds
        if bounds is not None and bounds[0] > 0:
            state["_channels"] = {
                key: channel
                for key, channel in self._channels.items()
                if channel.queue
            }
        return state

    def dispose(self) -> None:
        """Break reference cycles so a dead transport frees by refcount.

        Every channel is self-cyclic (its pooled ``deliver`` bound
        method references the channel), and the receiver/listener
        registries hold bound methods into the speakers, which in turn
        reference the transport.  See :meth:`repro.bgp.network
        .BGPNetwork.dispose`.
        """
        for channel in self._channels.values():
            channel.deliver = None  # type: ignore[assignment]
            channel.receiver = None
        self._channels.clear()
        self._receivers.clear()
        self._down_listeners.clear()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_receiver(
        self, asn: ASN, receiver: Receiver, *, tag: Hashable = None
    ) -> None:
        """Register the message handler of one protocol instance."""
        key = (asn, tag)
        if key in self._receivers:
            raise SimulationError(f"receiver already registered for {key}")
        self._receivers[key] = receiver

    def register_session_down_listener(
        self, asn: ASN, listener: SessionDownListener
    ) -> None:
        """Register the (single) session-reset handler of an AS."""
        if asn in self._down_listeners:
            raise SimulationError(f"down-listener already registered for AS {asn}")
        self._down_listeners[asn] = listener

    # ------------------------------------------------------------------
    # Link / node state
    # ------------------------------------------------------------------

    def link_is_up(self, a: ASN, b: ASN) -> bool:
        """Whether the physical link between two ASes is currently up."""
        return (
            normalize_link(a, b) not in self._failed_links
            and a not in self._failed_ases
            and b not in self._failed_ases
        )

    def as_is_up(self, asn: ASN) -> bool:
        """Whether an AS (router) is currently up."""
        return asn not in self._failed_ases

    @property
    def failed_links(self) -> Set[Link]:
        """Snapshot of currently failed links (normalized pairs)."""
        return set(self._failed_links)

    @property
    def failed_ases(self) -> Set[ASN]:
        """Snapshot of currently failed ASes."""
        return set(self._failed_ases)

    def fail_link(self, a: ASN, b: ASN, *, notify: Iterable[ASN] = ()) -> None:
        """Fail the a-b link now; both (live) endpoints learn immediately.

        ``notify`` defaults to both endpoints; pass a subset to model
        one-sided detection in tests.
        """
        link = normalize_link(a, b)
        if link in self._failed_links:
            return
        self._failed_links.add(link)
        self._condemn_in_flight(
            lambda src, dst: (src == a and dst == b) or (src == b and dst == a)
        )
        targets = tuple(notify) or (a, b)
        for asn in targets:
            if asn in self._failed_ases:
                continue
            listener = self._down_listeners.get(asn)
            if listener is not None:
                other = b if asn == a else a
                listener(other)

    def restore_link(self, a: ASN, b: ASN) -> None:
        """Bring a failed link back up (route addition event)."""
        self._failed_links.discard(normalize_link(a, b))

    def _condemn_in_flight(self, affects) -> None:
        """Mark queued messages on affected channels lost (see
        :meth:`_Channel.lose_in_flight`).  ``affects(src, dst)`` selects
        the channels touched by the failure event."""
        for (src, dst, _tag), channel in self._channels.items():
            if channel.queue and affects(src, dst):
                channel.lose_in_flight()

    def fail_as(self, asn: ASN, neighbors: Iterable[ASN]) -> None:
        """Fail an AS: every incident session resets for its neighbors."""
        if asn in self._failed_ases:
            return
        self._failed_ases.add(asn)
        self._condemn_in_flight(lambda src, dst: src == asn or dst == asn)
        for nbr in neighbors:
            if nbr in self._failed_ases:
                continue
            listener = self._down_listeners.get(nbr)
            if listener is not None:
                listener(asn)

    def restore_as(self, asn: ASN) -> None:
        """Bring a failed AS back up (transport state only).

        Sessions do *not* re-establish here — the owning network drives
        the deterministic re-establishment sequence (the restored
        router reboots with empty protocol state, then each live
        neighbor re-advertises), because only it knows the speakers.
        """
        self._failed_ases.discard(asn)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send(self, src: ASN, dst: ASN, message: Any, *, tag: Hashable = None) -> None:
        """Queue a message for FIFO delivery with a sampled delay.

        Messages sent while the link is already down are silently lost
        (the sender will also have received a session-down event, so in
        practice protocols never do this).
        """
        self.messages_sent += 1
        if (
            self._failed_links or self._failed_ases
        ) and not self.link_is_up(src, dst):
            self.messages_lost += 1
            return
        key = (src, dst, tag)
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channels[key] = _Channel(self, src, dst, tag)
        engine = self._engine
        bounds = self._uniform_bounds
        if bounds is not None:
            # Parenthesized exactly as Random.uniform computes it, so
            # the float result is bit-identical to the sampled path.
            delivery = engine._now + (bounds[0] + bounds[1] * engine.rng.random())
        else:
            delivery = engine._now + self._delay.sample(engine.rng)
        if delivery <= channel.last_delivery:
            delivery = channel.last_delivery + self.FIFO_EPSILON
        channel.last_delivery = delivery
        channel.queue.append(message)
        # Deliveries are never cancelled individually (in-flight loss is
        # decided at delivery time), so the handle-free fast path applies.
        engine.post_at(delivery, channel.deliver)
