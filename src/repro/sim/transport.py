"""Reliable FIFO message transport between AS neighbors.

Each ordered pair of adjacent ASes gets an independent channel.  A
channel delivers messages in order (BGP runs over TCP) with a sampled
per-message delay; messages in flight when the underlying link fails
are lost, and both endpoints get a session-down notification at the
failure instant (BGP's session reset).

Channels are keyed by an optional ``tag`` so that STAMP's red and blue
processes get their own sessions over the same physical link, exactly
like running two BGP processes on distinct TCP ports.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Hashable, Iterable, Set, Tuple

from repro.errors import SimulationError
from repro.sim.delays import DelayModel, UniformDelay
from repro.sim.engine import Engine
from repro.types import ASN, Link, normalize_link

#: Callback invoked when a message arrives: (sender, message).
Receiver = Callable[[ASN, Any], None]
#: Callback invoked when the session to a neighbor resets: (neighbor,).
SessionDownListener = Callable[[ASN], None]


class _Channel:
    """One direction of one (possibly tagged) session.

    Pooled across messages: the channel owns a FIFO queue and a single
    bound ``deliver`` callback that the engine re-schedules per
    message, instead of allocating a fresh delivery closure per send.
    Per-channel delivery times are strictly increasing (FIFO epsilon),
    so the queue's head is always the message belonging to the next
    scheduled delivery.
    """

    __slots__ = (
        "transport",
        "src",
        "dst",
        "tag",
        "last_delivery",
        "queue",
        "receiver",
        "deliver",
    )

    def __init__(self, transport: "Transport", src: ASN, dst: ASN, tag: Hashable) -> None:
        self.transport = transport
        self.src = src
        self.dst = dst
        self.tag = tag
        self.last_delivery = 0.0
        self.queue: Deque[Any] = deque()
        #: Receiver resolved on first delivery (registrations are
        #: register-once, so the binding can never change afterwards).
        self.receiver: Receiver | None = None
        #: The one bound method the engine schedules for every message.
        self.deliver = self._deliver

    def _deliver(self) -> None:
        transport = self.transport
        message = self.queue.popleft()
        # Messages in flight across a failure are lost.
        if not transport.link_is_up(self.src, self.dst):
            transport.messages_lost += 1
            return
        receiver = self.receiver
        if receiver is None:
            receiver = transport._receivers.get((self.dst, self.tag))
            if receiver is None:
                raise SimulationError(
                    f"no receiver for AS {self.dst} tag {self.tag!r}"
                )
            self.receiver = receiver
        transport.messages_delivered += 1
        receiver(self.src, message)


class Transport:
    """All sessions of a simulated network, plus link failure state."""

    #: Minimal spacing between deliveries on one channel, to preserve
    #: FIFO order under random per-message delays.
    FIFO_EPSILON = 1e-9

    def __init__(self, engine: Engine, delay_model: DelayModel | None = None) -> None:
        self._engine = engine
        self._delay = delay_model or UniformDelay()
        self._receivers: Dict[Tuple[ASN, Hashable], Receiver] = {}
        self._down_listeners: Dict[ASN, SessionDownListener] = {}
        self._channels: Dict[Tuple[ASN, ASN, Hashable], _Channel] = {}
        self._failed_links: Set[Link] = set()
        self._failed_ases: Set[ASN] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_receiver(
        self, asn: ASN, receiver: Receiver, *, tag: Hashable = None
    ) -> None:
        """Register the message handler of one protocol instance."""
        key = (asn, tag)
        if key in self._receivers:
            raise SimulationError(f"receiver already registered for {key}")
        self._receivers[key] = receiver

    def register_session_down_listener(
        self, asn: ASN, listener: SessionDownListener
    ) -> None:
        """Register the (single) session-reset handler of an AS."""
        if asn in self._down_listeners:
            raise SimulationError(f"down-listener already registered for AS {asn}")
        self._down_listeners[asn] = listener

    # ------------------------------------------------------------------
    # Link / node state
    # ------------------------------------------------------------------

    def link_is_up(self, a: ASN, b: ASN) -> bool:
        """Whether the physical link between two ASes is currently up."""
        return (
            normalize_link(a, b) not in self._failed_links
            and a not in self._failed_ases
            and b not in self._failed_ases
        )

    def as_is_up(self, asn: ASN) -> bool:
        """Whether an AS (router) is currently up."""
        return asn not in self._failed_ases

    @property
    def failed_links(self) -> Set[Link]:
        """Snapshot of currently failed links (normalized pairs)."""
        return set(self._failed_links)

    @property
    def failed_ases(self) -> Set[ASN]:
        """Snapshot of currently failed ASes."""
        return set(self._failed_ases)

    def fail_link(self, a: ASN, b: ASN, *, notify: Iterable[ASN] = ()) -> None:
        """Fail the a-b link now; both (live) endpoints learn immediately.

        ``notify`` defaults to both endpoints; pass a subset to model
        one-sided detection in tests.
        """
        link = normalize_link(a, b)
        if link in self._failed_links:
            return
        self._failed_links.add(link)
        targets = tuple(notify) or (a, b)
        for asn in targets:
            if asn in self._failed_ases:
                continue
            listener = self._down_listeners.get(asn)
            if listener is not None:
                other = b if asn == a else a
                listener(other)

    def restore_link(self, a: ASN, b: ASN) -> None:
        """Bring a failed link back up (route addition event)."""
        self._failed_links.discard(normalize_link(a, b))

    def fail_as(self, asn: ASN, neighbors: Iterable[ASN]) -> None:
        """Fail an AS: every incident session resets for its neighbors."""
        if asn in self._failed_ases:
            return
        self._failed_ases.add(asn)
        for nbr in neighbors:
            if nbr in self._failed_ases:
                continue
            listener = self._down_listeners.get(nbr)
            if listener is not None:
                listener(asn)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send(self, src: ASN, dst: ASN, message: Any, *, tag: Hashable = None) -> None:
        """Queue a message for FIFO delivery with a sampled delay.

        Messages sent while the link is already down are silently lost
        (the sender will also have received a session-down event, so in
        practice protocols never do this).
        """
        self.messages_sent += 1
        if not self.link_is_up(src, dst):
            self.messages_lost += 1
            return
        key = (src, dst, tag)
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channels[key] = _Channel(self, src, dst, tag)
        delivery = self._engine.now + self._delay.sample(self._engine.rng)
        if delivery <= channel.last_delivery:
            delivery = channel.last_delivery + self.FIFO_EPSILON
        channel.last_delivery = delivery
        channel.queue.append(message)
        self._engine.schedule_at(delivery, channel.deliver)
