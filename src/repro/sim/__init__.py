"""Discrete-event simulation kernel.

Provides the event loop, FIFO message channels with the paper's
uniform [10 ms, 20 ms] processing/transmission delays, per-peer MRAI
pacing (30 s x U[0.75, 1.0]), and forwarding-change tracing consumed by
the transient-problem analyzer.
"""

from repro.sim.engine import Engine, EventHandle
from repro.sim.delays import DelayModel, UniformDelay
from repro.sim.transport import Transport, SessionDownListener
from repro.sim.timers import MRAIConfig, MRAIPacer
from repro.sim.tracing import ForwardingChange, ForwardingTrace

__all__ = [
    "Engine",
    "EventHandle",
    "DelayModel",
    "UniformDelay",
    "Transport",
    "SessionDownListener",
    "MRAIConfig",
    "MRAIPacer",
    "ForwardingChange",
    "ForwardingTrace",
]
