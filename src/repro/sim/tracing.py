"""Forwarding-change tracing.

Protocol simulators report every change to an AS's forwarding choice
(next hop, per color for STAMP); the transient-problem analyzer replays
the resulting timeline, walking the data plane at each instant where
anything changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.types import ASN


class ForwardingChange:
    """One timestamped change of an AS's forwarding state.

    ``key`` distinguishes parallel processes (e.g. STAMP colors) and
    ``state`` is protocol-defined (typically the next hop or the full
    route); ``None`` means "no route".

    Hand-written ``__slots__`` class: one instance is appended per
    forwarding change, which puts construction on the simulation hot
    path.  Treat instances as immutable.
    """

    __slots__ = ("time", "asn", "key", "state")

    def __init__(self, time: float, asn: ASN, key: Hashable, state: Any) -> None:
        self.time = time
        self.asn = asn
        self.key = key
        self.state = state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ForwardingChange):
            return NotImplemented
        return (
            self.time == other.time
            and self.asn == other.asn
            and self.key == other.key
            and self.state == other.state
        )

    def __hash__(self) -> int:
        return hash((self.time, self.asn, self.key, self.state))

    def __repr__(self) -> str:
        return (
            f"ForwardingChange(time={self.time!r}, asn={self.asn!r}, "
            f"key={self.key!r}, state={self.state!r})"
        )


def _record_suspended(time, asn, key, state) -> None:
    """No-op recorder installed by :meth:`ForwardingTrace.suspend`."""


@dataclass
class ForwardingTrace:
    """Ordered log of forwarding changes plus snapshot replay."""

    changes: List[ForwardingChange] = field(default_factory=list)

    def record(self, time: float, asn: ASN, key: Hashable, state: Any) -> None:
        """Append one change (times must be non-decreasing).

        The ordering contract is enforced here so replay can consume
        the log as-is instead of re-sorting it per analysis.
        """
        changes = self.changes
        if changes and time < changes[-1].time:
            raise ValueError(
                f"forwarding change at {time} recorded after {changes[-1].time}"
            )
        changes.append(ForwardingChange(time, asn, key, state))

    def clear(self) -> None:
        """Drop all recorded changes (e.g. after initial convergence)."""
        self.changes.clear()

    def suspend(self) -> None:
        """Stop recording (e.g. during initial convergence).

        Networks discard everything recorded before their start
        completes (:meth:`clear`), so the changes need not be built in
        the first place; recording is re-enabled with :meth:`resume`.
        The per-instance method shadow keeps the enabled path free of
        any flag check.
        """
        self.record = _record_suspended

    def resume(self) -> None:
        """Re-enable recording after :meth:`suspend`."""
        self.__dict__.pop("record", None)

    def distinct_times(self) -> List[float]:
        """Sorted unique timestamps at which anything changed."""
        return sorted({change.time for change in self.changes})

    def replay(
        self, initial: Dict[Tuple[ASN, Hashable], Any]
    ) -> Iterator[Tuple[float, Dict[Tuple[ASN, Hashable], Any]]]:
        """Yield ``(time, state)`` after applying each instant's changes.

        ``initial`` is the full forwarding state just before the first
        recorded change; the same (mutated) dict is yielded each time,
        so callers must not hold references across iterations.
        """
        for time, state, _ in self.replay_with_changes(initial):
            yield time, state

    def replay_with_changes(
        self, initial: Dict[Tuple[ASN, Hashable], Any]
    ) -> Iterator[Tuple[float, Dict[Tuple[ASN, Hashable], Any], set]]:
        """Like :meth:`replay`, but also yields the keys that changed.

        The third element is the set of state keys whose value actually
        differs from the previous instant (recording the same value
        again does not count); incremental analyzers re-examine only
        walks that depend on those keys.  Keys absent from ``initial``
        always count as changed on first write.
        """
        state = dict(initial)
        state_get = state.get
        pending = self.changes  # ordered by construction (see record)
        index = 0
        total = len(pending)
        absent = object()
        while index < total:
            time = pending[index].time
            changed: set = set()
            changed_add = changed.add
            while index < total and pending[index].time == time:
                change = pending[index]
                key = (change.asn, change.key)
                if state_get(key, absent) != change.state:
                    state[key] = change.state
                    changed_add(key)
                index += 1
            yield time, state, changed
