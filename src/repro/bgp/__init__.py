"""Event-driven BGP simulator (policy path-vector, Gao-Rexford policies).

This package is the substrate every protocol in the paper builds on:
plain BGP is the baseline of Figures 2-3, R-BGP subclasses the speaker,
and each STAMP color process is one (slightly extended) speaker with a
selective-announcement gate installed.
"""

from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.ribs import Route, AdjRibIn
from repro.bgp.policy import export_allowed, import_accept, relationship_pref
from repro.bgp.decision import best_route, route_sort_key
from repro.bgp.speaker import BGPSpeaker, SpeakerConfig
from repro.bgp.network import BGPNetwork, NetworkConfig

__all__ = [
    "Announcement",
    "Withdrawal",
    "Route",
    "AdjRibIn",
    "export_allowed",
    "import_accept",
    "relationship_pref",
    "best_route",
    "route_sort_key",
    "BGPSpeaker",
    "SpeakerConfig",
    "BGPNetwork",
    "NetworkConfig",
]
