"""BGP update messages for a single implicit prefix.

The simulator studies one destination prefix at a time (as the paper's
experiments do), so messages carry no NLRI field.  Two optional
attributes extend plain BGP exactly as the paper prescribes:

* ``lock`` — STAMP's Lock bit on blue announcements (section 4.1);
* ``et`` — STAMP's 1-bit Event Type (section 5.2).

``root_cause`` carries R-BGP's root cause information (RCI); plain BGP
and STAMP ignore it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.types import ASN, ASPath, EventType, Link


class Announcement:
    """Route advertisement.

    ``path`` is announcer-first: ``path[0]`` is the sending AS,
    ``path[-1]`` the origin of the prefix.

    Hand-written ``__slots__`` class (one instance per sent update is
    the transport hot path); equality, hashing, repr, and immutability
    match the former frozen dataclass.
    """

    __slots__ = ("path", "et", "lock", "root_cause")

    def __init__(
        self,
        path: ASPath,
        et: EventType = EventType.NO_LOSS,
        lock: bool = False,
        root_cause: Optional[Link] = None,
    ) -> None:
        if not path:
            raise ValueError("announcement path must be non-empty")
        oset = object.__setattr__
        oset(self, "path", path)
        oset(self, "et", et)
        oset(self, "lock", lock)
        oset(self, "root_cause", root_cause)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"Announcement is immutable (tried to set {name})")

    def __reduce__(self):
        # The immutability guard breaks slot-state pickling; rebuild
        # through the constructor instead.
        return (self.__class__, (self.path, self.et, self.lock, self.root_cause))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Announcement):
            return NotImplemented
        return (
            self.path == other.path
            and self.et == other.et
            and self.lock == other.lock
            and self.root_cause == other.root_cause
        )

    def __hash__(self) -> int:
        return hash((self.path, self.et, self.lock, self.root_cause))

    def __repr__(self) -> str:
        return (
            f"Announcement(path={self.path!r}, et={self.et!r}, "
            f"lock={self.lock!r}, root_cause={self.root_cause!r})"
        )

    @property
    def sender(self) -> ASN:
        """The AS that sent this announcement."""
        return self.path[0]


@dataclass(frozen=True, slots=True)
class Withdrawal:
    """Route withdrawal.  Withdrawals are always loss events (ET=0)."""

    et: EventType = EventType.LOSS
    root_cause: Optional[Link] = None
