"""BGP update messages for a single implicit prefix.

The simulator studies one destination prefix at a time (as the paper's
experiments do), so messages carry no NLRI field.  Two optional
attributes extend plain BGP exactly as the paper prescribes:

* ``lock`` — STAMP's Lock bit on blue announcements (section 4.1);
* ``et`` — STAMP's 1-bit Event Type (section 5.2).

``root_cause`` carries R-BGP's root cause information (RCI); plain BGP
and STAMP ignore it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.types import ASN, ASPath, EventType, Link


@dataclass(frozen=True)
class Announcement:
    """Route advertisement.

    ``path`` is announcer-first: ``path[0]`` is the sending AS,
    ``path[-1]`` the origin of the prefix.
    """

    path: ASPath
    et: EventType = EventType.NO_LOSS
    lock: bool = False
    root_cause: Optional[Link] = None

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("announcement path must be non-empty")

    @property
    def sender(self) -> ASN:
        """The AS that sent this announcement."""
        return self.path[0]


@dataclass(frozen=True)
class Withdrawal:
    """Route withdrawal.  Withdrawals are always loss events (ET=0)."""

    et: EventType = EventType.LOSS
    root_cause: Optional[Link] = None
