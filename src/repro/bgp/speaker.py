"""One BGP routing process (single prefix, eBGP, AS-level).

The speaker implements the standard machinery the paper keeps
unchanged: Adj-RIB-In per neighbor, the decision process, valley-free
export with MRAI pacing, immediate withdrawals, session resets, and
AS-path loop rejection.  The paper's two "minor" extensions hook in
without subclassing:

* an ``export_gate`` callback lets STAMP apply selective announcement
  toward providers (and set the Lock bit);
* the ET bit is propagated automatically: any best-route change whose
  proximate trigger was a loss (withdrawal, session reset, or an update
  carrying ET=0) sends updates with ET=0.

Batching semantics of the export path: a best-route change marks every
session whose Adj-RIB-Out went stale; when MRAI permits, the update is
emitted synchronously with the export state computed *once* for that
refresh (the pacer's :meth:`~repro.sim.timers.MRAIPacer.try_send_now`
claims the slot), and otherwise the peer's pending changes coalesce
behind the armed wheel timer until :meth:`BGPSpeaker._flush_peer`
advertises the *net* change — a withdraw+announce churn pair inside
one window collapses to the single message (or none) describing the
final state.  Coalescing cannot reorder deliveries: every update to a
peer travels on the same FIFO transport channel, and batching only
elides intermediate Adj-RIB-Out states strictly *between* two emitted
messages — it never delays one message past another, and the flush
re-reads the latest state at fire time.  The fixed-seed golden test
pins all of this to byte-identical traces.

R-BGP extends the class (see :mod:`repro.rbgp.speaker`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.bgp.decision import best_route, route_sort_key
from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.policy import ORIGIN_PREFERENCE, import_accept
from repro.bgp.ribs import AdjRibIn, Route
from repro.sim.engine import Engine
from repro.sim.timers import MRAIConfig, MRAIPacer
from repro.sim.tracing import ForwardingTrace
from repro.sim.transport import Transport
from repro.types import (
    ASN,
    ASPath,
    EventType,
    Link,
    RELATIONSHIP_PREFERENCE,
    Relationship,
    normalize_link,
)

#: Export gate: ``(peer, route) -> (allow, lock)``.
ExportGate = Callable[[ASN, Route], Tuple[bool, bool]]
#: Best-change observer: ``(speaker, old, new, et, root_cause)``.
BestChangeListener = Callable[
    ["BGPSpeaker", Optional[Route], Optional[Route], EventType, Optional[Link]],
    None,
]

#: What we last advertised to a peer: (path-including-self, lock bit).
Advertised = Tuple[ASPath, bool]

#: Sentinel distinguishing "not passed" from an explicit ``None`` export.
_UNSET = object()


@dataclass
class ProtocolStats:
    """Message counters for one protocol run (shared across speakers)."""

    announcements: int = 0
    withdrawals: int = 0

    @property
    def updates(self) -> int:
        """Total update messages (announcements + withdrawals)."""
        return self.announcements + self.withdrawals


@dataclass(frozen=True)
class SpeakerConfig:
    """Per-speaker protocol knobs."""

    mrai: MRAIConfig = field(default_factory=MRAIConfig)
    #: STAMP blue processes prefer Lock-carrying routes (section 4.1).
    prefer_locked: bool = False


class _PendingContext:
    """Event context accumulated between decision and MRAI flush."""

    __slots__ = ("et", "root_cause")

    def __init__(self) -> None:
        self.et = EventType.NO_LOSS
        self.root_cause: Optional[Link] = None

    def merge(self, et: EventType, root_cause: Optional[Link]) -> None:
        if et is EventType.LOSS:
            self.et = EventType.LOSS
        if root_cause is not None:
            self.root_cause = root_cause


class BGPSpeaker:
    """A single AS's routing process for one prefix."""

    def __init__(
        self,
        asn: ASN,
        graph,
        engine: Engine,
        transport: Transport,
        *,
        config: Optional[SpeakerConfig] = None,
        tag: Hashable = None,
        sessions: Optional[Iterable[ASN]] = None,
        trace: Optional[ForwardingTrace] = None,
        stats: Optional[ProtocolStats] = None,
        export_gate: Optional[ExportGate] = None,
        gate_peers: Optional[Iterable[ASN]] = None,
        on_best_change: Optional[BestChangeListener] = None,
        shared_tables: Optional[Tuple[Dict, Dict]] = None,
        gate_refresh_delegated: bool = False,
    ) -> None:
        self.asn = asn
        self.graph = graph
        self.engine = engine
        self.transport = transport
        self.config = config or SpeakerConfig()
        self.tag = tag
        self.trace = trace
        self.stats = stats or ProtocolStats()
        self.export_gate = export_gate
        #: Peers for which the gate must be consulted.  ``None`` with a
        #: gate present means "every peer".  A gate owner whose policy
        #: provably allows (no lock) everything outside a known peer set
        #: (STAMP only restricts the provider direction) passes that set
        #: so the batched class fan-out applies to the rest.
        self.gate_peers: Optional[frozenset] = (
            frozenset(gate_peers) if gate_peers is not None else None
        )
        #: True when the ``on_best_change`` listener synchronously
        #: refreshes every ``gate_peers`` session with this decision's
        #: exact event context (STAMP's node does), so the speaker's
        #: own fan-out may skip them: re-evaluating the gate for those
        #: peers right after the listener ran is a provable no-op.
        self.gate_refresh_delegated = gate_refresh_delegated
        #: Gate peers the listener explicitly handed back to this
        #: decision's fan-out (deferred recolor withdrawals keep their
        #: historical sorted-session dispatch position this way).
        self._gate_refresh_pending: Optional[List[ASN]] = None
        self.on_best_change = on_best_change

        self.sessions: Set[ASN] = set(
            sessions if sessions is not None else graph.neighbors(asn)
        )
        #: Bumped on every session add/remove; lets coordinators (the
        #: STAMP node) cache session-derived views with O(1) validity.
        self.sessions_version: int = 0
        #: Cached ``sorted(self.sessions)``; rebuilt after session churn.
        self._sessions_sorted: Optional[Tuple[ASN, ...]] = None
        #: Cached per-class export fan-out (see ``schedule_exports``),
        #: validated by ``sessions_version``.
        self._fanout_cache: Optional[Tuple[int, Tuple]] = None
        #: Per-neighbor local preference and relationship, so neither
        #: route insertion (and hence the decision process) nor the
        #: valley-free export check does graph lookups on the hot path.
        #: Seeded eagerly (one adjacency-row copy beats per-neighbor
        #: lazy misses — every neighbor is consulted by the export
        #: fan-out anyway); co-located speakers of one AS (STAMP's
        #: color pair) share one pre-populated pair via
        #: ``shared_tables`` instead of each deriving its own.
        if shared_tables is not None:
            self._pref_table, self._rel_table = shared_tables
        else:
            self._rel_table = graph.neighbor_relationships(asn)
            self._pref_table = {
                neighbor: RELATIONSHIP_PREFERENCE[rel]
                for neighbor, rel in self._rel_table.items()
            }
        self._tables_version = graph.version
        self.adj_rib_in = AdjRibIn()
        self.best: Optional[Route] = None
        #: Sort key of :attr:`best` (maintained by ``_run_decision``);
        #: lets single-neighbor RIB changes update the selection in O(1)
        #: instead of rescanning every candidate.
        self._best_key: Optional[Tuple[int, int, int, int]] = None
        #: Set when the Adj-RIB-In was mutated outside the per-message
        #: bookkeeping (R-BGP's root-cause purge): forces a full rescan.
        self._decision_dirty = False
        self.is_origin = False
        #: ``(self.asn,) + best.path``, built lazily once per best-route
        #: change instead of once per export evaluation.
        self._export_path: Optional[ASPath] = None
        self._advertised: Dict[ASN, Advertised] = {}
        self._pending: Dict[ASN, _PendingContext] = {}
        self._pacer = MRAIPacer(engine, self.config.mrai, self._flush_peer)

        transport.register_receiver(asn, self.on_message, tag=tag)

    def __getstate__(self):
        """Pickle without derived caches (twin-start snapshots).

        Everything dropped here is rebuilt lazily on first use;
        restoring with cold caches is behavior-identical.  The graph
        itself is dropped too — the snapshot owner re-binds the shared
        topology on restore, which keeps the whole pickled object graph
        free of it (no per-object ``persistent_id`` hook needed).
        """
        state = self.__dict__.copy()
        state["graph"] = None
        state["_pref_table"] = {}
        state["_rel_table"] = {}
        state["_tables_version"] = -1
        state["_sessions_sorted"] = None
        state["_fanout_cache"] = None
        state["_export_path"] = None
        return state

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------

    def originate(self) -> None:
        """Become the origin of the prefix and start advertising."""
        self.is_origin = True
        self._run_decision(EventType.NO_LOSS, None)

    def _refresh_tables(self) -> None:
        """Invalidate the per-neighbor caches after a graph mutation.

        Only consulted on cache misses: graph topology must not change
        while a simulation holds populated speaker caches (failures are
        session events flowing through the transport, never graph
        edits — the same contract :class:`repro.bgp.ribs.Route`
        documents for its frozen ``pref``).
        """
        if self.graph.version != self._tables_version:
            self._pref_table.clear()
            self._rel_table.clear()
            self._tables_version = self.graph.version

    def local_pref(self, neighbor: ASN) -> int:
        """Local preference toward a neighbor (cached per graph version)."""
        pref = self._pref_table.get(neighbor)
        if pref is None:
            self._refresh_tables()
            rel = self._neighbor_rel(neighbor)
            pref = RELATIONSHIP_PREFERENCE[rel]
            self._pref_table[neighbor] = pref
        return pref

    def _neighbor_rel(self, neighbor: ASN) -> Relationship:
        """Relationship toward a neighbor (cached per graph version)."""
        rel = self._rel_table.get(neighbor)
        if rel is None:
            self._refresh_tables()
            rel = self.graph.relationship(self.asn, neighbor)
            self._rel_table[neighbor] = rel
        return rel

    def sorted_sessions(self) -> Tuple[ASN, ...]:
        """Sessions in deterministic (ascending ASN) order, cached."""
        if self._sessions_sorted is None:
            self._sessions_sorted = tuple(sorted(self.sessions))
        return self._sessions_sorted

    def on_message(self, sender: ASN, message) -> None:
        """Process one incoming update from a neighbor."""
        if sender not in self.sessions:
            return  # stale message from a torn-down session
        if type(message) is Announcement or isinstance(message, Announcement):
            if import_accept(self.asn, message.path):
                route = Route(
                    path=message.path,
                    learned_from=sender,
                    et=message.et,
                    lock=message.lock,
                    pref=self.local_pref(sender),
                )
                self.adj_rib_in.update(sender, route)
                self._run_decision(
                    message.et, message.root_cause,
                    changed_neighbor=sender, new_route=route,
                )
            else:
                # A path through us means the neighbor no longer has an
                # independent route: implicit withdrawal.
                self.adj_rib_in.withdraw(sender)
                self._run_decision(
                    message.et, message.root_cause,
                    changed_neighbor=sender, new_route=None,
                )
        elif isinstance(message, Withdrawal):
            self.adj_rib_in.withdraw(sender)
            self._run_decision(
                message.et, message.root_cause,
                changed_neighbor=sender, new_route=None,
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {message!r}")

    def on_session_down(self, peer: ASN) -> None:
        """Handle loss of the session to a neighbor (link/node failure)."""
        if peer not in self.sessions:
            return
        self.sessions.discard(peer)
        self.sessions_version += 1
        self._sessions_sorted = None
        self._pacer.cancel(peer)
        self._advertised.pop(peer, None)
        self._pending.pop(peer, None)
        self.adj_rib_in.withdraw(peer)
        self._run_decision(
            EventType.LOSS,
            normalize_link(self.asn, peer),
            changed_neighbor=peer,
            new_route=None,
        )

    def on_session_up(self, peer: ASN) -> None:
        """(Re-)establish a session and advertise our current state."""
        if peer in self.sessions:
            return
        self.sessions.add(peer)
        self.sessions_version += 1
        self._sessions_sorted = None
        self.refresh_peer(peer)

    def reboot(self, peers: Iterable[ASN]) -> None:
        """Restart this process with empty protocol state (AS restore).

        Models a maintenance restart: the Adj-RIB-In, Adj-RIB-Out
        bookkeeping, pending flushes, and armed MRAI timers are all
        wiped, and the session set becomes exactly ``peers`` (the
        neighbors whose physical link is currently up).  This is a
        pure state reset: nothing is advertised and ``on_best_change``
        observers are *not* invoked — the owning network (or STAMP
        node) re-originates an origin by calling :meth:`originate`
        *after every co-located process has been reset*, so no export
        decision ever runs against a half-rebooted sibling.  The trace
        still records the cleared forwarding state.
        """
        self._pacer.reset()
        self.sessions = set(peers)
        self.sessions_version += 1
        self._sessions_sorted = None
        self.adj_rib_in.clear()
        self._advertised.clear()
        self._pending.clear()
        self._gate_refresh_pending = None
        old = self.best
        self.best = None
        self._best_key = None
        self._decision_dirty = False
        self._export_path = None
        if old is not None:
            self._record_best_change(old, None)

    # ------------------------------------------------------------------
    # Decision process
    # ------------------------------------------------------------------

    def _candidates(self) -> Iterable[Route]:
        if self.is_origin:
            return [Route(path=(), learned_from=None, pref=ORIGIN_PREFERENCE)]
        return self.adj_rib_in.routes()

    def _rescan_best(self) -> Optional[Route]:
        """Full candidate scan; also refreshes the cached best key."""
        prefer_locked = self.config.prefer_locked
        graph, asn = self.graph, self.asn
        best: Optional[Route] = None
        best_key = None
        for route in self.adj_rib_in.routes():
            key = route_sort_key(graph, asn, route, prefer_locked=prefer_locked)
            if best_key is None or key < best_key:
                best, best_key = route, key
        self._best_key = best_key
        return best

    def _run_decision(
        self,
        cause_et: EventType,
        root_cause: Optional[Link],
        *,
        changed_neighbor: Optional[ASN] = None,
        new_route: Optional[Route] = None,
    ) -> None:
        """Re-select the best route and react to a change.

        ``changed_neighbor`` (when given) asserts that this decision was
        triggered by a single Adj-RIB-In mutation for that neighbor,
        enabling the O(1) incremental update: the sort key totally
        orders candidates (the neighbor ASN is its last component), so
        comparing the changed route against the cached best key is
        exact.  Any out-of-band RIB mutation (R-BGP's root-cause purge)
        sets ``_decision_dirty`` and forces the full rescan.
        """
        if self.is_origin:
            if self.best is not None:
                return  # the originated route never changes
            new: Optional[Route] = best_route(
                self.graph,
                self.asn,
                self._candidates(),
                prefer_locked=self.config.prefer_locked,
            )
        elif (
            changed_neighbor is None
            or self._decision_dirty
            or self.best is None
            or self._best_key is None
            or changed_neighbor == self.best.learned_from
        ):
            self._decision_dirty = False
            new = self._rescan_best()
        elif new_route is None:
            # Withdrawal of a non-best neighbor: selection unchanged.
            return
        else:
            base = new_route.base_key
            if base is None:
                key = route_sort_key(
                    self.graph,
                    self.asn,
                    new_route,
                    prefer_locked=self.config.prefer_locked,
                )
            else:
                # Inline route_sort_key's cached-base composition.
                lock_rank = (
                    0 if (self.config.prefer_locked and new_route.lock) else 1
                )
                key = (base[0], lock_rank, base[1], base[2])
            if key >= self._best_key:  # type: ignore[operator]
                return  # updated route does not beat the current best
            new = new_route
            self._best_key = key
        if new == self.best:
            return
        old, self.best = self.best, new
        self._export_path = None  # rebuilt lazily on the next export
        et_out = EventType.LOSS if cause_et is EventType.LOSS else EventType.NO_LOSS
        self._record_best_change(old, new)
        if self.on_best_change is not None:
            self.on_best_change(self, old, new, et_out, root_cause)
        self.schedule_exports(et_out, root_cause)

    def _record_best_change(self, old: Optional[Route], new: Optional[Route]) -> None:
        """Publish the new data-plane state to the trace.

        Subclasses may record something other than the raw best path
        (R-BGP retains stale FIB entries, for instance).
        """
        del old
        if self.trace is not None:
            state = new.path if new is not None else None
            self.trace.record(self.engine.now, self.asn, self.tag, state)

    # ------------------------------------------------------------------
    # Export path
    # ------------------------------------------------------------------

    def export_for(self, peer: ASN) -> Optional[Advertised]:
        """What we should currently be advertising to a peer.

        The valley-free rule runs inline on the cached per-neighbor
        relationship table (identical semantics to
        :func:`repro.bgp.policy.export_allowed`), and the advertised
        path tuple is shared across peers via :attr:`_export_path` —
        one allocation per best-route change rather than one per
        evaluation.
        """
        best = self.best
        if best is None or peer not in self.sessions:
            return None
        learned_from = best.learned_from
        if learned_from == peer:
            return None  # never reflect a route back to its announcer
        if self._neighbor_rel(peer) is not Relationship.CUSTOMER:
            # Peer/provider-learned routes are exported to customers only.
            if learned_from is not None and (
                self._neighbor_rel(learned_from) is not Relationship.CUSTOMER
            ):
                return None
        lock = False
        if self.export_gate is not None and (
            self.gate_peers is None or peer in self.gate_peers
        ):
            allow, lock = self.export_gate(peer, best)
            if not allow:
                return None
        path = self._export_path
        if path is None:
            path = self._export_path = (self.asn,) + best.path
        return (path, lock)

    def schedule_exports(
        self,
        et: EventType = EventType.NO_LOSS,
        root_cause: Optional[Link] = None,
    ) -> None:
        """Queue (MRAI-paced) re-advertisement to every stale peer.

        Without an export gate, the valley-free rule gives every peer in
        the same relationship class the same desired advertisement (the
        route's announcer excepted), so the per-decision fan-out
        evaluates the export once per *class* instead of once per peer
        and then only compares against each peer's advertised state.
        Gated (STAMP) speakers take the per-peer evaluation, but only
        for the peers inside :attr:`gate_peers` (STAMP's coloring is
        peer-specific toward providers only); a gate without a declared
        peer scope gates everything.  With
        :attr:`gate_refresh_delegated`, the gate peers were already
        refreshed — synchronously, with this decision's exact event
        context — by the ``on_best_change`` listener that runs
        immediately before this fan-out, so re-running the gate for
        them here could only re-derive the advertised state they
        already hold and is skipped outright (golden-pinned).
        """
        gate_peers: frozenset = frozenset()
        refresh_gated = True
        queued: Optional[List[ASN]] = None
        if self.export_gate is not None:
            if self.gate_peers is None:
                for peer in self.sorted_sessions():
                    self.refresh_peer(peer, et=et, root_cause=root_cause)
                return
            gate_peers = self.gate_peers
            refresh_gated = not self.gate_refresh_delegated
            if not refresh_gated:
                queued = self._gate_refresh_pending
                self._gate_refresh_pending = None
        best = self.best
        learned_from: Optional[ASN] = None
        desired_customer: Optional[Advertised] = None
        desired_other: Optional[Advertised] = None
        rel = self._neighbor_rel
        if best is not None:
            learned_from = best.learned_from
            path = self._export_path
            if path is None:
                path = self._export_path = (self.asn,) + best.path
            desired_customer = (path, False)
            if learned_from is None or rel(learned_from) is Relationship.CUSTOMER:
                desired_other = desired_customer
        advertised_get = self._advertised.get
        pending = self._pending
        # Per-session-generation fan-out list: every peer in sorted
        # (send) order with its class — gated / customer / other —
        # resolved once, so the per-decision loop does no relationship
        # table lookups or gate-membership tests, while keeping the
        # exact send (and hence delay-draw) order of the plain loop.
        fanout = self._fanout_cache
        if fanout is None or fanout[0] != self.sessions_version:
            fanout = self._fanout_cache = (
                self.sessions_version,
                tuple(
                    (
                        peer,
                        0
                        if peer in gate_peers
                        else (1 if rel(peer) is Relationship.CUSTOMER else 2),
                    )
                    for peer in self.sorted_sessions()
                ),
            )
        for peer, kind in fanout[1]:
            if kind == 0:
                if refresh_gated or (queued is not None and peer in queued):
                    self.refresh_peer(peer, et=et, root_cause=root_cause)
                continue
            if peer == learned_from:
                desired = None
            elif kind == 1:
                desired = desired_customer
            else:
                desired = desired_other
            if desired == advertised_get(peer):
                pending.pop(peer, None)
            else:
                self._dispatch_update(peer, desired, et, root_cause)

    def refresh_peer(
        self,
        peer: ASN,
        et: EventType = EventType.NO_LOSS,
        root_cause: Optional[Link] = None,
        *,
        desired: object = _UNSET,
    ) -> None:
        """Re-advertise to one peer if our exported state went stale.

        STAMP's node-level coordination calls this when the color
        assignment of a provider changes without this process's own
        best route changing; callers that already evaluated
        :meth:`export_for` in the same synchronous step may pass the
        result via ``desired`` to skip re-evaluating it (and, for gated
        speakers, re-invoking the gate).

        This is the speaker's coalescing point.  The desired Adj-RIB-Out
        state is computed exactly once; when MRAI allows an immediate
        send the update goes out synchronously with that precomputed
        state (no second export evaluation), and otherwise the peer is
        marked pending and the armed wheel timer absorbs every further
        change until it fires — at which point :meth:`_flush_peer`
        re-reads the *latest* state, so a withdraw+announce churn pair
        inside one MRAI window collapses into the single message (or no
        message) describing the net change.
        """
        if peer not in self.sessions:
            return
        if desired is _UNSET:
            desired = self.export_for(peer)
        if desired == self._advertised.get(peer):
            self._pending.pop(peer, None)
            return
        self._dispatch_update(peer, desired, et, root_cause)

    def _dispatch_update(
        self,
        peer: ASN,
        desired: Optional[Advertised],
        et: EventType,
        root_cause: Optional[Link],
    ) -> None:
        """Send now if MRAI allows, else coalesce behind the armed timer."""
        if self._pacer.try_send_now(peer, is_withdrawal=desired is None):
            context = self._pending.pop(peer, None)
            if context is not None:
                context.merge(et, root_cause)
                et, root_cause = context.et, context.root_cause
            self._emit_update(peer, desired, et, root_cause)
        else:
            # Timer armed: remember the strongest pending event context
            # for the eventual batched flush.
            context = self._pending.get(peer)
            if context is None:
                context = self._pending[peer] = _PendingContext()
            context.merge(et, root_cause)

    def _flush_peer(self, peer: ASN) -> None:
        """Batched MRAI flush: advertise the peer's net pending change.

        Runs when an armed MRAI timer fires.  All Adj-RIB-Out changes
        that accumulated while the timer was armed are represented by
        the single current ``export_for`` state, so the peer receives
        at most one message per flush.  Coalescing cannot reorder
        deliveries: the flush sends on the same FIFO channel as every
        immediate update, and only intermediate states — never emitted
        messages — are elided.
        """
        if peer not in self.sessions:
            return
        context = self._pending.pop(peer, None)
        desired = self.export_for(peer)
        if desired == self._advertised.get(peer):
            return  # churn cancelled out within the MRAI window
        et = context.et if context else EventType.NO_LOSS
        root_cause = context.root_cause if context else None
        self._emit_update(peer, desired, et, root_cause)

    def _emit_update(
        self,
        peer: ASN,
        desired: Optional[Advertised],
        et: EventType,
        root_cause: Optional[Link],
    ) -> None:
        """Send the one update message that moves a peer to ``desired``."""
        if desired is None:
            del self._advertised[peer]
            self.stats.withdrawals += 1
            self.transport.send(
                self.asn, peer, Withdrawal(root_cause=root_cause), tag=self.tag
            )
        else:
            path, lock = desired
            self._advertised[peer] = desired
            self.stats.announcements += 1
            self.transport.send(
                self.asn,
                peer,
                self._make_announcement(path, et, lock, root_cause),
                tag=self.tag,
            )

    def _make_announcement(
        self,
        path: ASPath,
        et: EventType,
        lock: bool,
        root_cause: Optional[Link],
    ) -> Announcement:
        """Build the outgoing update (R-BGP overrides to attach RCI)."""
        return Announcement(path=path, et=et, lock=lock, root_cause=root_cause)

    # ------------------------------------------------------------------

    def dispose(self) -> None:
        """Break this speaker's reference cycles (see network dispose)."""
        self._pacer.dispose()
        self.export_gate = None
        self.on_best_change = None

    def is_advertising(self, peer: ASN) -> bool:
        """Whether we currently have a route advertised to a peer."""
        return peer in self._advertised

    def gate_refresh_queue(self, peer: ASN) -> None:
        """Hand one gate peer back to the current decision's fan-out.

        Used by a delegating listener (see ``gate_refresh_delegated``)
        for the rare gate peer it could *not* settle synchronously — a
        deferred recolor withdrawal — so :meth:`schedule_exports`
        still refreshes that peer in its usual sorted position.
        """
        queued = self._gate_refresh_pending
        if queued is None:
            self._gate_refresh_pending = [peer]
        elif peer not in queued:
            queued.append(peer)

    def is_settled(self, peer: ASN, desired: Optional[Advertised]) -> bool:
        """Whether a refresh toward ``desired`` would be a pure no-op.

        True when the peer's Adj-RIB-Out already matches ``desired``
        and no event context is pending behind an armed MRAI timer —
        exactly the certificate STAMP's gate-signature cache needs
        before eliding a provider refresh.
        """
        return desired == self._advertised.get(peer) and peer not in self._pending

    @property
    def forwarding_path(self) -> Optional[ASPath]:
        """Current forwarding path excluding ourselves (trace format)."""
        return self.best.path if self.best is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        best = self.best.path if self.best else None
        return f"BGPSpeaker(asn={self.asn}, tag={self.tag!r}, best={best})"
