"""One BGP routing process (single prefix, eBGP, AS-level).

The speaker implements the standard machinery the paper keeps
unchanged: Adj-RIB-In per neighbor, the decision process, valley-free
export with MRAI pacing, immediate withdrawals, session resets, and
AS-path loop rejection.  The paper's two "minor" extensions hook in
without subclassing:

* an ``export_gate`` callback lets STAMP apply selective announcement
  toward providers (and set the Lock bit);
* the ET bit is propagated automatically: any best-route change whose
  proximate trigger was a loss (withdrawal, session reset, or an update
  carrying ET=0) sends updates with ET=0.

R-BGP extends the class (see :mod:`repro.rbgp.speaker`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.bgp.decision import best_route
from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.policy import ORIGIN_PREFERENCE, export_allowed, import_accept
from repro.bgp.ribs import AdjRibIn, Route
from repro.sim.engine import Engine
from repro.sim.timers import MRAIConfig, MRAIPacer
from repro.sim.tracing import ForwardingTrace
from repro.sim.transport import Transport
from repro.types import (
    ASN,
    ASPath,
    EventType,
    Link,
    RELATIONSHIP_PREFERENCE,
    normalize_link,
)

#: Export gate: ``(peer, route) -> (allow, lock)``.
ExportGate = Callable[[ASN, Route], Tuple[bool, bool]]
#: Best-change observer: ``(speaker, old, new, et)``.
BestChangeListener = Callable[["BGPSpeaker", Optional[Route], Optional[Route], EventType], None]

#: What we last advertised to a peer: (path-including-self, lock bit).
Advertised = Tuple[ASPath, bool]


@dataclass
class ProtocolStats:
    """Message counters for one protocol run (shared across speakers)."""

    announcements: int = 0
    withdrawals: int = 0

    @property
    def updates(self) -> int:
        """Total update messages (announcements + withdrawals)."""
        return self.announcements + self.withdrawals


@dataclass(frozen=True)
class SpeakerConfig:
    """Per-speaker protocol knobs."""

    mrai: MRAIConfig = field(default_factory=MRAIConfig)
    #: STAMP blue processes prefer Lock-carrying routes (section 4.1).
    prefer_locked: bool = False


@dataclass
class _PendingContext:
    """Event context accumulated between decision and MRAI flush."""

    et: EventType = EventType.NO_LOSS
    root_cause: Optional[Link] = None

    def merge(self, et: EventType, root_cause: Optional[Link]) -> None:
        if et is EventType.LOSS:
            self.et = EventType.LOSS
        if root_cause is not None:
            self.root_cause = root_cause


class BGPSpeaker:
    """A single AS's routing process for one prefix."""

    def __init__(
        self,
        asn: ASN,
        graph,
        engine: Engine,
        transport: Transport,
        *,
        config: Optional[SpeakerConfig] = None,
        tag: Hashable = None,
        sessions: Optional[Iterable[ASN]] = None,
        trace: Optional[ForwardingTrace] = None,
        stats: Optional[ProtocolStats] = None,
        export_gate: Optional[ExportGate] = None,
        on_best_change: Optional[BestChangeListener] = None,
    ) -> None:
        self.asn = asn
        self.graph = graph
        self.engine = engine
        self.transport = transport
        self.config = config or SpeakerConfig()
        self.tag = tag
        self.trace = trace
        self.stats = stats or ProtocolStats()
        self.export_gate = export_gate
        self.on_best_change = on_best_change

        self.sessions: Set[ASN] = set(
            sessions if sessions is not None else graph.neighbors(asn)
        )
        #: Cached ``sorted(self.sessions)``; rebuilt after session churn.
        self._sessions_sorted: Optional[Tuple[ASN, ...]] = None
        #: Per-neighbor local preference, so route insertion (and hence
        #: the decision process) does no graph lookups on the hot path.
        self._pref_table: Dict[ASN, int] = {}
        self._pref_version: int = -1
        self.adj_rib_in = AdjRibIn()
        self.best: Optional[Route] = None
        self.is_origin = False
        self._advertised: Dict[ASN, Advertised] = {}
        self._pending: Dict[ASN, _PendingContext] = {}
        self._pacer = MRAIPacer(engine, self.config.mrai, self._flush_peer)

        transport.register_receiver(asn, self.on_message, tag=tag)

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------

    def originate(self) -> None:
        """Become the origin of the prefix and start advertising."""
        self.is_origin = True
        self._run_decision(EventType.NO_LOSS, None)

    def local_pref(self, neighbor: ASN) -> int:
        """Local preference toward a neighbor (cached per graph version)."""
        if self.graph.version != self._pref_version:
            self._pref_table.clear()
            self._pref_version = self.graph.version
        pref = self._pref_table.get(neighbor)
        if pref is None:
            rel = self.graph.relationship(self.asn, neighbor)
            pref = RELATIONSHIP_PREFERENCE[rel]
            self._pref_table[neighbor] = pref
        return pref

    def sorted_sessions(self) -> Tuple[ASN, ...]:
        """Sessions in deterministic (ascending ASN) order, cached."""
        if self._sessions_sorted is None:
            self._sessions_sorted = tuple(sorted(self.sessions))
        return self._sessions_sorted

    def on_message(self, sender: ASN, message) -> None:
        """Process one incoming update from a neighbor."""
        if sender not in self.sessions:
            return  # stale message from a torn-down session
        if isinstance(message, Announcement):
            if import_accept(self.asn, message.path):
                self.adj_rib_in.update(
                    sender,
                    Route(
                        path=message.path,
                        learned_from=sender,
                        et=message.et,
                        lock=message.lock,
                        pref=self.local_pref(sender),
                    ),
                )
            else:
                # A path through us means the neighbor no longer has an
                # independent route: implicit withdrawal.
                self.adj_rib_in.withdraw(sender)
            self._run_decision(message.et, message.root_cause)
        elif isinstance(message, Withdrawal):
            self.adj_rib_in.withdraw(sender)
            self._run_decision(message.et, message.root_cause)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {message!r}")

    def on_session_down(self, peer: ASN) -> None:
        """Handle loss of the session to a neighbor (link/node failure)."""
        if peer not in self.sessions:
            return
        self.sessions.discard(peer)
        self._sessions_sorted = None
        self._pacer.cancel(peer)
        self._advertised.pop(peer, None)
        self._pending.pop(peer, None)
        self.adj_rib_in.withdraw(peer)
        self._run_decision(EventType.LOSS, normalize_link(self.asn, peer))

    def on_session_up(self, peer: ASN) -> None:
        """(Re-)establish a session and advertise our current state."""
        if peer in self.sessions:
            return
        self.sessions.add(peer)
        self._sessions_sorted = None
        self.refresh_peer(peer)

    # ------------------------------------------------------------------
    # Decision process
    # ------------------------------------------------------------------

    def _candidates(self) -> Iterable[Route]:
        if self.is_origin:
            return [Route(path=(), learned_from=None, pref=ORIGIN_PREFERENCE)]
        return self.adj_rib_in.routes()

    def _run_decision(self, cause_et: EventType, root_cause: Optional[Link]) -> None:
        new = best_route(
            self.graph,
            self.asn,
            self._candidates(),
            prefer_locked=self.config.prefer_locked,
        )
        if new == self.best:
            return
        old, self.best = self.best, new
        et_out = EventType.LOSS if cause_et is EventType.LOSS else EventType.NO_LOSS
        self._record_best_change(old, new)
        if self.on_best_change is not None:
            self.on_best_change(self, old, new, et_out)
        self.schedule_exports(et_out, root_cause)

    def _record_best_change(self, old: Optional[Route], new: Optional[Route]) -> None:
        """Publish the new data-plane state to the trace.

        Subclasses may record something other than the raw best path
        (R-BGP retains stale FIB entries, for instance).
        """
        del old
        if self.trace is not None:
            state = new.path if new is not None else None
            self.trace.record(self.engine.now, self.asn, self.tag, state)

    # ------------------------------------------------------------------
    # Export path
    # ------------------------------------------------------------------

    def export_for(self, peer: ASN) -> Optional[Advertised]:
        """What we should currently be advertising to a peer."""
        if self.best is None or peer not in self.sessions:
            return None
        if not export_allowed(self.graph, self.asn, self.best, peer):
            return None
        lock = False
        if self.export_gate is not None:
            allow, lock = self.export_gate(peer, self.best)
            if not allow:
                return None
        return ((self.asn,) + self.best.path, lock)

    def schedule_exports(
        self,
        et: EventType = EventType.NO_LOSS,
        root_cause: Optional[Link] = None,
    ) -> None:
        """Queue (MRAI-paced) re-advertisement to every stale peer."""
        for peer in self.sorted_sessions():
            self.refresh_peer(peer, et=et, root_cause=root_cause)

    def refresh_peer(
        self,
        peer: ASN,
        et: EventType = EventType.NO_LOSS,
        root_cause: Optional[Link] = None,
    ) -> None:
        """Re-advertise to one peer if our exported state went stale.

        STAMP's node-level coordination calls this when the color
        assignment of a provider changes without this process's own
        best route changing.
        """
        if peer not in self.sessions:
            return
        desired = self.export_for(peer)
        if desired == self._advertised.get(peer):
            self._pending.pop(peer, None)
            return
        context = self._pending.setdefault(peer, _PendingContext())
        context.merge(et, root_cause)
        self._pacer.request_send(peer, is_withdrawal=desired is None)

    def _flush_peer(self, peer: ASN) -> None:
        if peer not in self.sessions:
            return
        context = self._pending.pop(peer, None)
        desired = self.export_for(peer)
        previous = self._advertised.get(peer)
        if desired == previous:
            return
        et = context.et if context else EventType.NO_LOSS
        root_cause = context.root_cause if context else None
        if desired is None:
            del self._advertised[peer]
            self.stats.withdrawals += 1
            self.transport.send(
                self.asn, peer, Withdrawal(root_cause=root_cause), tag=self.tag
            )
        else:
            path, lock = desired
            self._advertised[peer] = desired
            self.stats.announcements += 1
            self.transport.send(
                self.asn,
                peer,
                self._make_announcement(path, et, lock, root_cause),
                tag=self.tag,
            )

    def _make_announcement(
        self,
        path: ASPath,
        et: EventType,
        lock: bool,
        root_cause: Optional[Link],
    ) -> Announcement:
        """Build the outgoing update (R-BGP overrides to attach RCI)."""
        return Announcement(path=path, et=et, lock=lock, root_cause=root_cause)

    # ------------------------------------------------------------------

    def is_advertising(self, peer: ASN) -> bool:
        """Whether we currently have a route advertised to a peer."""
        return peer in self._advertised

    @property
    def forwarding_path(self) -> Optional[ASPath]:
        """Current forwarding path excluding ourselves (trace format)."""
        return self.best.path if self.best is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        best = self.best.path if self.best else None
        return f"BGPSpeaker(asn={self.asn}, tag={self.tag!r}, best={best})"
