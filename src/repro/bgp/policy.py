"""Gao-Rexford routing policies: prefer-customer and valley-free export.

These are the "two common routing policies" of paper section 2.1 under
which BGP is provably safe, and the baseline policies every simulated
protocol applies.
"""

from __future__ import annotations

from typing import Optional

from repro.bgp.ribs import Route
from repro.topology.graph import ASGraph
from repro.types import ASN, RELATIONSHIP_PREFERENCE, Relationship


#: Local preference of an originated route: above every learned route
#: (the destination never prefers a transit route to its own prefix).
ORIGIN_PREFERENCE: int = max(RELATIONSHIP_PREFERENCE.values()) + 1


def relationship_pref(graph: ASGraph, asn: ASN, route: Route) -> int:
    """Local preference of a route (customer > peer > provider).

    Routes that carry a cached ``pref`` (attached at Adj-RIB-In
    insertion) are answered without touching the graph.
    """
    if route.pref is not None:
        return route.pref
    if route.is_origin:
        return ORIGIN_PREFERENCE
    rel = graph.relationship(asn, route.learned_from)
    return RELATIONSHIP_PREFERENCE[rel]


def import_accept(asn: ASN, path) -> bool:
    """Receiver-side import filter: reject paths containing ourselves.

    This is BGP's standard AS-path loop detection.
    """
    return asn not in path


def export_allowed(
    graph: ASGraph,
    asn: ASN,
    route: Route,
    to_neighbor: ASN,
) -> bool:
    """Valley-free export rule.

    Routes learned from a peer or provider are exported only to
    customers; customer-learned and originated routes go to everyone.
    The route is never reflected back to the neighbor it came from.

    NOTE: the speaker hot path inlines this rule twice against its
    cached relationship table — ``BGPSpeaker.export_for`` and the
    per-class fan-out in ``BGPSpeaker.schedule_exports``.  Any change
    here must be mirrored there; ``tests/bgp/test_speaker.py``'s
    export-equivalence test enforces agreement.
    """
    if route.learned_from == to_neighbor:
        return False
    if graph.relationship(asn, to_neighbor) is Relationship.CUSTOMER:
        return True
    if route.is_origin:
        return True
    learned_rel = graph.relationship(asn, route.learned_from)
    return learned_rel is Relationship.CUSTOMER


def learned_relationship(
    graph: ASGraph, asn: ASN, route: Route
) -> Optional[Relationship]:
    """Relationship of the neighbor a route was learned from.

    ``None`` for originated routes.
    """
    if route.is_origin:
        return None
    return graph.relationship(asn, route.learned_from)
