"""BGP decision process (best-route selection).

Selection order, matching the static oracle in :mod:`repro.routing`:

1. highest local preference (prefer-customer policy);
2. shortest AS path;
3. lowest neighbor ASN (deterministic stand-in for router-ID).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.bgp.policy import relationship_pref
from repro.bgp.ribs import Route
from repro.topology.graph import ASGraph
from repro.types import ASN


def route_sort_key(
    graph: ASGraph, asn: ASN, route: Route, *, prefer_locked: bool = False
) -> Tuple[int, int, int, int]:
    """Sort key such that the minimum is the best route.

    Routes carrying a precomputed ``base_key`` (attached at Adj-RIB-In
    insertion) are keyed without any graph lookup; the slow path keeps
    working for bare routes built in tests or analysis code.

    ``prefer_locked`` inserts STAMP's lock preference between local
    preference and path length: a blue process must keep selecting (and
    hence re-announcing) a Lock-carrying route so the guaranteed blue
    downhill chain survives route selection.  Locked routes only ever
    arrive from customers, so this stays within Gao-Rexford safety.
    """
    lock_rank = 0 if (prefer_locked and route.lock) else 1
    base = route.base_key
    if base is None:
        neighbor = route.learned_from if route.learned_from is not None else -1
        base = (-relationship_pref(graph, asn, route), route.length, neighbor)
    return (base[0], lock_rank, base[1], base[2])


def best_route(
    graph: ASGraph,
    asn: ASN,
    candidates: Iterable[Route],
    *,
    prefer_locked: bool = False,
) -> Optional[Route]:
    """Pick the best route among candidates, or ``None`` if empty."""
    best: Optional[Route] = None
    best_key: Optional[Tuple[int, int, int, int]] = None
    for route in candidates:
        key = route_sort_key(graph, asn, route, prefer_locked=prefer_locked)
        if best_key is None or key < best_key:
            best, best_key = route, key
    return best
