"""A full network of plain-BGP speakers for one destination prefix.

This is the BGP baseline of the paper's Figures 2-3 and the base class
for the R-BGP network.  The lifecycle every experiment follows:

1. :meth:`start` — the destination originates; run to convergence.
2. :meth:`clear_trace` (done by :meth:`start`) — discard initial churn.
3. inject events (:meth:`fail_link`, :meth:`fail_as`, ...).
4. :meth:`run_to_convergence` — replay the reaction.
5. hand :attr:`trace` to the transient-problem analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.bgp.speaker import BGPSpeaker, ProtocolStats, SpeakerConfig
from repro.errors import ConvergenceError, SimulationError
from repro.sim.delays import DelayModel, UniformDelay
from repro.sim.engine import Engine
from repro.sim.timers import MRAIConfig
from repro.sim.tracing import ForwardingTrace
from repro.sim.transport import Transport
from repro.topology.graph import ASGraph
from repro.types import ASN, ASPath


@dataclass(frozen=True)
class NetworkConfig:
    """Simulation parameters shared by all protocol networks."""

    seed: int = 0
    delay: DelayModel = field(default_factory=UniformDelay)
    mrai: MRAIConfig = field(default_factory=MRAIConfig)
    #: Hard backstop against non-convergence bugs.
    max_events_per_phase: int = 20_000_000


class BGPNetwork:
    """All speakers of one protocol instance over an AS graph."""

    #: Trace key used by the single process of each AS.
    TRACE_KEY: Hashable = None

    def __init__(
        self,
        graph: ASGraph,
        destination: ASN,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        if destination not in graph:
            raise ValueError(f"destination AS {destination} not in graph")
        self.graph = graph
        self.destination = destination
        self.config = config or NetworkConfig()
        self.engine = Engine(self.config.seed)
        self.transport = Transport(self.engine, self.config.delay)
        self.trace = ForwardingTrace()
        self.stats = ProtocolStats()
        self.speakers: Dict[ASN, BGPSpeaker] = {}
        self._build_speakers()

    # ------------------------------------------------------------------
    # Construction (overridden by protocol variants)
    # ------------------------------------------------------------------

    def _build_speakers(self) -> None:
        speaker_config = SpeakerConfig(mrai=self.config.mrai)
        for asn in self.graph.ases:
            speaker = self._make_speaker(asn, speaker_config)
            self.speakers[asn] = speaker
            self.transport.register_session_down_listener(
                asn, speaker.on_session_down
            )

    def _make_speaker(self, asn: ASN, speaker_config: SpeakerConfig) -> BGPSpeaker:
        return BGPSpeaker(
            asn,
            self.graph,
            self.engine,
            self.transport,
            config=speaker_config,
            tag=self.TRACE_KEY,
            trace=self.trace,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> float:
        """Originate at the destination and run initial convergence.

        Returns the simulated time at which the network first converged.
        The trace is cleared afterwards so experiments see only
        post-event dynamics — recording is therefore suspended outright
        for the initial convergence instead of building throwaway
        change objects.
        """
        self.trace.suspend()
        try:
            self._originate()
            self.run_to_convergence()
        finally:
            self.trace.resume()
        self.trace.clear()
        return self.engine.now

    def _originate(self) -> None:
        self.speakers[self.destination].originate()

    def run_to_convergence(self) -> float:
        """Drain all protocol activity; returns elapsed simulated time.

        Raises :class:`ConvergenceError` if the event backstop trips
        (which would indicate a protocol bug — Gao-Rexford policies
        guarantee convergence).
        """
        started = self.engine.now
        try:
            self.engine.run(max_events=self.config.max_events_per_phase)
        except SimulationError as exc:
            # Only the engine's own backstop means "did not converge";
            # any other exception is a genuine bug in an event callback
            # and must propagate unmasked.
            raise ConvergenceError(
                f"no convergence after {self.config.max_events_per_phase} events"
            ) from exc
        return self.engine.now - started

    def dispose(self) -> None:
        """Break the network's internal reference cycles.

        A protocol network is a dense cyclic object graph (speakers ↔
        transport ↔ pacers ↔ pooled callbacks), which only the cyclic
        garbage collector could reclaim.  The experiment runner pauses
        that collector during simulation for speed, so it disposes each
        network when a run's results have been extracted — after this
        call the network must not be used again, and its memory is
        returned by plain reference counting.
        """
        self.transport.dispose()
        for speaker in self.speakers.values():
            speaker.dispose()
        self.speakers.clear()

    # ------------------------------------------------------------------
    # Event injection
    # ------------------------------------------------------------------

    def fail_link(self, a: ASN, b: ASN) -> None:
        """Fail a link now; both endpoints react immediately.

        Applied synchronously at the current simulated instant: both
        live endpoints receive their session-down notification (and
        record any resulting forwarding change) before this returns.
        """
        self.transport.fail_link(a, b)

    def restore_link(self, a: ASN, b: ASN) -> None:
        """Restore a failed link; both endpoints re-advertise.

        Deterministic re-establishment order: ``a``'s session comes up
        first, then ``b``'s — callers with no preference should pass
        the endpoints in a canonical (e.g. normalized-link) order.  The
        session-up handlers queue re-advertisements through the normal
        MRAI machinery, so the resulting updates propagate with
        ordinary message delays rather than instantaneously.

        When either endpoint AS is itself failed, only the transport's
        link state recovers — no session forms (mirroring
        ``fail_link``'s notify loop, which skips failed ASes).  The
        sessions re-establish later, when ``restore_as`` brings the
        dead endpoint back.
        """
        self.transport.restore_link(a, b)
        if self.transport.link_is_up(a, b):
            self._notify_session_up(a, b)
            self._notify_session_up(b, a)

    def _notify_session_up(self, asn: ASN, peer: ASN) -> None:
        self.speakers[asn].on_session_up(peer)

    def fail_as(self, asn: ASN) -> None:
        """Fail an entire AS (all of its sessions reset).

        The failed AS's own speaker keeps its state (a router that
        lost power mid-state) and everything it emits — or receives —
        while down is dropped by the transport.  Its already-armed
        MRAI timers do still fire, so a flush whose Adj-RIB-Out went
        stale at the failure instant produces a send that the
        transport drops but the protocol ``stats`` count: update
        counters measure messages *sent*, not delivered.  This is the
        seed behavior of the single-instant node-failure figure and is
        deliberately left untouched; ``restore_as`` cancels the timers
        when the router reboots.
        """
        self.transport.fail_as(asn, self.graph.neighbors(asn))

    def restore_as(self, asn: ASN) -> None:
        """Bring a failed AS back up (maintenance over; cold restart).

        The restored router reboots with *empty* protocol state — a
        restart does not resurrect pre-failure RIBs — and sessions
        re-establish deterministically: the reboot first (an origin
        immediately re-originates), then each live neighbor's session
        comes up in ascending-ASN order, re-advertising its current
        best route to the restored AS.  No-op when the AS is not
        currently failed.
        """
        if self.transport.as_is_up(asn):
            return
        self.transport.restore_as(asn)
        live = [
            nbr
            for nbr in sorted(self.graph.neighbors(asn))
            if self.transport.link_is_up(asn, nbr)
        ]
        speaker = self.speakers[asn]
        speaker.reboot(live)
        if speaker.is_origin:
            speaker.originate()
        for nbr in live:
            self._notify_session_up(nbr, asn)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def forwarding_state(self) -> Dict[Tuple[ASN, Hashable], Optional[ASPath]]:
        """Current forwarding state in the trace's key space."""
        return {
            (asn, self.TRACE_KEY): speaker.forwarding_path
            for asn, speaker in self.speakers.items()
        }

    def best_path(self, asn: ASN) -> Optional[ASPath]:
        """Full forwarding path of an AS including itself, or ``None``."""
        speaker = self.speakers[asn]
        if speaker.best is None:
            return None
        return (asn,) + speaker.best.path

    def converged_next_hops(self) -> Dict[ASN, Optional[ASN]]:
        """Next hop of every AS (``None`` = no route / the origin)."""
        out: Dict[ASN, Optional[ASN]] = {}
        for asn, speaker in self.speakers.items():
            out[asn] = speaker.best.next_hop if speaker.best else None
        return out
