"""Routing information bases of one speaker (single prefix).

``Route.path`` follows the announcement convention (announcer-first):
``path[0]`` is the neighbor the route was learned from, ``path[-1]``
the origin.  The speaker's own ASN is *not* on the path; the full
forwarding path from AS X is ``(X,) + route.path``.  An originated
route has an empty path and no ``learned_from``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.types import ASN, ASPath, EventType


@dataclass(frozen=True)
class Route:
    """One usable route, as stored in a RIB."""

    path: ASPath
    learned_from: Optional[ASN]
    et: EventType = EventType.NO_LOSS
    lock: bool = False

    def __post_init__(self) -> None:
        if self.learned_from is None:
            if self.path:
                raise ValueError("originated routes must have an empty path")
        elif not self.path or self.path[0] != self.learned_from:
            raise ValueError("route path must start at the announcing neighbor")

    @property
    def is_origin(self) -> bool:
        """Whether this is the destination's own (originated) route."""
        return self.learned_from is None

    @property
    def length(self) -> int:
        """AS-path length used by the decision process."""
        return len(self.path)

    @property
    def next_hop(self) -> Optional[ASN]:
        """Forwarding next hop (``None`` for the origin itself)."""
        return self.learned_from


class AdjRibIn:
    """Per-neighbor store of the most recent accepted announcement."""

    def __init__(self) -> None:
        self._routes: Dict[ASN, Route] = {}

    def update(self, neighbor: ASN, route: Route) -> None:
        """Replace the route learned from a neighbor."""
        self._routes[neighbor] = route

    def withdraw(self, neighbor: ASN) -> bool:
        """Remove the neighbor's route; returns whether one existed."""
        return self._routes.pop(neighbor, None) is not None

    def get(self, neighbor: ASN) -> Optional[Route]:
        """Route learned from a neighbor, if any."""
        return self._routes.get(neighbor)

    def routes(self) -> List[Route]:
        """All stored routes, in deterministic (neighbor ASN) order."""
        return [self._routes[nbr] for nbr in sorted(self._routes)]

    def neighbors(self) -> List[ASN]:
        """Neighbors we currently hold a route from, sorted."""
        return sorted(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[ASN]:
        return iter(sorted(self._routes))

    def __contains__(self, neighbor: ASN) -> bool:
        return neighbor in self._routes
