"""Routing information bases of one speaker (single prefix).

``Route.path`` follows the announcement convention (announcer-first):
``path[0]`` is the neighbor the route was learned from, ``path[-1]``
the origin.  The speaker's own ASN is *not* on the path; the full
forwarding path from AS X is ``(X,) + route.path``.  An originated
route has an empty path and no ``learned_from``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.types import ASN, ASPath, EventType


class Route:
    """One usable route, as stored in a RIB.

    A hand-written ``__slots__`` class rather than a frozen dataclass:
    one Route is allocated per accepted announcement, and the frozen
    dataclass ``__init__`` (one ``object.__setattr__`` per field) was a
    measurable slice of the message hot path.  Semantics are unchanged
    — equality and hashing cover ``(path, learned_from, et, lock)``
    exactly as the former dataclass's compare fields did, and instances
    must be treated as immutable (they are shared between RIBs, the
    decision process, and advertised-state caches).

    ``pref`` optionally carries the local preference of the announcing
    neighbor, computed once at Adj-RIB-In insertion from the speaker's
    preference table; the decision process then needs no graph lookups.
    It is derived state (a function of the speaker and ``learned_from``),
    so it is excluded from equality.  When set, ``base_key`` holds the
    precomputed lock-independent sort key ``(-pref, length, neighbor)``.

    Constraint: ``pref`` is frozen at insertion, so re-annotating a
    *live* link's relationship mid-run (remove_link + re-add flipped,
    without tearing the session down) would leave stored routes keyed
    on the old preference.  Topology events in this simulator go
    through the transport (session resets withdraw the affected
    routes), so graph edits while RIBs hold routes are unsupported.
    """

    __slots__ = ("path", "learned_from", "et", "lock", "pref", "base_key")

    def __init__(
        self,
        path: ASPath,
        learned_from: Optional[ASN],
        et: EventType = EventType.NO_LOSS,
        lock: bool = False,
        pref: Optional[int] = None,
    ) -> None:
        if learned_from is None:
            if path:
                raise ValueError("originated routes must have an empty path")
        elif not path or path[0] != learned_from:
            raise ValueError("route path must start at the announcing neighbor")
        self.path = path
        self.learned_from = learned_from
        self.et = et
        self.lock = lock
        self.pref = pref
        self.base_key: Optional[Tuple[int, int, int]] = (
            (-pref, len(path), learned_from if learned_from is not None else -1)
            if pref is not None
            else None
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Route):
            return NotImplemented
        return (
            self.path == other.path
            and self.learned_from == other.learned_from
            and self.et == other.et
            and self.lock == other.lock
        )

    def __hash__(self) -> int:
        return hash((self.path, self.learned_from, self.et, self.lock))

    def __repr__(self) -> str:
        return (
            f"Route(path={self.path!r}, learned_from={self.learned_from!r}, "
            f"et={self.et!r}, lock={self.lock!r})"
        )

    @property
    def is_origin(self) -> bool:
        """Whether this is the destination's own (originated) route."""
        return self.learned_from is None

    @property
    def length(self) -> int:
        """AS-path length used by the decision process."""
        return len(self.path)

    @property
    def next_hop(self) -> Optional[ASN]:
        """Forwarding next hop (``None`` for the origin itself)."""
        return self.learned_from


class AdjRibIn:
    """Per-neighbor store of the most recent accepted announcement.

    The deterministic (neighbor-ASN-ordered) route list consumed by the
    decision process is cached and invalidated on mutation, so repeated
    decision runs between updates do not re-sort.
    """

    def __init__(self) -> None:
        self._routes: Dict[ASN, Route] = {}
        self._sorted: Optional[Tuple[Route, ...]] = None

    def update(self, neighbor: ASN, route: Route) -> None:
        """Replace the route learned from a neighbor."""
        self._routes[neighbor] = route
        self._sorted = None

    def withdraw(self, neighbor: ASN) -> bool:
        """Remove the neighbor's route; returns whether one existed."""
        if self._routes.pop(neighbor, None) is None:
            return False
        self._sorted = None
        return True

    def get(self, neighbor: ASN) -> Optional[Route]:
        """Route learned from a neighbor, if any."""
        return self._routes.get(neighbor)

    def clear(self) -> None:
        """Drop every stored route (speaker reboot) in place."""
        self._routes.clear()
        self._sorted = None

    def routes(self) -> Tuple[Route, ...]:
        """All stored routes, in deterministic (neighbor ASN) order.

        Returns an immutable cached tuple, so callers cannot corrupt
        the RIB's internal view between mutations.
        """
        if self._sorted is None:
            self._sorted = tuple(
                self._routes[nbr] for nbr in sorted(self._routes)
            )
        return self._sorted

    def neighbors(self) -> List[ASN]:
        """Neighbors we currently hold a route from, sorted."""
        return sorted(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[ASN]:
        return iter(sorted(self._routes))

    def __contains__(self, neighbor: ASN) -> bool:
        return neighbor in self._routes
