"""R-BGP routing process: plain BGP plus failover paths and RCI."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bgp.decision import route_sort_key
from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.ribs import Route
from repro.bgp.speaker import BGPSpeaker, _UNSET
from repro.forwarding.rbgp_plane import FAILOVER, PRIMARY
from repro.rbgp.messages import FailoverAnnouncement, FailoverWithdrawal
from repro.types import ASN, ASPath, Link, normalize_link


#: Module-wide ``path -> link set`` memo: announcement paths repeat
#: heavily within and across speakers (the same routes are re-sent on
#: every churn), so the normalized link sets are interned.  Bounded by
#: a size cap instead of an eviction policy — a full clear is cheap
#: and correctness never depends on a hit.
_PATH_LINKS_CACHE: dict = {}
_PATH_LINKS_CACHE_MAX = 65536


def path_links(full_path: ASPath) -> frozenset:
    """Normalized set of links along a full (self-first) path."""
    links = _PATH_LINKS_CACHE.get(full_path)
    if links is None:
        if len(_PATH_LINKS_CACHE) >= _PATH_LINKS_CACHE_MAX:
            _PATH_LINKS_CACHE.clear()
        links = _PATH_LINKS_CACHE[full_path] = frozenset(
            normalize_link(u, v) for u, v in zip(full_path, full_path[1:])
        )
    return links


def path_contains_link(full_path: ASPath, link: Link) -> bool:
    """Whether a full path traverses a given (normalized) link."""
    return link in path_links(full_path)


class RBGPSpeaker(BGPSpeaker):
    """One AS's R-BGP process.

    ``rci=True`` is full R-BGP: updates carry root-cause links and the
    speaker purges every Adj-RIB-In/failover path through a root-caused
    link before re-running the decision.  ``rci=False`` is the paper's
    "R-BGP without RCI" baseline: failover paths are still advertised
    and used, but stale paths die only through normal path exploration.
    """

    def __init__(self, *args, rci: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rci = rci
        #: Memoized link sets of ``(self.asn,) + path`` keyed by the
        #: path tuple.  Paths recur heavily across decisions (the same
        #: Adj-RIB-In routes are re-examined by every failover
        #: computation), and the mapping is pure, so entries never
        #: invalidate.
        self._full_links_cache: Dict[ASPath, frozenset] = {}
        #: Links learned (via RCI) to be down; paths through them are
        #: rejected until the session state changes again.
        self.known_bad_links: set = set()
        #: Data-plane entry.  With RCI this retains the last known path
        #: when the control plane withdraws without replacement
        #: (make-before-break): packets keep flowing toward the AS
        #: adjacent to the failure, which diverts them onto a failover
        #: path.  RCI is what makes this retention safe — the root
        #: cause identifies exactly which stale state to trust.
        self.fib_path: Optional[ASPath] = None
        #: Failover paths received from upstream neighbors.
        self.failover_rib: Dict[ASN, ASPath] = {}
        #: (target neighbor, advertised path *excluding ourselves*) of
        #: our last failover advertisement; the self-prefixed wire path
        #: is built only when a message actually goes out.
        self._failover_sent: Optional[Tuple[ASN, ASPath]] = None
        #: Incrementally-maintained failover selection (route, sort key)
        #: plus the best-route object it was computed under; a single
        #: Adj-RIB-In change updates it in O(1) like the decision
        #: process, with full rescans only when the primary path moved,
        #: the cached choice itself was touched, or RCI purged the RIB.
        self._failover_route: Optional[Route] = None
        self._failover_key: Optional[Tuple] = None
        self._failover_valid = False
        self._failover_best_token: Optional[Route] = None
        #: True once this speaker hit a state where RCI and no-RCI
        #: *could* behave differently: a best route vanishing while
        #: stale data-plane/failover state existed, a root-caused
        #: message arriving, or a session going down (purge /
        #: known-bad-links divergence).  The known-bad-links branches in
        #: :meth:`on_message` are covered transitively — that set can
        #: only become non-empty through one of the flagged events.
        #: While False, the speaker's entire evolution is provably
        #: identical for ``rci=True`` and ``rci=False`` — the experiment
        #: runner uses this to share one initial convergence between the
        #: two R-BGP variants (see :mod:`repro.experiments.runner`).
        self.rci_sensitive_state = False

    def __getstate__(self):
        """Extend the base speaker's cache-free pickling (snapshots)."""
        state = super().__getstate__()
        state["_full_links_cache"] = {}
        state["_failover_route"] = None
        state["_failover_key"] = None
        state["_failover_valid"] = False
        state["_failover_best_token"] = None
        return state

    def _full_path_links(self, path: ASPath) -> frozenset:
        """Links of ``(self.asn,) + path``, memoized per path tuple."""
        links = self._full_links_cache.get(path)
        if links is None:
            links = path_links((self.asn,) + path)
            self._full_links_cache[path] = links
        return links

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_message(self, sender: ASN, message) -> None:
        if sender not in self.sessions:
            return
        if isinstance(message, FailoverAnnouncement):
            self.failover_rib[sender] = message.path
            self._record_failover_state()
            return
        if isinstance(message, FailoverWithdrawal):
            if self.failover_rib.pop(sender, None) is not None:
                self._record_failover_state()
            return
        root_cause = getattr(message, "root_cause", None)
        if root_cause is not None:
            # Root-caused events are where RCI earns its name: from
            # here on the two variants may diverge (purge vs. not).
            self.rci_sensitive_state = True
            if self.rci:
                self._purge_root_cause(root_cause)
        if (
            self.rci
            and isinstance(message, Announcement)
            and root_cause is None
            and self.known_bad_links
        ):
            # A fresh (non-root-caused) announcement attests that every
            # link on its path is up again: recovery information is
            # newer than our failure knowledge.  Route additions cause
            # no transient problems (Lemma 3.1), so trusting it is safe.
            for link in self._full_path_links(message.path):
                self.known_bad_links.discard(link)
        if (
            self.rci
            and isinstance(message, Announcement)
            and self.known_bad_links
            and not self.known_bad_links.isdisjoint(
                self._full_path_links(message.path)
            )
        ):
            # RCI lets us reject a stale path through a failed link as
            # if it were a withdrawal.
            message = Withdrawal(root_cause=root_cause)
        super().on_message(sender, message)
        self._update_failover_advertisement(changed_neighbor=sender)

    def on_session_down(self, peer: ASN) -> None:
        if peer not in self.sessions:
            return
        if self.failover_rib.pop(peer, None) is not None:
            self._record_failover_state()
        if self._failover_sent is not None and self._failover_sent[0] == peer:
            self._failover_sent = None
        # A session loss is inherently RCI-sensitive: with RCI the link
        # joins known_bad_links and paths through it are purged, without
        # RCI neither happens.  (This also covers links failed *before*
        # initial convergence, e.g. a scenario's restored_links — the
        # twin-start sharing must refuse such starts.)
        self.rci_sensitive_state = True
        if self.rci:
            self._purge_root_cause(normalize_link(self.asn, peer))
        super().on_session_down(peer)
        self._update_failover_advertisement(changed_neighbor=peer)

    def on_session_up(self, peer: ASN) -> None:
        # A recovery invalidates our stale failure knowledge.
        self.known_bad_links.discard(normalize_link(self.asn, peer))
        super().on_session_up(peer)
        self._update_failover_advertisement()

    def reboot(self, peers) -> None:
        """Restart with empty state, R-BGP included (AS restore).

        On top of the base reboot, the failover RIB, any outstanding
        failover advertisement, and the learned bad-link set are wiped
        — and, critically, the *stale FIB retention* that RCI normally
        performs when the best route vanishes does not apply: a
        restarted router has no FIB to retain, so the data-plane entry
        is cleared unconditionally.
        """
        self.known_bad_links.clear()
        if self.failover_rib:
            self.failover_rib.clear()
            self._record_failover_state()
        self._failover_sent = None
        self._failover_route = None
        self._failover_key = None
        self._failover_valid = False
        self._failover_best_token = None
        # Clear the FIB *before* the base reboot: _record_best_change's
        # RCI branch retains stale entries only while fib_path is set,
        # so super()'s best-route clear (and any later re-origination)
        # records cleanly instead of being swallowed by retention.
        stale_retained = self.fib_path is not None and self.best is None
        self.fib_path = None
        if stale_retained and self.trace is not None:
            self.trace.record(self.engine.now, self.asn, self.tag, None)
        super().reboot(peers)

    # ------------------------------------------------------------------
    # RCI
    # ------------------------------------------------------------------

    def _purge_root_cause(self, link: Link) -> None:
        """Drop every known path that traverses the root-caused link."""
        self.known_bad_links.add(link)
        changed = False
        for neighbor in list(self.adj_rib_in):
            route = self.adj_rib_in.get(neighbor)
            if link in self._full_path_links(route.path):
                self.adj_rib_in.withdraw(neighbor)
                # Out-of-band RIB mutation: the next decision run and
                # failover selection must rescan rather than trust the
                # incremental keys.
                self._decision_dirty = True
                self._failover_valid = False
                changed = True
        for upstream in list(self.failover_rib):
            if link in self._full_path_links(self.failover_rib[upstream]):
                del self.failover_rib[upstream]
                self._record_failover_state()
        # The decision re-runs in the caller (message/session handler);
        # nothing else to do here.
        del changed

    # ------------------------------------------------------------------
    # Data plane (FIB) semantics
    # ------------------------------------------------------------------

    def _record_best_change(self, old, new) -> None:
        path = new.path if new is not None else None
        if path is None and self.fib_path is not None:
            # This is one of the two points where the RCI and no-RCI
            # variants can diverge; record that it was reached.
            self.rci_sensitive_state = True
            if self.rci:
                # Retain the stale entry; the trace state is unchanged.
                return
        self.fib_path = path
        if self.trace is not None:
            self.trace.record(self.engine.now, self.asn, self.tag, path)

    @property
    def data_plane_path(self) -> Optional[ASPath]:
        """What the FIB currently forwards on (may be stale under RCI)."""
        return self.fib_path

    # ------------------------------------------------------------------
    # Failover advertisement
    # ------------------------------------------------------------------

    def _failover_key_for(self, route: Route, primary_links: frozenset) -> Tuple:
        """Selection key of one failover candidate (min = chosen).

        Mirrors ``(overlap,) + route_sort_key(...)``; the lock rank is
        the constant 1 here because failover selection never prefers
        locked routes (R-BGP has no Lock attribute).
        """
        overlap = len(primary_links & self._full_path_links(route.path))
        base = route.base_key
        if base is None:
            return (overlap,) + route_sort_key(self.graph, self.asn, route)
        return (overlap, base[0], 1, base[1], base[2])

    def _rescan_failover(self) -> Optional[Route]:
        """Full failover rescan; refreshes the incremental cache."""
        best = self.best
        best_candidate: Optional[Route] = None
        best_key: Optional[Tuple] = None
        if best is not None and not best.is_origin:
            target = best.learned_from
            primary_links = self._full_path_links(best.path)
            for route in self.adj_rib_in.routes():
                if route.learned_from == target:
                    continue
                if target in route.path:
                    # Useless to the target: it would route through itself.
                    continue
                key = self._failover_key_for(route, primary_links)
                if best_key is None or key < best_key:
                    best_candidate, best_key = route, key
        self._failover_route = best_candidate
        self._failover_key = best_key
        self._failover_valid = True
        self._failover_best_token = best
        return best_candidate

    def compute_failover_route(self) -> Optional[Route]:
        """Most disjoint alternate to our primary path.

        Disjointness is measured in shared links with the primary path
        (R-BGP's criterion), ties broken by the regular decision order.
        Unlike regular announcements, failover paths are *not* subject
        to the valley-free export filter: the R-BGP paper explicitly
        relaxes export policy for failover paths (they are used only
        transiently, and ASes have a reachability incentive to accept
        the brief policy violation).  Without this relaxation a tier-1
        could never receive a failover path from a peer, crippling
        recovery from core-link failures.
        """
        if self.best is None or self.best.is_origin:
            return None
        return self._rescan_failover()

    def _current_failover(self, target: ASN, changed_neighbor: object) -> Optional[Route]:
        """Failover selection, updated incrementally when possible.

        Valid only while the best route object is unchanged (same
        target and primary links); a hinted single-neighbor RIB change
        then either replaces the cached choice (strictly better key),
        forces a rescan (the cached choice itself was touched), or is
        ignored — exactly the argmin maintenance the decision process
        uses.  The selection key embeds the neighbor ASN, so the order
        is total and the incremental result provably matches a rescan.
        """
        if (
            not self._failover_valid
            or self._failover_best_token is not self.best
            or changed_neighbor is _UNSET
        ):
            return self._rescan_failover()
        cached = self._failover_route
        if cached is not None and cached.learned_from == changed_neighbor:
            return self._rescan_failover()
        route = self.adj_rib_in.get(changed_neighbor)  # type: ignore[arg-type]
        if (
            route is not None
            and changed_neighbor != target
            and target not in route.path
        ):
            primary_links = self._full_path_links(self.best.path)
            key = self._failover_key_for(route, primary_links)
            if self._failover_key is None or key < self._failover_key:
                self._failover_route = route
                self._failover_key = key
        return self._failover_route

    def _update_failover_advertisement(
        self, changed_neighbor: object = _UNSET
    ) -> None:
        """(Re-)advertise our failover path to the primary next hop.

        ``changed_neighbor`` (when passed) asserts that since the last
        call the Adj-RIB-In changed for at most that one neighbor,
        enabling the incremental selection in :meth:`_current_failover`.
        """
        if self.best is None and self._failover_sent is not None:
            # The second RCI-sensitive point (see rci_sensitive_state).
            self.rci_sensitive_state = True
            if self.rci:
                # Our route vanished but (under make-before-break)
                # upstream traffic may still flow through the old next
                # hop; keep the failover advertisement alive until we
                # re-route.
                return
        target = (
            self.best.learned_from
            if self.best is not None and not self.best.is_origin
            else None
        )
        failover = (
            self._current_failover(target, changed_neighbor)
            if target is not None
            else None
        )
        desired: Optional[Tuple[ASN, ASPath]] = None
        if target is not None and failover is not None:
            desired = (target, failover.path)
        if desired == self._failover_sent:
            return
        if self._failover_sent is not None:
            old_target, _ = self._failover_sent
            if desired is None or desired[0] != old_target:
                if old_target in self.sessions:
                    self.stats.withdrawals += 1
                    self.transport.send(
                        self.asn, old_target, FailoverWithdrawal(), tag=self.tag
                    )
        if desired is not None:
            self.stats.announcements += 1
            self.transport.send(
                self.asn,
                desired[0],
                FailoverAnnouncement(path=(self.asn,) + desired[1]),
                tag=self.tag,
            )
        self._failover_sent = desired

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def _record_failover_state(self) -> None:
        if self.trace is None:
            return
        snapshot = tuple(
            (upstream, self.failover_rib[upstream])
            for upstream in sorted(self.failover_rib)
        )
        self.trace.record(self.engine.now, self.asn, FAILOVER, snapshot)

    def failover_state(self) -> Tuple[Tuple[ASN, ASPath], ...]:
        """Current failover entries in trace format."""
        return tuple(
            (upstream, self.failover_rib[upstream])
            for upstream in sorted(self.failover_rib)
        )
