"""R-BGP routing process: plain BGP plus failover paths and RCI."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bgp.decision import route_sort_key
from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.ribs import Route
from repro.bgp.speaker import BGPSpeaker
from repro.forwarding.rbgp_plane import FAILOVER, PRIMARY
from repro.rbgp.messages import FailoverAnnouncement, FailoverWithdrawal
from repro.types import ASN, ASPath, Link, normalize_link


def path_links(full_path: ASPath) -> frozenset:
    """Normalized set of links along a full (self-first) path."""
    return frozenset(
        normalize_link(u, v) for u, v in zip(full_path, full_path[1:])
    )


def path_contains_link(full_path: ASPath, link: Link) -> bool:
    """Whether a full path traverses a given (normalized) link."""
    return link in path_links(full_path)


class RBGPSpeaker(BGPSpeaker):
    """One AS's R-BGP process.

    ``rci=True`` is full R-BGP: updates carry root-cause links and the
    speaker purges every Adj-RIB-In/failover path through a root-caused
    link before re-running the decision.  ``rci=False`` is the paper's
    "R-BGP without RCI" baseline: failover paths are still advertised
    and used, but stale paths die only through normal path exploration.
    """

    def __init__(self, *args, rci: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rci = rci
        #: Links learned (via RCI) to be down; paths through them are
        #: rejected until the session state changes again.
        self.known_bad_links: set = set()
        #: Data-plane entry.  With RCI this retains the last known path
        #: when the control plane withdraws without replacement
        #: (make-before-break): packets keep flowing toward the AS
        #: adjacent to the failure, which diverts them onto a failover
        #: path.  RCI is what makes this retention safe — the root
        #: cause identifies exactly which stale state to trust.
        self.fib_path: Optional[ASPath] = None
        #: Failover paths received from upstream neighbors.
        self.failover_rib: Dict[ASN, ASPath] = {}
        #: (target neighbor, advertised path) of our last failover ad.
        self._failover_sent: Optional[Tuple[ASN, ASPath]] = None

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_message(self, sender: ASN, message) -> None:
        if sender not in self.sessions:
            return
        if isinstance(message, FailoverAnnouncement):
            self.failover_rib[sender] = message.path
            self._record_failover_state()
            return
        if isinstance(message, FailoverWithdrawal):
            if self.failover_rib.pop(sender, None) is not None:
                self._record_failover_state()
            return
        root_cause = getattr(message, "root_cause", None)
        if self.rci and root_cause is not None:
            self._purge_root_cause(root_cause)
        if (
            self.rci
            and isinstance(message, Announcement)
            and root_cause is None
            and self.known_bad_links
        ):
            # A fresh (non-root-caused) announcement attests that every
            # link on its path is up again: recovery information is
            # newer than our failure knowledge.  Route additions cause
            # no transient problems (Lemma 3.1), so trusting it is safe.
            for link in path_links((self.asn,) + message.path):
                self.known_bad_links.discard(link)
        if (
            self.rci
            and isinstance(message, Announcement)
            and self.known_bad_links
            and any(
                link in self.known_bad_links
                for link in path_links((self.asn,) + message.path)
            )
        ):
            # RCI lets us reject a stale path through a failed link as
            # if it were a withdrawal.
            message = Withdrawal(root_cause=root_cause)
        super().on_message(sender, message)
        self._update_failover_advertisement()

    def on_session_down(self, peer: ASN) -> None:
        if peer not in self.sessions:
            return
        if self.failover_rib.pop(peer, None) is not None:
            self._record_failover_state()
        if self._failover_sent is not None and self._failover_sent[0] == peer:
            self._failover_sent = None
        if self.rci:
            self._purge_root_cause(normalize_link(self.asn, peer))
        super().on_session_down(peer)
        self._update_failover_advertisement()

    def on_session_up(self, peer: ASN) -> None:
        # A recovery invalidates our stale failure knowledge.
        self.known_bad_links.discard(normalize_link(self.asn, peer))
        super().on_session_up(peer)
        self._update_failover_advertisement()

    # ------------------------------------------------------------------
    # RCI
    # ------------------------------------------------------------------

    def _purge_root_cause(self, link: Link) -> None:
        """Drop every known path that traverses the root-caused link."""
        self.known_bad_links.add(link)
        changed = False
        for neighbor in list(self.adj_rib_in):
            route = self.adj_rib_in.get(neighbor)
            full = (self.asn,) + route.path
            if path_contains_link(full, link):
                self.adj_rib_in.withdraw(neighbor)
                changed = True
        for upstream in list(self.failover_rib):
            full = (self.asn,) + self.failover_rib[upstream]
            if path_contains_link(full, link):
                del self.failover_rib[upstream]
                self._record_failover_state()
        # The decision re-runs in the caller (message/session handler);
        # nothing else to do here.
        del changed

    # ------------------------------------------------------------------
    # Data plane (FIB) semantics
    # ------------------------------------------------------------------

    def _record_best_change(self, old, new) -> None:
        path = new.path if new is not None else None
        if self.rci and path is None and self.fib_path is not None:
            # Retain the stale entry; the trace state is unchanged.
            return
        self.fib_path = path
        if self.trace is not None:
            self.trace.record(self.engine.now, self.asn, self.tag, path)

    @property
    def data_plane_path(self) -> Optional[ASPath]:
        """What the FIB currently forwards on (may be stale under RCI)."""
        return self.fib_path

    # ------------------------------------------------------------------
    # Failover advertisement
    # ------------------------------------------------------------------

    def compute_failover_route(self) -> Optional[Route]:
        """Most disjoint alternate to our primary path.

        Disjointness is measured in shared links with the primary path
        (R-BGP's criterion), ties broken by the regular decision order.
        Unlike regular announcements, failover paths are *not* subject
        to the valley-free export filter: the R-BGP paper explicitly
        relaxes export policy for failover paths (they are used only
        transiently, and ASes have a reachability incentive to accept
        the brief policy violation).  Without this relaxation a tier-1
        could never receive a failover path from a peer, crippling
        recovery from core-link failures.
        """
        if self.best is None or self.best.is_origin:
            return None
        target = self.best.learned_from
        primary_links = path_links((self.asn,) + self.best.path)
        best_candidate: Optional[Route] = None
        best_key = None
        for route in self.adj_rib_in.routes():
            if route.learned_from == target:
                continue
            if target in route.path:
                # Useless to the target: it would route through itself.
                continue
            overlap = len(
                primary_links & path_links((self.asn,) + route.path)
            )
            key = (overlap,) + route_sort_key(self.graph, self.asn, route)
            if best_key is None or key < best_key:
                best_candidate, best_key = route, key
        return best_candidate

    def _update_failover_advertisement(self) -> None:
        """(Re-)advertise our failover path to the primary next hop."""
        if self.rci and self.best is None and self._failover_sent is not None:
            # Our route vanished but (under make-before-break) upstream
            # traffic may still flow through the old next hop; keep the
            # failover advertisement alive until we re-route.
            return
        target = (
            self.best.learned_from
            if self.best is not None and not self.best.is_origin
            else None
        )
        failover = self.compute_failover_route() if target is not None else None
        desired: Optional[Tuple[ASN, ASPath]] = None
        if target is not None and failover is not None:
            desired = (target, (self.asn,) + failover.path)
        if desired == self._failover_sent:
            return
        if self._failover_sent is not None:
            old_target, _ = self._failover_sent
            if desired is None or desired[0] != old_target:
                if old_target in self.sessions:
                    self.stats.withdrawals += 1
                    self.transport.send(
                        self.asn, old_target, FailoverWithdrawal(), tag=self.tag
                    )
        if desired is not None:
            self.stats.announcements += 1
            self.transport.send(
                self.asn,
                desired[0],
                FailoverAnnouncement(path=desired[1]),
                tag=self.tag,
            )
        self._failover_sent = desired

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def _record_failover_state(self) -> None:
        if self.trace is None:
            return
        snapshot = tuple(
            (upstream, self.failover_rib[upstream])
            for upstream in sorted(self.failover_rib)
        )
        self.trace.record(self.engine.now, self.asn, FAILOVER, snapshot)

    def failover_state(self) -> Tuple[Tuple[ASN, ASPath], ...]:
        """Current failover entries in trace format."""
        return tuple(
            (upstream, self.failover_rib[upstream])
            for upstream in sorted(self.failover_rib)
        )
