"""Network of R-BGP speakers."""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.bgp.network import BGPNetwork, NetworkConfig
from repro.bgp.speaker import SpeakerConfig
from repro.forwarding.rbgp_plane import FAILOVER, PRIMARY
from repro.rbgp.speaker import RBGPSpeaker
from repro.topology.graph import ASGraph
from repro.types import ASN


class RBGPNetwork(BGPNetwork):
    """R-BGP over an AS graph; ``rci=False`` gives the no-RCI baseline.

    Mid-run episode events inherit the base network's deterministic
    sequences with R-BGP twists handled per speaker: ``restore_link``
    discards each endpoint's stale ``known_bad_links`` entry before
    re-advertising (recovery information outranks failure knowledge),
    and ``restore_as`` reboots the router through
    :meth:`repro.rbgp.speaker.RBGPSpeaker.reboot`, which wipes the
    failover RIB and explicitly forgoes the stale-FIB retention RCI
    normally applies when a best route vanishes.
    """

    TRACE_KEY: Hashable = PRIMARY

    def __init__(
        self,
        graph: ASGraph,
        destination: ASN,
        config: Optional[NetworkConfig] = None,
        *,
        rci: bool = True,
    ) -> None:
        self.rci = rci
        super().__init__(graph, destination, config)

    def start_is_rci_invariant(self) -> bool:
        """Whether the run so far was provably independent of ``rci``.

        RCI can only influence behavior at two guarded points (stale-FIB
        retention and the failover-advertisement hold-back); every
        speaker records when such a point was actually reached.  If none
        was, the full network state is bit-identical between the
        ``rci=True`` and ``rci=False`` variants, and one initial
        convergence can serve both (the experiment runner's twin-start
        sharing).
        """
        return not any(
            speaker.rci_sensitive_state for speaker in self.speakers.values()
        )

    def set_rci(self, rci: bool) -> None:
        """Switch the RCI variant of every speaker (twin-start restore)."""
        self.rci = rci
        for speaker in self.speakers.values():
            speaker.rci = rci

    def _make_speaker(self, asn: ASN, speaker_config: SpeakerConfig) -> RBGPSpeaker:
        return RBGPSpeaker(
            asn,
            self.graph,
            self.engine,
            self.transport,
            config=speaker_config,
            tag=self.TRACE_KEY,
            trace=self.trace,
            stats=self.stats,
            rci=self.rci,
        )

    def forwarding_state(self) -> Dict[Tuple[ASN, Hashable], object]:
        """FIB paths plus failover RIBs, in the trace key space."""
        state: Dict[Tuple[ASN, Hashable], object] = {}
        for asn, speaker in self.speakers.items():
            state[(asn, PRIMARY)] = speaker.data_plane_path
            state[(asn, FAILOVER)] = speaker.failover_state()
        return state
