"""R-BGP baseline (Kushman et al., NSDI'07), with and without RCI.

The paper benchmarks STAMP against R-BGP, which precomputes failover
paths and (in its full form) carries root cause information (RCI) in
updates.  This is an AS-level reproduction built on the BGP substrate:

* every AS advertises its most disjoint alternate path to the next-hop
  neighbor of its primary path (the failover path);
* packets whose primary is unusable divert once onto a received
  failover path, which is followed pinned (virtual-interface style);
* with RCI, updates triggered by a failure carry the failed link, and
  receivers immediately purge every path through it — eliminating
  stale-path exploration.
"""

from repro.rbgp.messages import FailoverAnnouncement, FailoverWithdrawal
from repro.rbgp.speaker import RBGPSpeaker
from repro.rbgp.network import RBGPNetwork

__all__ = [
    "FailoverAnnouncement",
    "FailoverWithdrawal",
    "RBGPSpeaker",
    "RBGPNetwork",
]
