"""R-BGP failover-path messages.

Failover paths travel on the same session as regular updates (FIFO with
them), but only toward the advertiser's current primary next hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import ASN, ASPath


@dataclass(frozen=True, slots=True)
class FailoverAnnouncement:
    """Advertise the sender's most disjoint alternate path.

    ``path`` is announcer-first, like a regular announcement.
    """

    path: ASPath

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("failover path must be non-empty")

    @property
    def sender(self) -> ASN:
        """The advertising AS."""
        return self.path[0]


@dataclass(frozen=True, slots=True)
class FailoverWithdrawal:
    """Retract a previously advertised failover path."""
