#!/usr/bin/env python3
"""Disjoint-path probability analysis (the paper's Figure 1 pipeline).

Computes Φ for every destination of a generated topology, prints the
CDF summary, and shows how intelligent locked-blue-provider selection
at the origin improves the odds (paper section 6.1).

Run:  python examples/disjoint_path_analysis.py
"""

from repro.analysis.cdf import fraction_at_most, fraction_greater, mean
from repro.analysis.phi import (
    best_blue_provider,
    phi_distribution,
    phi_for_destination,
    phi_with_intelligent_selection,
)
from repro.experiments.reporting import cdf_sparkline
from repro.analysis.cdf import empirical_cdf
from repro.topology.generators import InternetTopologyConfig, generate_internet_topology


def main(config: InternetTopologyConfig | None = None) -> None:
    config = config or InternetTopologyConfig(seed=4)
    graph, tiers = generate_internet_topology(config)
    print(f"Topology: {graph} with tier-1 clique {graph.tier1s()}")

    results = phi_distribution(graph)
    phis = [r.phi for r in results]
    print(f"\nPhi over {len(phis)} destinations:")
    print(f"  mean                : {mean(phis):.3f}   (paper: 0.92)")
    print(f"  fraction <= 0.7     : {fraction_at_most(phis, 0.7):.3f}   (paper: < 0.10)")
    print(f"  fraction  > 0.9     : {fraction_greater(phis, 0.9):.3f}   (paper: > 0.75)")
    print(f"  CDF sketch          : |{cdf_sparkline(empirical_cdf(phis))}|")

    smart = [phi_with_intelligent_selection(graph, d) for d in graph.ases]
    print(f"\nIntelligent origin selection (paper 6.1: 92% -> 97%):")
    print(f"  random choice mean      : {mean(phis):.3f}")
    print(f"  intelligent choice mean : {mean([r.phi for r in smart]):.3f}")

    # Drill into one multi-homed stub.
    stub = next(a for a in tiers.stub if graph.is_multihomed(a))
    detail = phi_for_destination(graph, stub)
    print(f"\nDestination AS {stub}: providers={graph.providers(stub)}")
    print(f"  uphill tier-1 chains (lambda) : {detail.n_paths}")
    print(f"  good locked blue chains       : {detail.n_good}")
    print(f"  Phi                           : {detail.phi:.3f}")
    print(f"  best locked blue provider     : {best_blue_provider(graph, stub)}")


if __name__ == "__main__":
    main()
