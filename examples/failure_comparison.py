#!/usr/bin/env python3
"""Protocol comparison under failures (a miniature Figure 2).

Generates an Internet-like topology, replays the paper's single
provider-link failure scenario over several instances for BGP, R-BGP
(with and without RCI) and STAMP, and renders the comparison as an
ASCII bar chart.

Run:  python examples/failure_comparison.py [n_instances] [workers]

Pass ``workers`` > 1 to fan the (instance, protocol) grid over worker
processes; any worker count produces byte-identical statistics.
"""

import sys

from repro.experiments.figures import fig2_single_link_failure
from repro.experiments.reporting import ascii_bar_chart
from repro.experiments.runner import ExperimentConfig, PROTOCOL_LABELS
from repro.topology.generators import InternetTopologyConfig


def main(
    instances: int = 5,
    workers: int = 1,
    topology: InternetTopologyConfig | None = None,
) -> None:
    config = ExperimentConfig(
        seed=7,
        topology=topology
        or InternetTopologyConfig(
            seed=7, n_tier1=6, n_tier2=30, n_tier3=70, n_stub=250
        ),
        n_instances=instances,
        workers=workers,
    )
    print(f"Simulating {instances} single-link-failure instances on a "
          f"{config.topology.total_ases}-AS topology (be patient)...")
    data = fig2_single_link_failure(config)
    measured = {
        PROTOCOL_LABELS[p]: v for p, v in data.mean_affected().items()
    }
    print()
    print(ascii_bar_chart(
        measured,
        title="Mean ASes with transient problems (single link failure)",
        unit=" ASes",
    ))
    print()
    disruption = data.mean_disruption()
    for protocol, seconds in disruption.items():
        print(f"  data-plane disruption, {PROTOCOL_LABELS[protocol]}: "
              f"{seconds:.2f}s")


if __name__ == "__main__":
    main(
        instances=int(sys.argv[1]) if len(sys.argv) > 1 else 5,
        workers=int(sys.argv[2]) if len(sys.argv) > 2 else 1,
    )
