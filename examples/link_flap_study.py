#!/usr/bin/env python3
"""Link-flap episode campaign with per-phase damage attribution.

The paper's Figure 2 fails a provider link once, cleanly.  Real
outages flap: the link fails, partially recovers, and fails again
while parts of the network still hold armed MRAI timers from the
previous round.  This study sweeps the packaged flap episode family
(``link_flap_episode``) over several instances and all four protocols,
then shows both views of the damage:

* the episode-wide comparison (problem intervals spanning phases), and
* the per-phase attribution table — which event of the episode
  disrupted whom (even phases fail the link, odd phases restore it).

Run:  python examples/link_flap_study.py [n_instances] [workers]

Any ``workers`` value produces byte-identical statistics (canonical
merge; see docs/scenarios.md for the episode determinism rules).
"""

import sys

from repro.experiments.figures import link_flap_comparison
from repro.experiments.reporting import ascii_bar_chart, format_table
from repro.experiments.runner import ExperimentConfig, PROTOCOL_LABELS
from repro.topology.generators import InternetTopologyConfig


def main(
    instances: int = 4,
    workers: int = 1,
    topology: InternetTopologyConfig | None = None,
    period: float = 35.0,
    flaps: int = 2,
) -> None:
    config = ExperimentConfig(
        seed=13,
        topology=topology
        or InternetTopologyConfig(
            seed=13, n_tier1=5, n_tier2=20, n_tier3=50, n_stub=160
        ),
        n_instances=instances,
        workers=workers,
    )
    print(
        f"Flapping a provider link {flaps}x (period {period:g}s) over "
        f"{instances} instances on a {config.topology.total_ases}-AS "
        f"topology..."
    )
    data = link_flap_comparison(config, period=period, flaps=flaps)

    print()
    print(ascii_bar_chart(
        {PROTOCOL_LABELS[p]: v for p, v in data.mean_affected().items()},
        title="Mean ASes with transient problems (episode-wide)",
        unit=" ASes",
    ))

    print()
    print("Per-phase attribution (mean affected ASes per injection):")
    headers = ["protocol"] + [
        ("fail" if k % 2 == 0 else "restore") + f" #{k // 2}"
        for k in range(data.n_phases())
    ]
    rows = [
        [PROTOCOL_LABELS[p]] + [f"{v:.1f}" for v in values]
        for p, values in data.mean_affected_by_phase().items()
    ]
    print(format_table(headers, rows))

    print()
    for protocol, seconds in data.mean_disruption().items():
        print(f"  total data-plane disruption, {PROTOCOL_LABELS[protocol]}: "
              f"{seconds:.2f}s")


if __name__ == "__main__":
    main(
        instances=int(sys.argv[1]) if len(sys.argv) > 1 else 4,
        workers=int(sys.argv[2]) if len(sys.argv) > 2 else 1,
    )
