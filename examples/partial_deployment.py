#!/usr/bin/env python3
"""Partial deployment analysis (paper section 6.3).

How much of STAMP's protection survives if only tier-1 ASes deploy it?
The paper reports ~75% of ASes keep two downhill node-disjoint paths.

Run:  python examples/partial_deployment.py
"""

from repro.analysis.deployment import (
    full_deployment_fraction,
    partial_deployment_fraction,
)
from repro.topology.generators import InternetTopologyConfig, generate_internet_topology


def main(
    config: InternetTopologyConfig | None = None,
    trial_counts: tuple = (8, 32, 128),
) -> None:
    config = config or InternetTopologyConfig(seed=12)
    graph, _ = generate_internet_topology(config)
    print(f"Topology: {graph}, tier-1 core size {len(graph.tier1s())}")

    full = full_deployment_fraction(graph)
    print(f"\nFull deployment (disjoint chain pair exists): {full:.3f}")

    print("\nTier-1-only deployment, by coloring trials:")
    for trials in trial_counts:
        fraction = partial_deployment_fraction(graph, trials=trials, seed=5)
        print(f"  {trials:4d} trials: {fraction:.3f}   (paper: ~0.75)")

    print("\nInterpretation: each tier-1 randomly assigns customer "
          "sessions to its red or blue process; an AS keeps disjoint "
          "paths when two disjoint uphill chains of the destination "
          "enter the core over differently-colored sessions.")


if __name__ == "__main__":
    main()
