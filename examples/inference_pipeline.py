#!/usr/bin/env python3
"""The paper's topology pipeline, end to end.

The paper derives its AS graph from RouteViews BGP tables with
relationships inferred by Gao's algorithm.  This example closes that
loop synthetically: generate a ground-truth topology, synthesize
RouteViews-style table dumps from converged routes, run Gao's inference
on the raw AS paths, and score the result against the ground truth.

Run:  python examples/inference_pipeline.py
"""

import io

from repro.topology.generators import InternetTopologyConfig, generate_internet_topology
from repro.topology.inference import infer_relationships
from repro.topology.routeviews import all_paths, dump_tables, parse_tables, synthesize_routeviews_tables


def main(
    config: InternetTopologyConfig | None = None, n_vantages: int = 15
) -> None:
    config = config or InternetTopologyConfig(
        seed=33, n_tier1=5, n_tier2=20, n_tier3=50, n_stub=120
    )
    truth, _ = generate_internet_topology(config)
    print(f"Ground truth: {truth}")

    tables = synthesize_routeviews_tables(truth, n_vantages=n_vantages, seed=2)
    print(f"Synthesized {len(tables)} vantage-point tables "
          f"({sum(len(t.paths) for t in tables)} AS paths)")

    # Round-trip through the text dump format, as if reading a feed.
    buffer = io.StringIO()
    dump_tables(tables, buffer)
    buffer.seek(0)
    tables = parse_tables(buffer)

    result = infer_relationships(all_paths(tables))
    print(f"Inferred: {len(result.c2p_links)} customer-provider links, "
          f"{len(result.peer_links)} peer links, "
          f"{len(result.sibling_links)} sibling candidates")

    accuracy = result.accuracy_against(truth)
    print("\nAccuracy against ground truth:")
    for name, value in sorted(accuracy.items()):
        print(f"  {name:8s}: {value:.3f}")
    print("\n(c2p recovery is strong; degree-based peer detection is the "
          "algorithm's known weak spot, amplified at small scale.)")


if __name__ == "__main__":
    main()
