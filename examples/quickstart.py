#!/usr/bin/env python3
"""Quickstart: run STAMP on a small topology and survive a failure.

Builds the paper-style example topology, converges STAMP for one
destination prefix, fails a provider link, and shows that the data
plane keeps delivering throughout — while plain BGP on the same event
suffers transient blackholes.

Run:  python examples/quickstart.py
"""

from repro.analysis.transient import analyze_transient_problems
from repro.bgp.network import BGPNetwork, NetworkConfig
from repro.forwarding.bgp_plane import BGPDataPlane
from repro.forwarding.stamp_plane import STAMPDataPlane
from repro.stamp.network import STAMPConfig, STAMPNetwork
from repro.topology.generators import example_paper_topology
from repro.types import Color, normalize_link


def main() -> None:
    graph = example_paper_topology()
    destination = 90
    failed_link = (90, 70)
    print(f"Topology: {graph}")
    print(f"Destination prefix originated by AS {destination}")

    # --- STAMP: two complementary processes per AS -------------------
    stamp = STAMPNetwork(graph, destination, STAMPConfig(seed=1))
    stamp.start()
    print(f"\nSTAMP converged; locked blue provider of the origin: "
          f"{stamp.nodes[destination].locked_blue_provider}")
    for asn in (10, 30, 60):
        print(f"  AS {asn}: red={stamp.best_path(asn, Color.RED)} "
              f"blue={stamp.best_path(asn, Color.BLUE)}")

    initial = stamp.forwarding_state()
    stamp.fail_link(*failed_link)
    stamp.run_to_convergence()
    report = analyze_transient_problems(
        stamp.trace, initial, STAMPDataPlane(destination), graph.ases,
        failed_links=frozenset({normalize_link(*failed_link)}),
    )
    print(f"\nAfter failing link {failed_link}:")
    print(f"  STAMP ASes with transient problems: {report.affected_count}")

    # --- plain BGP on the same event ----------------------------------
    bgp = BGPNetwork(graph, destination, NetworkConfig(seed=1))
    bgp.start()
    initial = bgp.forwarding_state()
    bgp.fail_link(*failed_link)
    bgp.run_to_convergence()
    report = analyze_transient_problems(
        bgp.trace, initial, BGPDataPlane(destination), graph.ases,
        failed_links=frozenset({normalize_link(*failed_link)}),
    )
    print(f"  BGP   ASes with transient problems: {report.affected_count}")

    # --- scaling up ---------------------------------------------------
    # Full figure reproductions fan their independent (instance,
    # protocol) simulations out over worker processes; results are
    # byte-identical for any worker count:
    #
    #   repro-stamp fig2 --instances 100 --workers 8
    #
    # or from Python:
    #
    #   from repro.experiments.figures import fig2_single_link_failure
    #   from repro.experiments.runner import ExperimentConfig
    #   fig2_single_link_failure(ExperimentConfig(n_instances=100, workers=8))


if __name__ == "__main__":
    main()
