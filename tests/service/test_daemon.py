"""Crash tests of the real daemon process (`repro-stamp serve`).

These spawn the actual CLI entry point, then do to it what production
does: ``kill -9`` mid-campaign, SIGTERM mid-campaign, restarts over
the same journal+ledger.  The contracts under test are the tentpole
acceptance criteria: no accepted campaign is ever forgotten, a
recovered campaign recomputes only its missing units, the final result
is byte-identical to an uninterrupted run's, and graceful shutdown
exits 0 having drained in-flight work.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.experiments.faults import fault_spec

SRC = str(Path(__file__).resolve().parents[2] / "src")
TINY_TOPOLOGY = {"seed": 5, "tier1": 3, "tier2": 8, "tier3": 16, "stubs": 35}
SPEC = {
    "kind": "fig2",
    "instances": 2,
    "protocols": ["bgp", "stamp"],
    "topology": TINY_TOPOLOGY,
}
# Unit order is instance-major: (0,bgp), (0,stamp), (1,bgp), (1,stamp).
# Hanging (1, bgp) deterministically stalls the campaign at 2/4 units.
HANG_THIRD_UNIT = fault_spec(
    "hang", kind="fig2-single-link", instance=1, protocol="bgp",
    hang_seconds=3600.0,
)


class Daemon:
    def __init__(self, tmp_path, *, env_extra=None, extra_args=None):
        env = dict(os.environ, PYTHONPATH=SRC)
        env.update(env_extra or {})
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0",
                "--ledger", str(tmp_path / "ledger.jsonl"),
                "--journal", str(tmp_path / "journal.jsonl"),
                *(extra_args or []),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        line = self.process.stdout.readline().strip()
        assert line.startswith("listening on http://"), line
        self.base = line.split("listening on ", 1)[1]

    def request(self, method, path, body=None, headers=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def json(self, method, path, body=None, headers=None):
        status, payload = self.request(method, path, body, headers)
        return status, json.loads(payload)

    def wait_state(self, cid, states, timeout=90.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, doc = self.json("GET", f"/campaigns/{cid}")
            if status == 200 and doc["state"] in states:
                return doc
            time.sleep(0.05)
        raise AssertionError(f"campaign {cid} never reached {states}: {doc}")

    def wait_progress(self, cid, resolved, timeout=90.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, doc = self.json("GET", f"/campaigns/{cid}")
            if (
                status == 200
                and doc["progress"]["resolved_units"] >= resolved
            ):
                return doc
            time.sleep(0.05)
        raise AssertionError(f"campaign {cid} never resolved {resolved}")

    def kill9(self):
        self.process.kill()
        self.process.wait(timeout=30)

    def sigterm(self, timeout=60):
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=timeout)


@pytest.fixture
def daemon_dir(tmp_path):
    yield tmp_path


def _run_to_done(tmp_path, spec):
    """One uninterrupted daemon lifetime; returns the result bytes."""
    daemon = Daemon(tmp_path)
    try:
        _, doc = daemon.json("POST", "/campaigns", spec)
        cid = doc["id"]
        daemon.wait_state(cid, ("done",))
        _, result = daemon.request("GET", f"/campaigns/{cid}/result")
        return cid, result
    finally:
        if daemon.process.poll() is None:
            assert daemon.sigterm() == 0


class TestKillNineRecovery:
    def test_killed_daemon_resumes_and_matches_uninterrupted(
        self, daemon_dir, tmp_path_factory
    ):
        # Phase 1: a daemon whose third unit hangs forever; kill -9 it
        # once the first two units are demonstrably done and ledgered.
        daemon = Daemon(
            daemon_dir, env_extra={"REPRO_FAULTS": HANG_THIRD_UNIT}
        )
        _, doc = daemon.json("POST", "/campaigns", SPEC)
        cid = doc["id"]
        stalled = daemon.wait_progress(cid, 2)
        assert stalled["state"] == "running"
        daemon.kill9()

        # Phase 2: restart clean over the same journal + ledger.  The
        # campaign is re-listed, requeued, and completes by computing
        # only the two units the crash swallowed.
        revived = Daemon(daemon_dir)
        try:
            final = revived.wait_state(cid, ("done",))
            assert final["executed"] == 2
            assert final["ledger_hits"] == 2
            _, resumed_result = revived.request(
                "GET", f"/campaigns/{cid}/result"
            )
        finally:
            assert revived.sigterm() == 0

        # Phase 3: control run in a fresh directory, never interrupted.
        control_cid, control_result = _run_to_done(
            tmp_path_factory.mktemp("control"), SPEC
        )
        assert control_cid == cid
        assert resumed_result == control_result

    def test_killed_daemon_relists_every_accepted_campaign(self, daemon_dir):
        daemon = Daemon(daemon_dir)
        specs = [dict(SPEC, seed=i) for i in range(3)]
        cids = []
        for spec in specs:
            status, doc = daemon.json("POST", "/campaigns", spec)
            assert status == 202
            cids.append(doc["id"])
        daemon.wait_state(cids[-1], ("done",))
        daemon.kill9()
        revived = Daemon(daemon_dir)
        try:
            _, listing = revived.json("GET", "/campaigns")
            assert sorted(c["id"] for c in listing["campaigns"]) == sorted(cids)
            for cid in cids:
                revived.wait_state(cid, ("done",))
        finally:
            assert revived.sigterm() == 0


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, daemon_dir):
        daemon = Daemon(daemon_dir)
        _, doc = daemon.json("POST", "/campaigns", SPEC)
        daemon.wait_state(doc["id"], ("done",))
        assert daemon.sigterm() == 0
        journal = (daemon_dir / "journal.jsonl").read_text()
        last = json.loads(journal.splitlines()[-1])
        assert last["body"]["event"] == "checkpoint"
        assert last["body"]["reason"] == "shutdown"

    def test_sigterm_mid_campaign_loses_nothing_and_resumes(self, daemon_dir):
        from repro.experiments.ledger import ResultLedger

        daemon = Daemon(
            daemon_dir, env_extra={"REPRO_FAULTS": HANG_THIRD_UNIT}
        )
        _, doc = daemon.json("POST", "/campaigns", SPEC)
        cid = doc["id"]
        daemon.wait_progress(cid, 2)
        # The hung unit cannot drain; the daemon gives up after its
        # drain timeout... which is an hour away.  But SIGTERM must
        # still stop admissions immediately and requeue-journal the
        # interrupted campaign on the in-process path only after the
        # unit ends — so here we verify the *ledger* kept both
        # completed units, then kill hard (the operator's escalation
        # path: TERM, wait, KILL).
        daemon.process.send_signal(signal.SIGTERM)
        time.sleep(1.0)
        daemon.kill9()
        with ResultLedger(daemon_dir / "ledger.jsonl") as ledger:
            assert len(ledger) == 2  # zero completed units lost
        revived = Daemon(daemon_dir)
        try:
            final = revived.wait_state(cid, ("done",))
            assert final["ledger_hits"] == 2
            assert final["executed"] == 2
        finally:
            assert revived.sigterm() == 0

    def test_sigterm_mid_campaign_requeues_and_exits_zero(self, daemon_dir):
        """With no hung unit, SIGTERM mid-run drains cooperatively:
        exit 0, the interrupted campaign journaled back to queued, and
        the restart finishes it from the ledger."""
        daemon = Daemon(daemon_dir)
        big = dict(SPEC, instances=150, protocols=["bgp"])
        _, doc = daemon.json("POST", "/campaigns", big)
        cid = doc["id"]
        daemon.wait_progress(cid, 2)
        assert daemon.sigterm() == 0
        revived = Daemon(daemon_dir)
        try:
            final = revived.wait_state(cid, ("done",))
            assert final["ledger_hits"] > 0
            assert final["ledger_hits"] + final["executed"] == 150
        finally:
            assert revived.sigterm() == 0

    def test_healthz_up_until_the_end(self, daemon_dir):
        daemon = Daemon(daemon_dir)
        status, doc = daemon.json("GET", "/healthz")
        assert status == 200 and doc == {"ok": True}
        status, doc = daemon.json("GET", "/readyz")
        assert status == 200
        assert daemon.sigterm() == 0
