"""Integration tests of the campaign service over real HTTP.

Each fixture boots the actual :class:`CampaignHTTPServer` on an
ephemeral port and talks to it with a plain HTTP client — the same
surface a curl user sees.  Campaigns run on the tiny 62-AS topology so
a full grid is a few hundred milliseconds.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.app import (
    CampaignHTTPServer,
    CampaignService,
    ServiceConfig,
)

TINY_TOPOLOGY = {"seed": 5, "tier1": 3, "tier2": 8, "tier3": 16, "stubs": 35}
SPEC = {
    "kind": "fig2",
    "instances": 2,
    "protocols": ["bgp", "stamp"],
    "topology": TINY_TOPOLOGY,
}


class ServiceClient:
    """One live service instance plus a blocking JSON client for it."""

    def __init__(self, tmp_path, *, start_executor=True, **config_overrides):
        settings = dict(
            journal_path=tmp_path / "journal.jsonl",
            ledger_path=tmp_path / "ledger.jsonl",
            workers=1,
        )
        settings.update(config_overrides)
        self.service = CampaignService(ServiceConfig(**settings))
        self.server = CampaignHTTPServer(("127.0.0.1", 0), self.service)
        if start_executor:
            self.service.start()
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        self.base = f"http://127.0.0.1:{self.server.server_address[1]}"

    def request(self, method, path, body=None, raw=False, headers=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = response.read()
                status, headers = response.status, response.headers
        except urllib.error.HTTPError as error:
            payload, status, headers = error.read(), error.code, error.headers
        if raw:
            return status, payload, headers
        return status, json.loads(payload), headers

    def wait_terminal(self, cid, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, doc, _ = self.request("GET", f"/campaigns/{cid}")
            if doc["state"] in ("done", "partial", "failed", "cancelled"):
                return doc
            time.sleep(0.02)
        raise AssertionError(f"campaign {cid} never finished: {doc}")

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.service.begin_shutdown()
        self.service.drain(timeout=30)


@pytest.fixture
def client(tmp_path):
    fixture = ServiceClient(tmp_path)
    yield fixture
    fixture.close()


@pytest.fixture
def parked(tmp_path):
    """A service whose executor never starts: queue state is frozen."""
    fixture = ServiceClient(tmp_path, start_executor=False, max_queue=2)
    yield fixture
    fixture.server.shutdown()
    fixture.server.server_close()


class TestHappyPath:
    def test_submit_poll_result(self, client):
        status, doc, _ = client.request("POST", "/campaigns", SPEC)
        assert status == 202
        assert doc["state"] in ("queued", "running")
        cid = doc["id"]
        final = client.wait_terminal(cid)
        assert final["state"] == "done"
        assert final["progress"] == {
            "total_units": 4, "resolved_units": 4, "failed_units": 0,
        }
        status, result, _ = client.request("GET", f"/campaigns/{cid}/result")
        assert status == 200
        assert result["id"] == cid
        assert result["samples"] == {"bgp": 2, "stamp": 2}
        assert set(result["mean_affected"]) == {"bgp", "stamp"}
        # Execution bookkeeping lives in status, never in the result.
        assert "executed" not in result and "ledger_hits" not in result

    def test_result_bytes_are_stable_across_reads(self, client):
        _, doc, _ = client.request("POST", "/campaigns", SPEC)
        client.wait_terminal(doc["id"])
        _, first, _ = client.request(
            "GET", f"/campaigns/{doc['id']}/result", raw=True
        )
        _, second, _ = client.request(
            "GET", f"/campaigns/{doc['id']}/result", raw=True
        )
        assert first == second

    def test_health_and_ready(self, client):
        assert client.request("GET", "/healthz")[0] == 200
        assert client.request("GET", "/readyz")[0] == 200

    def test_campaign_listing(self, client):
        _, doc, _ = client.request("POST", "/campaigns", SPEC)
        _, listing, _ = client.request("GET", "/campaigns")
        assert [c["id"] for c in listing["campaigns"]] == [doc["id"]]


class TestIdempotentSubmission:
    def test_resubmission_returns_the_existing_campaign(self, client):
        status1, doc1, _ = client.request("POST", "/campaigns", SPEC)
        status2, doc2, _ = client.request("POST", "/campaigns", SPEC)
        assert status1 == 202
        assert status2 == 200
        assert doc1["id"] == doc2["id"]

    def test_concurrent_same_spec_submissions_execute_once(self, client):
        statuses = []
        barrier = threading.Barrier(6)

        def submit():
            barrier.wait()
            status, doc, _ = client.request("POST", "/campaigns", SPEC)
            statuses.append((status, doc["id"]))

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(s for s, _ in statuses) == [200] * 5 + [202]
        assert len({cid for _, cid in statuses}) == 1
        cid = statuses[0][1]
        final = client.wait_terminal(cid)
        # One execution: the grid was computed exactly once.
        assert final["executed"] + final["ledger_hits"] == 4
        assert final["ledger_hits"] == 0
        _, listing, _ = client.request("GET", "/campaigns")
        assert len(listing["campaigns"]) == 1

    def test_resubmitting_a_finished_campaign_serves_the_result(self, client):
        _, doc, _ = client.request("POST", "/campaigns", SPEC)
        client.wait_terminal(doc["id"])
        status, again, _ = client.request("POST", "/campaigns", SPEC)
        assert status == 200
        assert again["state"] == "done"


class TestAdmissionControl:
    def test_invalid_spec_is_a_structured_400(self, client):
        status, doc, _ = client.request(
            "POST", "/campaigns", {"kind": "bogus", "instances": -1}
        )
        assert status == 400
        assert doc["error"] == "invalid campaign spec"
        assert {d["field"] for d in doc["details"]} == {"kind", "instances"}

    def test_unparseable_body_is_a_400(self, client):
        request = urllib.request.Request(
            client.base + "/campaigns", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_oversized_body_is_rejected(self, tmp_path):
        fixture = ServiceClient(tmp_path, max_body_bytes=64)
        try:
            status, doc, _ = fixture.request(
                "POST", "/campaigns",
                {"kind": "fig2", "protocols": ["bgp"] * 200},
            )
            assert status == 413
        finally:
            fixture.close()

    def test_full_queue_is_429_with_retry_after(self, parked):
        specs = [dict(SPEC, seed=i) for i in range(3)]
        assert parked.request("POST", "/campaigns", specs[0])[0] == 202
        assert parked.request("POST", "/campaigns", specs[1])[0] == 202
        status, doc, headers = parked.request("POST", "/campaigns", specs[2])
        assert status == 429
        assert "queue is full" in doc["error"]
        assert headers["Retry-After"]

    def test_overload_never_disturbs_the_inflight_campaign(self, tmp_path):
        # One lane makes the overload deterministic: the flood cannot
        # drain through a second lane while the control runs.
        fixture = ServiceClient(tmp_path, max_queue=1, max_concurrent=1)
        try:
            _, doc, _ = fixture.request(
                "POST", "/campaigns", dict(SPEC, instances=40)
            )
            cid = doc["id"]
            # Flood with distinct specs until the queue refuses.
            refused = 0
            for seed in range(1, 30):
                status, _, _ = fixture.request(
                    "POST", "/campaigns", dict(SPEC, seed=seed)
                )
                if status == 429:
                    refused += 1
            assert refused > 0
            final = fixture.wait_terminal(cid)
            assert final["state"] == "done"
            assert final["progress"]["failed_units"] == 0
        finally:
            fixture.close()

    def test_unknown_campaign_is_404(self, client):
        assert client.request("GET", "/campaigns/deadbeef")[0] == 404
        assert client.request("GET", "/campaigns/deadbeef/result")[0] == 404
        assert client.request("POST", "/campaigns/deadbeef/cancel")[0] == 404

    def test_result_before_finish_is_409_with_retry_after(self, parked):
        _, doc, _ = parked.request("POST", "/campaigns", SPEC)
        status, body, headers = parked.request(
            "GET", f"/campaigns/{doc['id']}/result"
        )
        assert status == 409
        assert headers["Retry-After"]

    def test_unknown_route_is_404(self, client):
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("POST", "/nope")[0] == 404

    def test_readyz_is_503_without_an_executor(self, parked):
        status, doc, headers = parked.request("GET", "/readyz")
        assert status == 503
        assert headers["Retry-After"]


class TestShutdown:
    def test_admissions_close_with_503(self, client):
        client.service.begin_shutdown()
        status, doc, headers = client.request("POST", "/campaigns", SPEC)
        assert status == 503
        assert "shutting down" in doc["error"]
        assert headers["Retry-After"]
        assert client.request("GET", "/readyz")[0] == 503
        # Reads keep working during the drain.
        assert client.request("GET", "/healthz")[0] == 200
        assert client.request("GET", "/campaigns")[0] == 200


class TestCancel:
    def test_cancel_queued_campaign(self, parked):
        _, doc, _ = parked.request("POST", "/campaigns", SPEC)
        status, cancelled, _ = parked.request(
            "POST", f"/campaigns/{doc['id']}/cancel"
        )
        assert status == 202
        assert cancelled["state"] == "cancelled"
        # Cancelling again is a conflict.
        assert parked.request(
            "POST", f"/campaigns/{doc['id']}/cancel"
        )[0] == 409

    def test_cancelled_campaign_requeues_on_resubmit(self, parked):
        _, doc, _ = parked.request("POST", "/campaigns", SPEC)
        parked.request("POST", f"/campaigns/{doc['id']}/cancel")
        status, requeued, _ = parked.request("POST", "/campaigns", SPEC)
        assert status == 202
        assert requeued["id"] == doc["id"]
        assert requeued["state"] == "queued"

    def test_cancel_running_campaign_drains_and_resumes(self, client):
        big = dict(SPEC, instances=150, protocols=["bgp"])
        _, doc, _ = client.request("POST", "/campaigns", big)
        cid = doc["id"]
        # Wait until it is demonstrably mid-run, then cancel.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, status_doc, _ = client.request("GET", f"/campaigns/{cid}")
            if (
                status_doc["state"] == "running"
                and status_doc["progress"]["resolved_units"] >= 2
            ):
                break
            time.sleep(0.01)
        client.request("POST", f"/campaigns/{cid}/cancel")
        final = client.wait_terminal(cid)
        assert final["state"] == "cancelled"
        resolved_at_cancel = final["progress"]["resolved_units"]
        assert 0 < resolved_at_cancel < 150
        # Resubmission resumes from the ledger: the cancelled units'
        # work is answered from disk, only the remainder recomputes.
        status, requeued, _ = client.request("POST", "/campaigns", big)
        assert status == 202
        final = client.wait_terminal(cid)
        assert final["state"] == "done"
        assert final["ledger_hits"] >= resolved_at_cancel
        assert final["executed"] + final["ledger_hits"] == 150


class TestRecovery:
    def test_finished_campaigns_survive_a_restart(self, tmp_path):
        first = ServiceClient(tmp_path)
        try:
            _, doc, _ = first.request("POST", "/campaigns", SPEC)
            cid = doc["id"]
            first.wait_terminal(cid)
            _, original, _ = first.request(
                "GET", f"/campaigns/{cid}/result", raw=True
            )
        finally:
            first.close()
        second = ServiceClient(tmp_path)
        try:
            status, doc, _ = second.request("GET", f"/campaigns/{cid}")
            assert status == 200
            assert doc["state"] == "done"
            _, recovered, _ = second.request(
                "GET", f"/campaigns/{cid}/result", raw=True
            )
            assert recovered == original
            # And resubmission still converges on the stored result.
            status, doc, _ = second.request("POST", "/campaigns", SPEC)
            assert status == 200 and doc["state"] == "done"
        finally:
            second.close()

    def test_queued_campaigns_resume_on_restart(self, tmp_path):
        parked = ServiceClient(tmp_path, start_executor=False, max_queue=4)
        _, doc, _ = parked.request("POST", "/campaigns", SPEC)
        cid = doc["id"]
        parked.server.shutdown()
        parked.server.server_close()
        # No drain, no checkpoint: this is the crash case.
        revived = ServiceClient(tmp_path)
        try:
            assert revived.service.recovered == 1
            assert revived.service.resumed == 1
            final = revived.wait_terminal(cid)
            assert final["state"] == "done"
        finally:
            revived.close()


class TestAuth:
    """Bearer-token gating of the mutating endpoints."""

    @pytest.fixture
    def locked(self, tmp_path):
        fixture = ServiceClient(
            tmp_path, start_executor=False, auth_token="s3cret"
        )
        yield fixture
        fixture.server.shutdown()
        fixture.server.server_close()

    def test_posts_without_token_are_401(self, locked):
        status, doc, headers = locked.request("POST", "/campaigns", SPEC)
        assert status == 401
        assert headers["WWW-Authenticate"] == "Bearer"
        assert "bearer token" in doc["error"]
        assert locked.request(
            "POST", "/campaigns/deadbeef/cancel"
        )[0] == 401

    def test_wrong_token_is_401(self, locked):
        status, _, _ = locked.request(
            "POST", "/campaigns", SPEC,
            headers={"Authorization": "Bearer wrong"},
        )
        assert status == 401

    def test_correct_token_admits(self, locked):
        status, doc, _ = locked.request(
            "POST", "/campaigns", SPEC,
            headers={"Authorization": "Bearer s3cret"},
        )
        assert status == 202
        status, _, _ = locked.request(
            "POST", f"/campaigns/{doc['id']}/cancel",
            headers={"Authorization": "Bearer s3cret"},
        )
        assert status == 202

    def test_probes_and_reads_stay_open(self, locked):
        assert locked.request("GET", "/healthz")[0] == 200
        # readyz answers without a token too (503: parked executor).
        assert locked.request("GET", "/readyz")[0] == 503
        assert locked.request("GET", "/campaigns")[0] == 200

    def test_no_token_configured_means_open(self, client):
        assert client.request("POST", "/campaigns", SPEC)[0] == 202


class TestReadiness:
    def test_readyz_reports_lanes_queue_and_budget(self, client):
        status, doc, _ = client.request("GET", "/readyz")
        assert status == 200
        assert doc["ready"] is True
        assert [lane["lane"] for lane in doc["lanes"]] == list(
            range(len(client.service._lanes))
        )
        assert all(lane["busy"] in (True, False) for lane in doc["lanes"])
        assert doc["queue_depth"] == 0
        budget = doc["worker_budget"]
        assert budget["total"] == budget["allocated"] + budget["free"]

    def test_busy_lane_is_visible(self, tmp_path):
        fixture = ServiceClient(tmp_path)
        try:
            _, doc, _ = fixture.request(
                "POST", "/campaigns", dict(SPEC, instances=80)
            )
            cid = doc["id"]
            deadline = time.monotonic() + 30
            busy = None
            while time.monotonic() < deadline:
                _, ready_doc, _ = fixture.request("GET", "/readyz")
                busy = [
                    lane for lane in ready_doc["lanes"] if lane["busy"]
                ]
                if busy:
                    break
                time.sleep(0.01)
            assert busy and busy[0]["campaign"] == cid
            fixture.wait_terminal(cid)
        finally:
            fixture.close()


class TestRetryAfter:
    def test_fallback_constant_before_any_campaign_finishes(self, parked):
        assert parked.service.retry_after_estimate() == (
            parked.service.config.retry_after
        )

    def test_estimate_scales_with_depth_and_durations(self, parked):
        service = parked.service
        # Two queued campaigns, no busy lanes, 10s mean duration,
        # default 2 lanes: ceil((2 + 1) * 10 / 2) = 15.
        parked.request("POST", "/campaigns", SPEC)
        parked.request("POST", "/campaigns", dict(SPEC, seed=7))
        service._durations.extend([8.0, 12.0])
        assert service.retry_after_estimate() == 15

    def test_estimate_is_floored_and_capped(self, parked):
        service = parked.service
        service._durations.append(0.001)
        assert service.retry_after_estimate() == 1
        service._durations.clear()
        service._durations.append(1e6)
        assert service.retry_after_estimate() == 300

    def test_queue_full_carries_the_estimate(self, tmp_path):
        fixture = ServiceClient(
            tmp_path, start_executor=False, max_queue=1
        )
        try:
            fixture.service._durations.append(20.0)
            fixture.request("POST", "/campaigns", SPEC)
            status, _, headers = fixture.request(
                "POST", "/campaigns", dict(SPEC, seed=9)
            )
            assert status == 429
            estimate = fixture.service.retry_after_estimate()
            assert int(headers["Retry-After"]) == estimate > 1
        finally:
            fixture.server.shutdown()
            fixture.server.server_close()


class TestLaneStatus:
    def test_running_campaign_reports_its_lane(self, tmp_path):
        fixture = ServiceClient(tmp_path)
        try:
            _, doc, _ = fixture.request(
                "POST", "/campaigns", dict(SPEC, instances=80)
            )
            cid = doc["id"]
            deadline = time.monotonic() + 30
            seen_lane = None
            while time.monotonic() < deadline:
                _, status_doc, _ = fixture.request(
                    "GET", f"/campaigns/{cid}"
                )
                if status_doc["state"] == "running":
                    seen_lane = status_doc.get("lane")
                    break
                time.sleep(0.01)
            assert seen_lane in range(len(fixture.service._lanes))
            final = fixture.wait_terminal(cid)
            assert "lane" not in final
        finally:
            fixture.close()
