"""The campaign lifecycle state machine: every edge, and no others."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.state import (
    CANCELLED,
    Campaign,
    DONE,
    FAILED,
    PARTIAL,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    advance,
)

ALL = (QUEUED, RUNNING, DONE, PARTIAL, FAILED, CANCELLED)

VALID = {
    (QUEUED, RUNNING), (QUEUED, CANCELLED),
    (RUNNING, DONE), (RUNNING, PARTIAL), (RUNNING, FAILED),
    (RUNNING, CANCELLED), (RUNNING, QUEUED),
    (FAILED, QUEUED), (CANCELLED, QUEUED),
}


class TestTransitions:
    @pytest.mark.parametrize("current,new", sorted(VALID))
    def test_valid_edges_advance(self, current, new):
        assert advance(current, new) == new

    @pytest.mark.parametrize(
        "current,new",
        sorted(
            (c, n) for c in ALL for n in ALL
            if (c, n) not in VALID
        ),
    )
    def test_everything_else_is_rejected(self, current, new):
        with pytest.raises(ServiceError, match="invalid campaign transition"):
            advance(current, new)

    def test_done_and_partial_are_frozen(self):
        # The idempotency contract: a finished result never mutates.
        for frozen in (DONE, PARTIAL):
            for new in ALL:
                with pytest.raises(ServiceError):
                    advance(frozen, new)

    def test_unknown_state_is_loud(self):
        with pytest.raises(ServiceError, match="unknown campaign state"):
            advance("limbo", QUEUED)


class TestCampaignRecord:
    def test_requeue_reset_clears_execution_state_only(self):
        campaign = Campaign(
            campaign_id="c1", spec_document={"kind": "fig2"},
            state=FAILED, total_units=8, resolved_units=3,
            executed=3, ledger_hits=0,
            failures=[{"kind": "x"}], error="boom",
        )
        campaign.stop_event.set()
        campaign.cancel_requested = True
        campaign.reset_for_requeue()
        assert not campaign.stop_event.is_set()
        assert not campaign.cancel_requested
        assert campaign.resolved_units == 0
        assert campaign.failures == [] and campaign.error is None
        assert campaign.total_units == 8  # identity survives
        assert campaign.spec_document == {"kind": "fig2"}

    def test_status_document_shape(self):
        campaign = Campaign(
            campaign_id="c1", spec_document={"kind": "fig2"},
            total_units=8, resolved_units=2,
        )
        doc = campaign.status_document(queue_position=1)
        assert doc["id"] == "c1"
        assert doc["state"] == QUEUED
        assert doc["queue_position"] == 1
        assert doc["progress"] == {
            "total_units": 8, "resolved_units": 2, "failed_units": 0,
        }
        assert "error" not in doc and "cancelling" not in doc

    def test_status_document_flags_cancelling_while_running(self):
        campaign = Campaign(
            campaign_id="c1", spec_document={}, state=RUNNING,
        )
        campaign.cancel_requested = True
        assert campaign.status_document()["cancelling"] is True

    def test_status_document_reports_the_lane_only_while_assigned(self):
        campaign = Campaign(
            campaign_id="c1", spec_document={}, state=RUNNING,
        )
        assert "lane" not in campaign.status_document()
        campaign.lane = 1
        assert campaign.status_document()["lane"] == 1
        campaign.reset_for_requeue()
        assert campaign.lane is None

    def test_terminal_states_cover_exactly_the_four(self):
        assert TERMINAL_STATES == {DONE, PARTIAL, FAILED, CANCELLED}
