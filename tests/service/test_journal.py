"""Crash-safety tests of the campaign journal (append + replay)."""

from __future__ import annotations

import json
import logging

from repro.service.journal import CampaignJournal


def _submit(journal, cid, ts=1.0):
    journal.append({
        "event": "submitted", "id": cid,
        "spec": {"kind": "fig2", "instances": 2}, "ts": ts,
    })


class TestReplay:
    def test_submitted_then_states_fold_to_last_state(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            _submit(journal, "c1")
            journal.append(
                {"event": "state", "id": "c1", "state": "running", "ts": 2.0}
            )
            journal.append(
                {"event": "state", "id": "c1", "state": "done", "ts": 3.0,
                 "result": {"mean": 1.5}, "executed": 4, "ledger_hits": 0,
                 "failures": []}
            )
        campaigns, dropped = CampaignJournal(tmp_path / "j.jsonl").replay()
        assert dropped == 0
        assert list(campaigns) == ["c1"]
        entry = campaigns["c1"]
        assert entry["state"] == "done"
        assert entry["result"] == {"mean": 1.5}
        assert entry["executed"] == 4
        assert entry["spec"] == {"kind": "fig2", "instances": 2}

    def test_replay_preserves_submission_order(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            for cid in ("b", "a", "c"):
                _submit(journal, cid)
        campaigns, _ = CampaignJournal(tmp_path / "j.jsonl").replay()
        assert list(campaigns) == ["b", "a", "c"]

    def test_missing_file_replays_empty(self, tmp_path):
        campaigns, dropped = CampaignJournal(tmp_path / "nope.jsonl").replay()
        assert campaigns == {} and dropped == 0

    def test_checkpoint_records_are_ignored_for_state(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            _submit(journal, "c1")
            journal.append(
                {"event": "checkpoint", "ts": 9.0, "reason": "shutdown"}
            )
        campaigns, dropped = CampaignJournal(tmp_path / "j.jsonl").replay()
        assert dropped == 0
        assert campaigns["c1"]["state"] == "queued"

    def test_state_for_unknown_campaign_is_skipped(self, tmp_path, caplog):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            journal.append(
                {"event": "state", "id": "ghost", "state": "done", "ts": 1.0}
            )
        with caplog.at_level(logging.WARNING, "repro.service.journal"):
            campaigns, dropped = CampaignJournal(
                tmp_path / "j.jsonl"
            ).replay()
        assert campaigns == {} and dropped == 1
        assert any("unknown campaign" in r.message for r in caplog.records)


class TestTornAndCorrupt:
    def test_torn_tail_is_skipped_and_sealed(self, tmp_path, caplog):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            _submit(journal, "c1")
            line = journal.encode_record(
                {"event": "state", "id": "c1", "state": "running", "ts": 2.0}
            )
        with open(path, "ab") as handle:
            handle.write(line[: len(line) // 2])  # crash mid-append
        with caplog.at_level(logging.WARNING, "repro.service.journal"):
            campaigns, dropped = CampaignJournal(path).replay()
        assert dropped == 1
        assert campaigns["c1"]["state"] == "queued"
        # A reopened journal seals the tail; later appends survive.
        with CampaignJournal(path) as resumed:
            resumed.append(
                {"event": "state", "id": "c1", "state": "running", "ts": 3.0}
            )
        campaigns, dropped = CampaignJournal(path).replay()
        assert dropped == 1
        assert campaigns["c1"]["state"] == "running"

    def test_tampered_body_fails_the_digest(self, tmp_path, caplog):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            _submit(journal, "c1")
            journal.append(
                {"event": "state", "id": "c1", "state": "done", "ts": 2.0}
            )
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["body"]["state"] = "failed"  # bit rot / tampering
        lines[1] = (json.dumps(record) + "\n").encode("ascii")
        path.write_bytes(b"".join(lines))
        with caplog.at_level(logging.WARNING, "repro.service.journal"):
            campaigns, dropped = CampaignJournal(path).replay()
        assert dropped == 1
        assert campaigns["c1"]["state"] == "queued"
        assert any("digest mismatch" in r.message for r in caplog.records)

    def test_garbage_never_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"\x00\xff{{{\n[1,2]\n")
        campaigns, dropped = CampaignJournal(path).replay()
        assert campaigns == {} and dropped == 2


class TestRotation:
    def test_compact_preserves_the_replay_exactly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            _submit(journal, "c1", ts=1.0)
            journal.append(
                {"event": "state", "id": "c1", "state": "done", "ts": 2.0,
                 "result": {"mean": 1.5}, "executed": 4, "ledger_hits": 0,
                 "failures": []}
            )
            _submit(journal, "c2", ts=3.0)
            journal.append(
                {"event": "state", "id": "c2", "state": "running", "ts": 4.0}
            )
            before, _ = journal.replay()
            summary = journal.compact()
        assert summary["campaigns"] == 2 and summary["evicted"] == 0
        assert summary["bytes_after"] < summary["bytes_before"]
        after, dropped = CampaignJournal(path).replay()
        assert dropped == 0
        assert after == before  # values *and* insertion order
        assert list(after) == list(before)

    def test_snapshot_plus_tail_replays_like_the_unrotated_file(
        self, tmp_path
    ):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            _submit(journal, "c1", ts=1.0)
            journal.append(
                {"event": "state", "id": "c1", "state": "running", "ts": 2.0}
            )
            journal.compact()
            # Tail records after the rotation keep folding on top.
            journal.append(
                {"event": "state", "id": "c1", "state": "done", "ts": 3.0,
                 "result": {"mean": 2.0}}
            )
            _submit(journal, "c2", ts=4.0)
        campaigns, dropped = CampaignJournal(path).replay()
        assert dropped == 0
        assert campaigns["c1"]["state"] == "done"
        assert campaigns["c1"]["result"] == {"mean": 2.0}
        assert campaigns["c2"]["state"] == "queued"

    def test_compact_is_idempotent_and_recursive(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            _submit(journal, "c1")
            journal.compact()
            first, _ = journal.replay()
            journal.compact()  # snapshot of a snapshot
            second, _ = journal.replay()
        assert first == second

    def test_max_age_evicts_only_old_terminal_campaigns(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            _submit(journal, "old-done", ts=10.0)
            journal.append(
                {"event": "state", "id": "old-done", "state": "done",
                 "ts": 20.0}
            )
            _submit(journal, "old-queued", ts=10.0)  # never evicted
            _submit(journal, "fresh-done", ts=10.0)
            journal.append(
                {"event": "state", "id": "fresh-done", "state": "done",
                 "ts": 990.0}
            )
            summary = journal.compact(max_age_seconds=100, now=1000.0)
        assert summary["evicted"] == 1
        campaigns, _ = CampaignJournal(path).replay()
        assert set(campaigns) == {"old-queued", "fresh-done"}

    def test_maybe_compact_triggers_on_size_only(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        _submit(journal, "c1")
        assert journal.maybe_compact(10**6) is False  # well under
        for ts in range(2, 30):
            journal.append(
                {"event": "state", "id": "c1", "state": "running",
                 "ts": float(ts)}
            )
        grown = journal.size()
        assert journal.maybe_compact(grown // 2) is True
        assert journal.size() < grown
        # Thrash guard: a snapshot already past the bound does not
        # recompact until the file doubles again.
        assert journal.maybe_compact(1) is False
        journal.close()

    def test_appends_survive_rotation(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            _submit(journal, "c1")
            journal.compact()
            _submit(journal, "c2")  # append on the rotated file
        campaigns, dropped = CampaignJournal(path).replay()
        assert dropped == 0
        assert set(campaigns) == {"c1", "c2"}

    def test_stats_counts_records_snapshots_and_liveness(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            _submit(journal, "c1")
            journal.append(
                {"event": "state", "id": "c1", "state": "done", "ts": 2.0}
            )
            _submit(journal, "c2")
            journal.compact()
            _submit(journal, "c3")
            stats = journal.stats()
        assert stats["records"] == 2  # one snapshot + one tail append
        assert stats["snapshots"] == 1
        assert stats["campaigns"] == 3
        assert stats["active_campaigns"] == 2  # c2 queued, c3 queued
        assert stats["dropped_records"] == 0
        assert stats["file_bytes"] > 0
