"""Crash-safety tests of the campaign journal (append + replay)."""

from __future__ import annotations

import json
import logging

from repro.service.journal import CampaignJournal


def _submit(journal, cid, ts=1.0):
    journal.append({
        "event": "submitted", "id": cid,
        "spec": {"kind": "fig2", "instances": 2}, "ts": ts,
    })


class TestReplay:
    def test_submitted_then_states_fold_to_last_state(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            _submit(journal, "c1")
            journal.append(
                {"event": "state", "id": "c1", "state": "running", "ts": 2.0}
            )
            journal.append(
                {"event": "state", "id": "c1", "state": "done", "ts": 3.0,
                 "result": {"mean": 1.5}, "executed": 4, "ledger_hits": 0,
                 "failures": []}
            )
        campaigns, dropped = CampaignJournal(tmp_path / "j.jsonl").replay()
        assert dropped == 0
        assert list(campaigns) == ["c1"]
        entry = campaigns["c1"]
        assert entry["state"] == "done"
        assert entry["result"] == {"mean": 1.5}
        assert entry["executed"] == 4
        assert entry["spec"] == {"kind": "fig2", "instances": 2}

    def test_replay_preserves_submission_order(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            for cid in ("b", "a", "c"):
                _submit(journal, cid)
        campaigns, _ = CampaignJournal(tmp_path / "j.jsonl").replay()
        assert list(campaigns) == ["b", "a", "c"]

    def test_missing_file_replays_empty(self, tmp_path):
        campaigns, dropped = CampaignJournal(tmp_path / "nope.jsonl").replay()
        assert campaigns == {} and dropped == 0

    def test_checkpoint_records_are_ignored_for_state(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            _submit(journal, "c1")
            journal.append(
                {"event": "checkpoint", "ts": 9.0, "reason": "shutdown"}
            )
        campaigns, dropped = CampaignJournal(tmp_path / "j.jsonl").replay()
        assert dropped == 0
        assert campaigns["c1"]["state"] == "queued"

    def test_state_for_unknown_campaign_is_skipped(self, tmp_path, caplog):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            journal.append(
                {"event": "state", "id": "ghost", "state": "done", "ts": 1.0}
            )
        with caplog.at_level(logging.WARNING, "repro.service.journal"):
            campaigns, dropped = CampaignJournal(
                tmp_path / "j.jsonl"
            ).replay()
        assert campaigns == {} and dropped == 1
        assert any("unknown campaign" in r.message for r in caplog.records)


class TestTornAndCorrupt:
    def test_torn_tail_is_skipped_and_sealed(self, tmp_path, caplog):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            _submit(journal, "c1")
            line = journal.encode_record(
                {"event": "state", "id": "c1", "state": "running", "ts": 2.0}
            )
        with open(path, "ab") as handle:
            handle.write(line[: len(line) // 2])  # crash mid-append
        with caplog.at_level(logging.WARNING, "repro.service.journal"):
            campaigns, dropped = CampaignJournal(path).replay()
        assert dropped == 1
        assert campaigns["c1"]["state"] == "queued"
        # A reopened journal seals the tail; later appends survive.
        with CampaignJournal(path) as resumed:
            resumed.append(
                {"event": "state", "id": "c1", "state": "running", "ts": 3.0}
            )
        campaigns, dropped = CampaignJournal(path).replay()
        assert dropped == 1
        assert campaigns["c1"]["state"] == "running"

    def test_tampered_body_fails_the_digest(self, tmp_path, caplog):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            _submit(journal, "c1")
            journal.append(
                {"event": "state", "id": "c1", "state": "done", "ts": 2.0}
            )
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["body"]["state"] = "failed"  # bit rot / tampering
        lines[1] = (json.dumps(record) + "\n").encode("ascii")
        path.write_bytes(b"".join(lines))
        with caplog.at_level(logging.WARNING, "repro.service.journal"):
            campaigns, dropped = CampaignJournal(path).replay()
        assert dropped == 1
        assert campaigns["c1"]["state"] == "queued"
        assert any("digest mismatch" in r.message for r in caplog.records)

    def test_garbage_never_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"\x00\xff{{{\n[1,2]\n")
        campaigns, dropped = CampaignJournal(path).replay()
        assert campaigns == {} and dropped == 2
