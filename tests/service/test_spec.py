"""Spec validation and the content-hash campaign identity."""

from __future__ import annotations

import pytest

from repro.errors import SpecValidationError
from repro.service.spec import CampaignSpec, ServiceLimits


def _fields(excinfo):
    return {d["field"] for d in excinfo.value.details}


class TestParsing:
    def test_minimal_spec_fills_defaults(self):
        spec = CampaignSpec.parse({"kind": "fig2"})
        assert spec.instances == 10
        assert spec.protocols == ("bgp", "rbgp-norci", "rbgp", "stamp")
        assert spec.topology == {
            "seed": 0, "tier1": 8, "tier2": 48, "tier3": 120, "stubs": 440,
        }
        assert spec.total_units() == 40

    def test_every_error_is_reported_at_once(self):
        with pytest.raises(SpecValidationError) as excinfo:
            CampaignSpec.parse({
                "kind": "nope",
                "instances": -3,
                "protocols": ["bgp", "ospf"],
                "typo": True,
            })
        assert _fields(excinfo) == {
            "kind", "instances", "protocols", "typo",
        }

    def test_unknown_topology_field_is_rejected(self):
        with pytest.raises(SpecValidationError) as excinfo:
            CampaignSpec.parse(
                {"kind": "fig2", "topology": {"tier4": 9}}
            )
        assert _fields(excinfo) == {"topology.tier4"}

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(SpecValidationError) as excinfo:
            CampaignSpec.parse([1, 2, 3])
        assert _fields(excinfo) == {"$"}

    def test_instances_over_ceiling_is_a_400_not_a_clamp(self):
        limits = ServiceLimits(max_instances=50)
        with pytest.raises(SpecValidationError) as excinfo:
            CampaignSpec.parse({"kind": "fig2", "instances": 51}, limits)
        assert _fields(excinfo) == {"instances"}

    def test_topology_total_over_ceiling_is_rejected(self):
        limits = ServiceLimits(max_total_ases=100)
        with pytest.raises(SpecValidationError) as excinfo:
            CampaignSpec.parse(
                {"kind": "fig2",
                 "topology": {"tier1": 3, "tier2": 8, "tier3": 16,
                              "stubs": 500}},
                limits,
            )
        assert _fields(excinfo) == {"topology"}

    def test_execution_knobs_clamp_instead_of_rejecting(self):
        limits = ServiceLimits(
            max_retries=2, max_unit_timeout=60.0, max_workers=4
        )
        spec = CampaignSpec.parse(
            {"kind": "fig2", "retries": 99, "unit_timeout": 3600.0,
             "workers": 64},
            limits,
        )
        assert spec.retries == 2
        assert spec.unit_timeout == 60.0
        assert spec.workers == 4

    def test_workers_must_be_a_positive_integer(self):
        for bad in (0, -1, 1.5, "four", True):
            with pytest.raises(SpecValidationError) as excinfo:
                CampaignSpec.parse({"kind": "fig2", "workers": bad})
            assert _fields(excinfo) == {"workers"}

    def test_workers_default_to_none(self):
        spec = CampaignSpec.parse({"kind": "fig2", "workers": 3})
        assert spec.workers == 3
        assert CampaignSpec.parse({"kind": "fig2"}).workers is None

    def test_flap_knobs_only_valid_for_episode_kinds(self):
        with pytest.raises(SpecValidationError) as excinfo:
            CampaignSpec.parse({"kind": "fig2", "period": 10.0, "flaps": 3})
        assert _fields(excinfo) == {"period", "flaps"}
        spec = CampaignSpec.parse({"kind": "flap"})
        assert spec.period == 40.0 and spec.flaps == 2


class TestIdentity:
    def test_equal_specs_hash_equal_however_written(self):
        sparse = CampaignSpec.parse({"kind": "fig2"})
        explicit = CampaignSpec.parse({
            "kind": "fig2", "seed": 0, "instances": 10,
            "protocols": ["stamp", "bgp", "rbgp", "rbgp-norci"],
            "topology": {"seed": 0, "tier1": 8, "tier2": 48,
                         "tier3": 120, "stubs": 440},
        })
        assert sparse.campaign_id() == explicit.campaign_id()

    def test_execution_knobs_do_not_change_the_id(self):
        patient = CampaignSpec.parse(
            {"kind": "fig2", "retries": 3, "unit_timeout": 120.0,
             "workers": 6}
        )
        default = CampaignSpec.parse({"kind": "fig2"})
        assert patient.campaign_id() == default.campaign_id()

    def test_work_shaping_knobs_do_change_the_id(self):
        base = CampaignSpec.parse({"kind": "fig2"}).campaign_id()
        assert CampaignSpec.parse(
            {"kind": "fig2", "seed": 1}
        ).campaign_id() != base
        assert CampaignSpec.parse(
            {"kind": "fig2", "instances": 11}
        ).campaign_id() != base
        assert CampaignSpec.parse(
            {"kind": "fig3a"}
        ).campaign_id() != base
        assert CampaignSpec.parse(
            {"kind": "fig2", "protocols": ["bgp"]}
        ).campaign_id() != base

    def test_flap_knobs_change_the_id(self):
        base = CampaignSpec.parse({"kind": "flap"}).campaign_id()
        assert CampaignSpec.parse(
            {"kind": "flap", "flaps": 3}
        ).campaign_id() != base

    def test_document_round_trips_to_the_same_id(self):
        spec = CampaignSpec.parse(
            {"kind": "flap", "instances": 4, "protocols": ["bgp", "stamp"]}
        )
        rebuilt = CampaignSpec.from_document(spec.canonical_document())
        assert rebuilt.campaign_id() == spec.campaign_id()
        assert rebuilt.canonical_document() == spec.canonical_document()


class TestExecutionSurface:
    def test_scenario_kinds_map_to_ledger_unit_kinds(self):
        assert CampaignSpec.parse(
            {"kind": "fig2"}
        ).unit_kind() == "fig2-single-link"
        assert CampaignSpec.parse(
            {"kind": "flap"}
        ).unit_kind() == "link-flap"

    def test_flap_builder_binds_its_knobs(self):
        spec = CampaignSpec.parse({"kind": "flap", "period": 15.0, "flaps": 4})
        builder = spec.builder()
        assert builder.keywords == {"period": 15.0, "flaps": 4}

    def test_scenario_builder_is_module_level(self):
        # Ledger keys require an importable builder identity.
        builder = CampaignSpec.parse({"kind": "fig3b"}).builder()
        assert builder.__module__ == "repro.experiments.scenarios"
