"""Chaos tests of the concurrent campaign scheduler.

The lane model under test: ``--max-concurrent`` executor lanes pull
from one FIFO queue and share one worker budget, and every robustness
guarantee the single-executor service made still holds with several
campaigns in flight — ``kill -9`` with two running and one queued
loses nothing and changes no result byte, a hung campaign on one lane
never blocks the other, and the journal can rotate mid-campaign and
still recover from snapshot+tail.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time

from repro.experiments.faults import combine_specs, fault_spec
from test_daemon import SRC, SPEC, Daemon

# Unit order is instance-major: (0,bgp), (0,stamp), (1,bgp), (1,stamp).
# Hanging (1, bgp) stalls a 2x2 campaign deterministically at 2/4 —
# one fault per seed, so two campaigns stall on two different lanes.
HANG_SEED_1 = fault_spec(
    "hang", kind="fig2-single-link", seed=1, instance=1, protocol="bgp",
    hang_seconds=3600.0,
)
HANG_SEED_2 = fault_spec(
    "hang", kind="fig2-single-link", seed=2, instance=1, protocol="bgp",
    hang_seconds=3600.0,
)

SPEC_A = dict(SPEC, seed=1)
SPEC_B = dict(SPEC, seed=2)
SPEC_C = dict(SPEC, seed=3)


def _controls(tmp_path_factory, specs):
    """Uninterrupted result bytes for ``specs``, one fresh daemon."""
    control = Daemon(tmp_path_factory.mktemp("control"))
    results = {}
    try:
        for spec in specs:
            _, doc = control.json("POST", "/campaigns", spec)
            cid = doc["id"]
            control.wait_state(cid, ("done",))
            _, results[cid] = control.request(
                "GET", f"/campaigns/{cid}/result"
            )
    finally:
        assert control.sigterm() == 0
    return results


class TestConcurrentKillNine:
    def test_two_inflight_plus_one_queued_survive_kill9_byte_identical(
        self, tmp_path, tmp_path_factory
    ):
        # Phase 1: two campaigns hang mid-run on their own lanes; a
        # third waits in the queue behind them.
        daemon = Daemon(
            tmp_path,
            env_extra={
                "REPRO_FAULTS": combine_specs(HANG_SEED_1, HANG_SEED_2)
            },
        )
        cids = {}
        for name, spec in (("a", SPEC_A), ("b", SPEC_B), ("c", SPEC_C)):
            status, doc = daemon.json("POST", "/campaigns", spec)
            assert status == 202
            cids[name] = doc["id"]
        stalled_a = daemon.wait_progress(cids["a"], 2)
        stalled_b = daemon.wait_progress(cids["b"], 2)
        assert stalled_a["state"] == stalled_b["state"] == "running"
        # Both lanes demonstrably busy at once, on distinct lanes.
        assert {stalled_a["lane"], stalled_b["lane"]} == {0, 1}
        _, queued_c = daemon.json("GET", f"/campaigns/{cids['c']}")
        assert queued_c["state"] == "queued"
        _, ready = daemon.json("GET", "/readyz")
        assert [lane["busy"] for lane in ready["lanes"]] == [True, True]
        assert ready["queue_depth"] == 1
        daemon.kill9()

        # Phase 2: restart clean.  All three campaigns are re-listed;
        # the interrupted two recompute exactly the units the crash
        # swallowed, the queued one runs in full.
        revived = Daemon(tmp_path)
        results = {}
        try:
            for name in ("a", "b", "c"):
                final = revived.wait_state(cids[name], ("done",))
                if name in ("a", "b"):
                    assert final["executed"] == 2
                    assert final["ledger_hits"] == 2
                else:
                    assert final["executed"] == 4
                _, results[name] = revived.request(
                    "GET", f"/campaigns/{cids[name]}/result"
                )
        finally:
            assert revived.sigterm() == 0

        # Phase 3: byte-identical to never-interrupted controls.
        controls = _controls(tmp_path_factory, (SPEC_A, SPEC_B, SPEC_C))
        for name in ("a", "b", "c"):
            assert results[name] == controls[cids[name]]


class TestLaneIsolation:
    def test_hung_lane_never_blocks_the_other(self, tmp_path):
        daemon = Daemon(
            tmp_path, env_extra={"REPRO_FAULTS": HANG_SEED_1}
        )
        try:
            _, doc = daemon.json("POST", "/campaigns", SPEC_A)
            hung = doc["id"]
            daemon.wait_progress(hung, 2)
            # Lane 0 is wedged for an hour.  Campaigns keep flowing
            # through the other lane regardless.
            for seed in (10, 11, 12):
                _, doc = daemon.json(
                    "POST", "/campaigns", dict(SPEC, seed=seed)
                )
                daemon.wait_state(doc["id"], ("done",))
            _, still = daemon.json("GET", f"/campaigns/{hung}")
            assert still["state"] == "running"
        finally:
            daemon.kill9()  # the hung unit cannot drain cooperatively

    def test_cancel_on_one_lane_never_stalls_the_other(self, tmp_path):
        daemon = Daemon(tmp_path)
        try:
            big = dict(SPEC, seed=21, instances=150, protocols=["bgp"])
            other = dict(SPEC, seed=22, instances=150, protocols=["bgp"])
            _, doc_a = daemon.json("POST", "/campaigns", big)
            _, doc_b = daemon.json("POST", "/campaigns", other)
            daemon.wait_progress(doc_a["id"], 2)
            daemon.wait_progress(doc_b["id"], 2)
            status, _ = daemon.json(
                "POST", f"/campaigns/{doc_a['id']}/cancel"
            )
            assert status == 202
            cancelled = daemon.wait_state(
                doc_a["id"], ("cancelled",)
            )
            assert 0 < cancelled["progress"]["resolved_units"] < 150
            # The neighbour lane finishes untouched.
            final_b = daemon.wait_state(doc_b["id"], ("done",))
            assert final_b["progress"]["resolved_units"] == 150
        finally:
            assert daemon.sigterm() == 0


class TestJournalRotation:
    def test_rotation_mid_campaign_then_kill9_recovers_snapshot_tail(
        self, tmp_path
    ):
        # A tight byte bound: the journal rotates as soon as the first
        # campaign's terminal record lands.
        daemon = Daemon(
            tmp_path,
            env_extra={"REPRO_FAULTS": HANG_SEED_2},
            extra_args=["--journal-max-bytes", "500"],
        )
        _, doc = daemon.json("POST", "/campaigns", dict(SPEC, seed=4))
        finished = doc["id"]
        daemon.wait_state(finished, ("done",))
        _, before = daemon.request("GET", f"/campaigns/{finished}/result")
        # Second campaign hangs mid-run: the crash happens with a
        # rotated journal AND an in-flight campaign in its tail.
        _, doc = daemon.json("POST", "/campaigns", SPEC_B)
        inflight = doc["id"]
        daemon.wait_progress(inflight, 2)
        journal_lines = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert any(
            line["body"]["event"] == "snapshot" for line in journal_lines
        )
        daemon.kill9()

        revived = Daemon(tmp_path)
        try:
            # The finished campaign survived rotation byte-for-byte...
            _, after = revived.request(
                "GET", f"/campaigns/{finished}/result"
            )
            assert after == before
            # ...and the tail campaign resumes from the ledger.
            final = revived.wait_state(inflight, ("done",))
            assert final["executed"] == 2
            assert final["ledger_hits"] == 2
        finally:
            assert revived.sigterm() == 0

    def test_journal_cli_stats_and_compact(self, tmp_path):
        daemon = Daemon(tmp_path)
        _, doc = daemon.json("POST", "/campaigns", SPEC)
        daemon.wait_state(doc["id"], ("done",))
        assert daemon.sigterm() == 0
        path = tmp_path / "journal.jsonl"

        def cli(*args):
            return subprocess.run(
                [sys.executable, "-m", "repro.cli", "journal", *args],
                capture_output=True, text=True,
                env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            )

        def parse(stdout):
            return dict(line.split(None, 1) for line in stdout.splitlines())

        stats = cli("stats", str(path))
        assert stats.returncode == 0
        parsed = parse(stats.stdout)
        assert parsed["snapshots"] == "0"
        assert parsed["active_campaigns"] == "0"
        assert parsed["campaigns"] == "1"

        before = path.stat().st_size
        compacted = cli("compact", str(path))
        assert compacted.returncode == 0
        assert f"compacted {before} ->" in compacted.stdout
        assert "1 campaign(s) kept, 0 evicted" in compacted.stdout

        stats = cli("stats", str(path))
        assert parse(stats.stdout)["snapshots"] == "1"
        # The compacted journal still serves the finished result.
        revived = Daemon(tmp_path)
        try:
            status, body = revived.request(
                "GET", f"/campaigns/{doc['id']}/result"
            )
            assert status == 200 and json.loads(body)["id"] == doc["id"]
        finally:
            assert revived.sigterm() == 0


class TestDaemonAuth:
    def test_token_gates_the_daemon_end_to_end(self, tmp_path):
        daemon = Daemon(
            tmp_path, env_extra={"REPRO_SERVICE_TOKEN": "hunter2"}
        )
        try:
            assert daemon.json("GET", "/healthz")[0] == 200
            assert daemon.json("GET", "/readyz")[0] == 200
            assert daemon.json("POST", "/campaigns", SPEC)[0] == 401
            status, doc = daemon.json(
                "POST", "/campaigns", SPEC,
                headers={"Authorization": "Bearer hunter2"},
            )
            assert status == 202
            daemon.wait_state(doc["id"], ("done",))
        finally:
            assert daemon.sigterm() == 0


class TestInProcessOverlap:
    """Overlap observed at the Python layer, no subprocesses."""

    def test_two_lanes_run_campaigns_simultaneously(self, tmp_path):
        from test_service import ServiceClient

        fixture = ServiceClient(tmp_path, max_concurrent=2, workers=2)
        try:
            big = {"instances": 150, "protocols": ["bgp"]}
            _, doc_a, _ = fixture.request(
                "POST", "/campaigns", dict(SPEC, seed=31, **big)
            )
            _, doc_b, _ = fixture.request(
                "POST", "/campaigns", dict(SPEC, seed=32, **big)
            )
            deadline = time.monotonic() + 60
            overlapped = False
            while time.monotonic() < deadline and not overlapped:
                states = []
                for doc in (doc_a, doc_b):
                    _, status_doc, _ = fixture.request(
                        "GET", f"/campaigns/{doc['id']}"
                    )
                    states.append(status_doc["state"])
                overlapped = states == ["running", "running"]
                time.sleep(0.005)
            assert overlapped, "campaigns never ran simultaneously"
            for doc in (doc_a, doc_b):
                final = fixture.wait_terminal(doc["id"])
                assert final["state"] == "done"
        finally:
            fixture.close()
