"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(2.0, lambda: log.append("late"))
        engine.schedule(1.0, lambda: log.append("early"))
        engine.run()
        assert log == ["early", "late"]

    def test_ties_run_in_insertion_order(self):
        engine = Engine()
        log = []
        for name in ("a", "b", "c"):
            engine.schedule(1.0, lambda n=name: log.append(n))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(1.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [1.5]
        assert engine.now == 1.5

    def test_nested_scheduling(self):
        engine = Engine()
        log = []

        def first():
            log.append("first")
            engine.schedule(0.5, lambda: log.append("second"))

        engine.schedule(1.0, first)
        engine.run()
        assert log == ["first", "second"]
        assert engine.now == 1.5

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(3.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        log = []
        handle = engine.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        engine.run()
        assert log == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run()

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        handle = engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert engine.pending() == 1

    def test_mass_cancellation_compacts_queue(self):
        engine = Engine()
        keep = [engine.schedule(float(i), lambda: None) for i in range(10)]
        doomed = [
            engine.schedule(100.0 + i, lambda: None) for i in range(500)
        ]
        for handle in doomed:
            handle.cancel()
        # Lazy deletion must not let tombstones accumulate unboundedly.
        assert len(engine._queue) < 110
        assert engine.pending() == len(keep)
        assert engine.run() == len(keep)

    def test_events_survive_compaction_in_order(self):
        engine = Engine()
        log = []
        for i in range(200):
            engine.schedule(float(i), lambda i=i: log.append(i))
        cancelled = [
            engine.schedule(1000.0, lambda: log.append("bad"))
            for _ in range(400)
        ]
        for handle in cancelled:
            handle.cancel()
        engine.run()
        assert log == list(range(200))

    def test_late_cancel_after_firing_keeps_pending_consistent(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run(until=1.5)
        handle.cancel()  # already fired: must not skew accounting
        assert engine.pending() == 1
        assert engine.run() == 1
        assert engine.pending() == 0


class TestRunLimits:
    def test_until_stops_the_clock(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, lambda: log.append(1))
        engine.schedule(5.0, lambda: log.append(5))
        engine.run(until=2.0)
        assert log == [1]
        assert engine.now == 2.0
        engine.run()
        assert log == [1, 5]

    def test_max_events_raises_when_exceeded(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=10)

    def test_run_returns_executed_count(self):
        engine = Engine()
        for _ in range(3):
            engine.schedule(1.0, lambda: None)
        assert engine.run() == 3
        assert engine.events_processed == 3


class TestDeterminism:
    def test_rng_is_seeded(self):
        a = Engine(seed=42).rng.random()
        b = Engine(seed=42).rng.random()
        assert a == b
