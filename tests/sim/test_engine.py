"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(2.0, lambda: log.append("late"))
        engine.schedule(1.0, lambda: log.append("early"))
        engine.run()
        assert log == ["early", "late"]

    def test_ties_run_in_insertion_order(self):
        engine = Engine()
        log = []
        for name in ("a", "b", "c"):
            engine.schedule(1.0, lambda n=name: log.append(n))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(1.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [1.5]
        assert engine.now == 1.5

    def test_nested_scheduling(self):
        engine = Engine()
        log = []

        def first():
            log.append("first")
            engine.schedule(0.5, lambda: log.append("second"))

        engine.schedule(1.0, first)
        engine.run()
        assert log == ["first", "second"]
        assert engine.now == 1.5

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(3.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        log = []
        handle = engine.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        engine.run()
        assert log == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run()

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        handle = engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert engine.pending() == 1

    def test_mass_cancellation_of_far_timers_is_immediate(self):
        engine = Engine()
        keep = [engine.schedule(float(i), lambda: None) for i in range(10)]
        doomed = [
            engine.schedule(100.0 + i, lambda: None) for i in range(500)
        ]
        for handle in doomed:
            handle.cancel()
        # Far (wheel-resident) timers are removed on cancel: no
        # tombstones anywhere, nothing left to compact or skip.
        assert engine._far_count + len(engine._near) == len(keep)
        assert engine.pending() == len(keep)
        assert engine.run() == len(keep)

    def test_mass_cancellation_in_near_heap_compacts(self):
        engine = Engine()
        # Everything below BUCKET_WIDTH lands in the near heap, where
        # cancellation is lazy and must trigger compaction.
        keep = [
            engine.schedule(0.001 * i, lambda: None) for i in range(10)
        ]
        doomed = [
            engine.schedule(0.5 + 0.0001 * i, lambda: None)
            for i in range(500)
        ]
        for handle in doomed:
            handle.cancel()
        assert len(engine._near) < 110
        assert engine.pending() == len(keep)
        assert engine.run() == len(keep)

    def test_events_survive_compaction_in_order(self):
        engine = Engine()
        log = []
        for i in range(200):
            engine.schedule(float(i), lambda i=i: log.append(i))
        cancelled = [
            engine.schedule(1000.0, lambda: log.append("bad"))
            for _ in range(400)
        ]
        for handle in cancelled:
            handle.cancel()
        engine.run()
        assert log == list(range(200))

    def test_late_cancel_after_firing_keeps_pending_consistent(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run(until=1.5)
        handle.cancel()  # already fired: must not skew accounting
        assert engine.pending() == 1
        assert engine.run() == 1
        assert engine.pending() == 0


class TestTimerWheel:
    """Edge cases of the near-heap / far-wheel split."""

    def test_far_events_cross_the_horizon_in_order(self):
        engine = Engine()
        log = []
        # Interleave near (< BUCKET_WIDTH) and far events out of order.
        engine.schedule(3.7, lambda: log.append(3.7))
        engine.schedule(0.2, lambda: log.append(0.2))
        engine.schedule(1.1, lambda: log.append(1.1))
        engine.schedule(0.9, lambda: log.append(0.9))
        engine.schedule(3.1, lambda: log.append(3.1))
        engine.run()
        assert log == sorted(log)

    def test_ties_across_promotion_run_in_insertion_order(self):
        engine = Engine()
        log = []
        for name in ("a", "b", "c"):
            engine.schedule(5.0, lambda n=name: log.append(n))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_cancel_then_rearm_on_same_tick(self):
        """An MRAI-style cancel + immediate re-arm at one instant."""
        engine = Engine()
        log = []
        handle = engine.schedule(30.0, lambda: log.append("stale"))

        def rearm():
            handle.cancel()
            engine.schedule(30.0, lambda: log.append("fresh"))

        engine.schedule(0.5, rearm)
        engine.run()
        assert log == ["fresh"]
        assert engine.now == 30.5
        assert engine.pending() == 0

    def test_cancel_rearm_cancel_leaves_no_residue(self):
        engine = Engine()
        fired = []
        for _ in range(100):
            handle = engine.schedule(25.0, lambda: fired.append(1))
            handle.cancel()
        keeper = engine.schedule(25.0, lambda: fired.append("keep"))
        assert engine.pending() == 1
        engine.run()
        assert fired == ["keep"]
        del keeper

    def test_cancel_after_promotion_is_honored(self):
        """A far timer promoted into the near heap can still cancel."""
        engine = Engine()
        log = []
        handle = engine.schedule(5.5, lambda: log.append("doomed"))
        # This event runs after promotion of the 5.x bucket but before
        # the doomed timer fires.
        engine.schedule(5.2, lambda: handle.cancel())
        engine.run()
        assert log == []
        assert engine.pending() == 0

    def test_post_at_orders_with_scheduled_events(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, lambda: log.append("handle"))
        engine.post_at(1.0, lambda: log.append("posted"))
        engine.post_at(0.5, lambda: log.append("early"))
        engine.run()
        assert log == ["early", "handle", "posted"]

    def test_post_at_rejects_past_times(self):
        engine = Engine()
        engine.schedule(2.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.post_at(1.0, lambda: None)

    def test_scheduling_into_current_bucket_after_promotion(self):
        """Events scheduled mid-bucket still interleave correctly."""
        engine = Engine()
        log = []

        def spawn():
            # now == 7.2: schedule inside the already-promoted window.
            engine.schedule(0.05, lambda: log.append("inner"))
            log.append("outer")

        engine.schedule(7.2, spawn)
        engine.schedule(7.4, lambda: log.append("later"))
        engine.run()
        assert log == ["outer", "inner", "later"]

    def test_run_until_does_not_demote_far_timers(self):
        """Stopping at `until` must not promote buckets beyond it."""
        engine = Engine()
        handle = engine.schedule(30.0, lambda: None)
        engine.run(until=5.0)
        assert engine.now == 5.0
        # The timer stayed wheel-resident: cancelling it is an O(1)
        # bucket delete that leaves no tombstone behind.
        handle.cancel()
        assert engine._far_count == 0
        assert engine._cancelled_in_near == 0
        assert engine.pending() == 0

    def test_run_until_parks_far_events(self):
        engine = Engine()
        log = []
        engine.schedule(0.5, lambda: log.append("near"))
        engine.schedule(40.0, lambda: log.append("far"))
        engine.run(until=10.0)
        assert log == ["near"]
        assert engine.now == 10.0
        assert engine.pending() == 1
        engine.run()
        assert log == ["near", "far"]


class TestRunLimits:
    def test_until_stops_the_clock(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, lambda: log.append(1))
        engine.schedule(5.0, lambda: log.append(5))
        engine.run(until=2.0)
        assert log == [1]
        assert engine.now == 2.0
        engine.run()
        assert log == [1, 5]

    def test_max_events_raises_when_exceeded(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=10)

    def test_run_returns_executed_count(self):
        engine = Engine()
        for _ in range(3):
            engine.schedule(1.0, lambda: None)
        assert engine.run() == 3
        assert engine.events_processed == 3


class TestDeterminism:
    def test_rng_is_seeded(self):
        a = Engine(seed=42).rng.random()
        b = Engine(seed=42).rng.random()
        assert a == b


class TestRunBackwardsGuard:
    def test_until_in_the_past_is_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        assert engine.now == 5.0
        with pytest.raises(SimulationError):
            engine.run(until=1.0)
        assert engine.now == 5.0  # clock untouched

    def test_until_equal_to_now_is_a_no_op(self):
        engine = Engine()
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.run(until=engine.now) == 0
