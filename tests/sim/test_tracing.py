"""Unit tests for forwarding-change tracing and replay."""

from repro.sim.tracing import ForwardingTrace


class TestRecording:
    def test_record_and_distinct_times(self):
        trace = ForwardingTrace()
        trace.record(1.0, 10, None, (20,))
        trace.record(1.0, 11, None, (20,))
        trace.record(2.0, 10, None, None)
        assert trace.distinct_times() == [1.0, 2.0]

    def test_clear(self):
        trace = ForwardingTrace()
        trace.record(1.0, 10, None, (20,))
        trace.clear()
        assert trace.changes == []


class TestReplay:
    def test_changes_grouped_by_time(self):
        trace = ForwardingTrace()
        trace.record(1.0, 10, None, "a")
        trace.record(1.0, 11, None, "b")
        trace.record(2.0, 10, None, "c")
        snapshots = []
        for time, state in trace.replay({(10, None): None, (11, None): None}):
            snapshots.append((time, state[(10, None)], state[(11, None)]))
        assert snapshots == [(1.0, "a", "b"), (2.0, "c", "b")]

    def test_initial_state_not_mutated_by_caller_copy(self):
        trace = ForwardingTrace()
        trace.record(1.0, 10, None, "new")
        initial = {(10, None): "old"}
        list(trace.replay(initial))
        assert initial == {(10, None): "old"}

    def test_keys_can_be_rich(self):
        trace = ForwardingTrace()
        trace.record(1.0, 10, ("unstable", "red"), True)
        _, state = next(iter(trace.replay({})))
        assert state[(10, ("unstable", "red"))] is True

    def test_empty_trace_yields_nothing(self):
        trace = ForwardingTrace()
        assert list(trace.replay({})) == []
