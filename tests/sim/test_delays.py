"""Unit tests for delay models."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.delays import FixedDelay, UniformDelay


class TestUniformDelay:
    def test_samples_stay_in_bounds(self):
        delay = UniformDelay(0.010, 0.020)
        rng = random.Random(1)
        for _ in range(200):
            sample = delay.sample(rng)
            assert 0.010 <= sample <= 0.020

    def test_paper_default_bounds(self):
        delay = UniformDelay()
        assert delay.low == 0.010
        assert delay.high == 0.020

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(0.02, 0.01)
        with pytest.raises(ConfigurationError):
            UniformDelay(-0.01, 0.01)


class TestFixedDelay:
    def test_constant(self):
        delay = FixedDelay(0.5)
        assert delay.sample(random.Random(0)) == 0.5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedDelay(-1.0)
