"""Unit tests for the FIFO transport with link failures."""

import pytest

from repro.errors import SimulationError
from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.engine import Engine
from repro.sim.transport import Transport


@pytest.fixture
def setup():
    engine = Engine(seed=0)
    transport = Transport(engine, UniformDelay(0.01, 0.02))
    return engine, transport


class TestDelivery:
    def test_message_arrives(self, setup):
        engine, transport = setup
        inbox = []
        transport.register_receiver(2, lambda src, msg: inbox.append((src, msg)))
        transport.send(1, 2, "hello")
        engine.run()
        assert inbox == [(1, "hello")]

    def test_fifo_order_preserved(self, setup):
        engine, transport = setup
        inbox = []
        transport.register_receiver(2, lambda src, msg: inbox.append(msg))
        for i in range(50):
            transport.send(1, 2, i)
        engine.run()
        assert inbox == list(range(50))

    def test_independent_channels_per_direction(self, setup):
        engine, transport = setup
        inbox = []
        transport.register_receiver(1, lambda src, msg: inbox.append((1, msg)))
        transport.register_receiver(2, lambda src, msg: inbox.append((2, msg)))
        transport.send(1, 2, "a")
        transport.send(2, 1, "b")
        engine.run()
        assert len(inbox) == 2

    def test_tagged_sessions_are_separate(self, setup):
        engine, transport = setup
        red, blue = [], []
        transport.register_receiver(2, lambda src, msg: red.append(msg), tag="red")
        transport.register_receiver(2, lambda src, msg: blue.append(msg), tag="blue")
        transport.send(1, 2, "r", tag="red")
        transport.send(1, 2, "b", tag="blue")
        engine.run()
        assert red == ["r"]
        assert blue == ["b"]

    def test_missing_receiver_raises(self, setup):
        engine, transport = setup
        transport.send(1, 2, "x")
        with pytest.raises(SimulationError):
            engine.run()

    def test_duplicate_receiver_rejected(self, setup):
        _, transport = setup
        transport.register_receiver(2, lambda s, m: None)
        with pytest.raises(SimulationError):
            transport.register_receiver(2, lambda s, m: None)

    def test_counters(self, setup):
        engine, transport = setup
        transport.register_receiver(2, lambda s, m: None)
        transport.send(1, 2, "x")
        engine.run()
        assert transport.messages_sent == 1
        assert transport.messages_delivered == 1
        assert transport.messages_lost == 0


class TestFailures:
    def test_send_on_failed_link_is_lost(self, setup):
        engine, transport = setup
        inbox = []
        transport.register_receiver(2, lambda s, m: inbox.append(m))
        transport.fail_link(1, 2)
        transport.send(1, 2, "x")
        engine.run()
        assert inbox == []
        assert transport.messages_lost == 1

    def test_in_flight_message_lost_on_failure(self):
        engine = Engine(seed=0)
        transport = Transport(engine, FixedDelay(1.0))
        inbox = []
        transport.register_receiver(2, lambda s, m: inbox.append(m))
        transport.send(1, 2, "x")
        engine.schedule(0.5, lambda: transport.fail_link(1, 2))
        engine.run()
        assert inbox == []

    def test_both_endpoints_notified(self, setup):
        _, transport = setup
        down = []
        transport.register_session_down_listener(1, lambda peer: down.append((1, peer)))
        transport.register_session_down_listener(2, lambda peer: down.append((2, peer)))
        transport.fail_link(1, 2)
        assert set(down) == {(1, 2), (2, 1)}

    def test_double_failure_notifies_once(self, setup):
        _, transport = setup
        down = []
        transport.register_session_down_listener(1, lambda peer: down.append(peer))
        transport.fail_link(1, 2)
        transport.fail_link(2, 1)
        assert down == [2]

    def test_restore_link(self, setup):
        engine, transport = setup
        inbox = []
        transport.register_receiver(2, lambda s, m: inbox.append(m))
        transport.fail_link(1, 2)
        transport.restore_link(1, 2)
        transport.send(1, 2, "x")
        engine.run()
        assert inbox == ["x"]

    def test_fail_as_notifies_neighbors(self, setup):
        _, transport = setup
        down = []
        transport.register_session_down_listener(2, lambda peer: down.append(peer))
        transport.register_session_down_listener(3, lambda peer: down.append(peer))
        transport.fail_as(1, neighbors=[2, 3])
        assert down == [1, 1]
        assert not transport.as_is_up(1)

    def test_failed_as_blocks_links(self, setup):
        _, transport = setup
        transport.fail_as(1, neighbors=[])
        assert not transport.link_is_up(1, 2)


class TestInFlightLossIsDecidedAtTheFailure:
    """Regression: a failure kills what is in flight even if the failed
    element recovers before the scheduled delivery time."""

    def test_link_flap_within_one_delay_loses_the_message(self, setup):
        engine, transport = setup
        inbox = []
        transport.register_receiver(2, lambda src, msg: inbox.append(msg))
        transport.send(1, 2, "doomed")
        transport.fail_link(1, 2)
        transport.restore_link(1, 2)  # back up before delivery fires
        engine.run()
        assert inbox == []
        assert transport.messages_lost == 1

    def test_as_power_cycle_within_one_delay_loses_both_directions(self, setup):
        engine, transport = setup
        inbox = []
        transport.register_receiver(1, lambda src, msg: inbox.append((1, msg)))
        transport.register_receiver(2, lambda src, msg: inbox.append((2, msg)))
        transport.send(1, 2, "to the dying AS")
        transport.send(2, 1, "from the dying AS")
        transport.fail_as(2, neighbors=[1])
        transport.restore_as(2)
        engine.run()
        assert inbox == []
        assert transport.messages_lost == 2

    def test_messages_sent_after_recovery_still_deliver(self, setup):
        engine, transport = setup
        inbox = []
        transport.register_receiver(2, lambda src, msg: inbox.append(msg))
        transport.send(1, 2, "doomed")
        transport.fail_link(1, 2)
        transport.restore_link(1, 2)
        transport.send(1, 2, "fresh")
        engine.run()
        assert inbox == ["fresh"]
        assert transport.messages_lost == 1

    def test_unrelated_channels_are_untouched(self, setup):
        engine, transport = setup
        inbox = []
        transport.register_receiver(3, lambda src, msg: inbox.append(msg))
        transport.send(1, 3, "bystander")
        transport.fail_link(1, 2)
        engine.run()
        assert inbox == ["bystander"]
        assert transport.messages_lost == 0
