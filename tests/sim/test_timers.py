"""Unit tests for MRAI pacing."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.timers import MRAIConfig, MRAIPacer


@pytest.fixture
def pacer_setup():
    engine = Engine(seed=1)
    sent = []
    config = MRAIConfig(base=10.0, jitter_low=1.0, jitter_high=1.0)
    pacer = MRAIPacer(engine, config, flush=lambda peer: sent.append((engine.now, peer)))
    return engine, pacer, sent


class TestMRAIConfig:
    def test_paper_defaults(self):
        config = MRAIConfig()
        assert config.base == 30.0
        assert config.jitter_low == 0.75
        assert config.jitter_high == 1.0
        assert not config.applies_to_withdrawals

    def test_invalid_base(self):
        with pytest.raises(ConfigurationError):
            MRAIConfig(base=-1.0)

    def test_invalid_jitter(self):
        with pytest.raises(ConfigurationError):
            MRAIConfig(jitter_low=0.9, jitter_high=0.5)


class TestPacing:
    def test_first_send_is_immediate(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        pacer.request_send(7)
        assert sent == [(0.0, 7)]

    def test_second_send_waits_for_interval(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        pacer.request_send(7)
        pacer.request_send(7)
        assert len(sent) == 1
        engine.run()
        assert sent == [(0.0, 7), (10.0, 7)]

    def test_requests_coalesce(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        pacer.request_send(7)
        for _ in range(5):
            pacer.request_send(7)
        engine.run()
        assert len(sent) == 2  # first immediate + one coalesced flush

    def test_withdrawal_bypasses_mrai(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        pacer.request_send(7)
        pacer.request_send(7, is_withdrawal=True)
        assert len(sent) == 2  # withdrawal went out immediately

    def test_withdrawal_does_not_restart_timer(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        pacer.request_send(7)                      # t=0, next allowed t=10
        pacer.request_send(7, is_withdrawal=True)  # immediate
        pacer.request_send(7)                      # waits until t=10
        engine.run()
        assert sent[-1] == (10.0, 7)

    def test_peers_are_independent(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        pacer.request_send(1)
        pacer.request_send(2)
        assert len(sent) == 2

    def test_interval_is_fixed_per_peer(self):
        engine = Engine(seed=3)
        config = MRAIConfig(base=30.0)
        pacer = MRAIPacer(engine, config, flush=lambda peer: None)
        first = pacer.interval_for(9)
        assert pacer.interval_for(9) == first
        assert 30.0 * 0.75 <= first <= 30.0

    def test_cancel_drops_armed_timer(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        pacer.request_send(7)
        pacer.request_send(7)  # arms timer
        pacer.cancel(7)
        engine.run()
        assert len(sent) == 1

    def test_after_interval_send_is_immediate_again(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        pacer.request_send(7)
        engine.run()
        engine.schedule(20.0, lambda: pacer.request_send(7))
        engine.run()
        assert sent[-1] == (20.0, 7)


class TestTrySendNow:
    def test_claims_slot_and_restarts_interval(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        assert pacer.try_send_now(7) is True
        # The slot was consumed: a second attempt must arm the timer.
        assert pacer.try_send_now(7) is False
        assert 7 in pacer._armed
        engine.run()
        assert sent == [(10.0, 7)]  # only the armed flush fired

    def test_withdrawal_bypass_does_not_restart(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        assert pacer.try_send_now(7) is True
        assert pacer.try_send_now(7, is_withdrawal=True) is True
        # Bypass sends never restart the interval.
        assert pacer._next_allowed[7] == 10.0

    def test_repeated_attempts_coalesce_on_one_timer(self, pacer_setup):
        engine, pacer, sent = pacer_setup
        pacer.try_send_now(7)
        for _ in range(5):
            assert pacer.try_send_now(7) is False
        assert engine.pending() == 1  # one armed timer, no duplicates
        engine.run()
        assert sent == [(10.0, 7)]


class TestZeroMRAI:
    """base=0 disables pacing: every send is immediate, no timers."""

    def setup_method(self):
        self.engine = Engine(seed=1)
        self.sent = []
        config = MRAIConfig(base=0.0)
        assert config.disabled
        self.pacer = MRAIPacer(
            self.engine, config, flush=lambda peer: self.sent.append(peer)
        )

    def test_every_request_fires_immediately(self):
        for _ in range(5):
            self.pacer.request_send(3)
        assert self.sent == [3, 3, 3, 3, 3]
        assert self.engine.pending() == 0  # nothing ever armed

    def test_try_send_now_always_true(self):
        for _ in range(3):
            assert self.pacer.try_send_now(4) is True
        assert not self.pacer._armed


class TestWithdrawalRateLimiting:
    def test_wrate_mode_paces_withdrawals(self):
        engine = Engine(seed=1)
        sent = []
        config = MRAIConfig(base=10.0, jitter_low=1.0, jitter_high=1.0,
                            applies_to_withdrawals=True)
        pacer = MRAIPacer(engine, config, flush=lambda p: sent.append(engine.now))
        pacer.request_send(7)
        pacer.request_send(7, is_withdrawal=True)
        assert len(sent) == 1
        engine.run()
        assert sent == [0.0, 10.0]
