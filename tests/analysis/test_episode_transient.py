"""Equivalence and semantics tests for the episode transient analyzer.

The incremental :func:`analyze_episode_transient_problems` must agree
with its brute-force reference twin on real multi-phase runs of every
plane, a single-segment episode must agree with the single-event
analyzer, and the boundary-scan rule must catch outcome flips that
happen *without any trace change* (a link restore heals walks whose
control-plane state never moved).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.transient import (
    EpisodeSegment,
    analyze_episode_transient_problems,
    analyze_transient_problems,
    _reference_analyze_episode_transient_problems,
)
from repro.experiments import runner as runner_mod
from repro.experiments.runner import run_episode
from repro.experiments.scenarios import (
    correlated_outage_episode,
    link_flap_episode,
    staggered_maintenance_episode,
)
from repro.forwarding.bgp_plane import BGPDataPlane
from repro.sim.tracing import ForwardingChange, ForwardingTrace
from repro.topology.generators import example_paper_topology
from repro.types import Outcome, normalize_link

PLANES = ("bgp", "rbgp", "rbgp-norci", "stamp")


@pytest.fixture
def captured_segments(monkeypatch):
    """Run an episode while capturing the analyzer's segment inputs."""
    captured = {}
    original = runner_mod.analyze_episode_transient_problems

    def shim(segments, plane, ases, **kwargs):
        captured["segments"] = list(segments)
        captured["plane"] = plane
        captured["ases"] = list(ases)
        return original(segments, plane, ases, **kwargs)

    monkeypatch.setattr(
        runner_mod, "analyze_episode_transient_problems", shim
    )
    return captured


def _report_fields(report):
    return (
        report.eligible,
        report.affected,
        report.looped,
        report.blackholed,
        report.permanently_unreachable,
        report.timeline,
        report.problem_timeline,
    )


class TestIncrementalMatchesReference:
    @pytest.mark.parametrize("protocol", PLANES)
    @pytest.mark.parametrize(
        "builder, kwargs",
        [
            (link_flap_episode, {"period": 35.0, "flaps": 2}),
            (staggered_maintenance_episode, {"window": 50.0, "gap": 20.0}),
            (correlated_outage_episode, {"delay": 12.0}),
        ],
    )
    def test_real_runs(self, captured_segments, protocol, builder, kwargs):
        graph = example_paper_topology()
        episode = builder(graph, random.Random("eq"), **kwargs)
        run_episode(graph, episode, protocol, seed=11)
        segments = captured_segments["segments"]
        plane = captured_segments["plane"]
        ases = captured_segments["ases"]
        incremental = analyze_episode_transient_problems(segments, plane, ases)
        reference = _reference_analyze_episode_transient_problems(
            segments, plane, ases
        )
        assert _report_fields(incremental.overall) == _report_fields(
            reference.overall
        )
        assert len(incremental.phases) == len(reference.phases)


class TestSingleSegmentEquivalence:
    @pytest.mark.parametrize("protocol", PLANES)
    def test_overall_equals_single_event_analyzer(
        self, captured_segments, protocol
    ):
        graph = example_paper_topology()
        episode = link_flap_episode(
            graph, random.Random("one"), period=30.0, flaps=1
        )
        # One-phase episode: keep only the first step (a bare failure).
        one_phase = type(episode)(
            destination=episode.destination, steps=episode.steps[:1]
        )
        run_episode(graph, one_phase, protocol, seed=5)
        (segment,) = captured_segments["segments"]
        plane = captured_segments["plane"]
        ases = captured_segments["ases"]
        episode_result = analyze_episode_transient_problems(
            [segment], plane, ases
        )
        single = analyze_transient_problems(
            segment.trace,
            segment.initial_state,
            plane,
            ases,
            failed_links=segment.failed_links,
            failed_ases=segment.failed_ases,
        )
        assert _report_fields(episode_result.overall) == _report_fields(single)
        assert _report_fields(episode_result.phases[0]) == _report_fields(single)


class TestBoundaryScan:
    def test_restore_heals_without_any_trace_change(self):
        """1 -> 2 -> 3: the 1-2 link fails, then is silently restored.

        Phase 1's trace is empty (control plane never moved), yet the
        restore flips AS 1 from BLACKHOLE back to DELIVERED — only the
        boundary scan at the injection instant can observe that.
        """
        plane = BGPDataPlane(3)
        state = {(1, None): (2, 3), (2, None): (3,), (3, None): ()}
        failed = frozenset({normalize_link(1, 2)})
        seg_fail = EpisodeSegment(
            trace=ForwardingTrace(
                changes=[ForwardingChange(0.0, 1, None, (2, 3))]
            ),
            initial_state=dict(state),
            failed_links=failed,
            failed_ases=frozenset(),
            start_time=0.0,
        )
        seg_restore = EpisodeSegment(
            trace=ForwardingTrace(),
            initial_state=dict(state),
            failed_links=frozenset(),
            failed_ases=frozenset(),
            start_time=5.0,
        )
        result = analyze_episode_transient_problems(
            [seg_fail, seg_restore], plane, [1, 2, 3]
        )
        overall = result.overall
        # AS 1 blackholed from 0.0 to the restore at 5.0, then healed:
        # transient, not permanent.
        assert overall.affected == {1}
        assert overall.blackholed == {1}
        assert overall.permanently_unreachable == set()
        assert overall.problem_timeline == [(0.0, 1), (5.0, 0)]
        # The reference twin agrees.
        reference = _reference_analyze_episode_transient_problems(
            [seg_fail, seg_restore], plane, [1, 2, 3]
        )
        assert _report_fields(overall) == _report_fields(reference.overall)
        # Per-phase attribution: within phase 0 alone, AS 1 never
        # recovers (permanent from that phase's point of view); the
        # restore phase sees no problems at all.
        assert result.phases[0].permanently_unreachable == {1}
        assert result.phases[0].affected == set()
        assert result.phases[1].affected == set()

    def test_refail_counts_a_second_interval(self):
        """Fail → silent restore → silent re-fail: two problem windows."""
        plane = BGPDataPlane(3)
        state = {(1, None): (2, 3), (2, None): (3,), (3, None): ()}
        failed = frozenset({normalize_link(1, 2)})

        def segment(trace, links, start):
            return EpisodeSegment(
                trace=trace,
                initial_state=dict(state),
                failed_links=links,
                failed_ases=frozenset(),
                start_time=start,
            )

        segments = [
            segment(
                ForwardingTrace(changes=[ForwardingChange(0.0, 1, None, (2, 3))]),
                failed,
                0.0,
            ),
            segment(ForwardingTrace(), frozenset(), 5.0),
            segment(ForwardingTrace(), failed, 10.0),
        ]
        result = analyze_episode_transient_problems(segments, plane, [1, 2, 3])
        overall = result.overall
        # Ends failed: AS 1 is ultimately partitioned, so its problem
        # intervals resolve as permanent, not transient.
        assert overall.permanently_unreachable == {1}
        assert overall.affected == set()
        assert overall.problem_timeline == [(0.0, 1), (5.0, 0), (10.0, 1)]
        reference = _reference_analyze_episode_transient_problems(
            segments, plane, [1, 2, 3]
        )
        assert _report_fields(overall) == _report_fields(reference.overall)

    def test_empty_segments_yield_empty_report(self):
        plane = BGPDataPlane(3)
        result = analyze_episode_transient_problems([], plane, [1, 2, 3])
        assert result.overall.eligible == set()
        assert result.phases == []

    def test_no_trace_phases_leave_snapshots_untouched(self):
        """No-trace phases: the analyzer aliases, never mutates.

        The analyzer holds ``segment.initial_state`` itself as the
        running final state when a phase's trace is empty (the old
        defensive ``dict(...)`` copies are gone), so a mutation would
        corrupt the caller's segments.  Also pins that a final
        empty-trace phase still resolves permanence off the boundary
        snapshot.
        """
        plane = BGPDataPlane(3)
        state = {(1, None): (2, 3), (2, None): (3,), (3, None): ()}
        failed = frozenset({normalize_link(1, 2)})
        segments = [
            EpisodeSegment(
                trace=ForwardingTrace(
                    changes=[ForwardingChange(0.0, 1, None, (2, 3))]
                ),
                initial_state=dict(state),
                failed_links=failed,
                failed_ases=frozenset(),
                start_time=0.0,
            ),
            # Silent restore: no trace change in the whole phase.
            EpisodeSegment(
                trace=ForwardingTrace(),
                initial_state=dict(state),
                failed_links=frozenset(),
                failed_ases=frozenset(),
                start_time=5.0,
            ),
            # Silent re-fail as the *final* phase: finalize classifies
            # the aliased boundary snapshot.
            EpisodeSegment(
                trace=ForwardingTrace(),
                initial_state=dict(state),
                failed_links=failed,
                failed_ases=frozenset(),
                start_time=10.0,
            ),
        ]
        snapshots = [dict(segment.initial_state) for segment in segments]
        result = analyze_episode_transient_problems(segments, plane, [1, 2, 3])
        for segment, snapshot in zip(segments, snapshots):
            assert segment.initial_state == snapshot
        assert result.overall.permanently_unreachable == {1}
        reference = _reference_analyze_episode_transient_problems(
            segments, plane, [1, 2, 3]
        )
        assert _report_fields(result.overall) == _report_fields(
            reference.overall
        )
        for got, want in zip(result.phases, reference.phases):
            assert _report_fields(got) == _report_fields(want)
