"""Equivalence of the optimized analysis paths with their references.

The memoized/anchor-shared Φ and the incremental transient analyzer
must be *observationally identical* to the brute-force implementations
they replaced (kept as ``_reference_*``).  These tests pin them to each
other on small random Internet-like topologies and real protocol runs.
"""

import random

import pytest

from repro.analysis.phi import (
    _reference_phi_distribution,
    _reference_phi_for_destination,
    phi_distribution,
    phi_for_destination,
)
from repro.analysis.transient import (
    _reference_analyze_transient_problems,
    analyze_transient_problems,
)
from repro.experiments.runner import PROTOCOLS, build_network
from repro.experiments.scenarios import single_provider_link_failure
from repro.topology.generators import (
    InternetTopologyConfig,
    generate_internet_topology,
)
from repro.types import normalize_link


def _random_topology(seed: int):
    config = InternetTopologyConfig(
        seed=seed, n_tier1=3, n_tier2=8, n_tier3=16, n_stub=30
    )
    graph, _ = generate_internet_topology(config)
    return graph


class TestPhiEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_distribution_matches_reference(self, seed):
        graph = _random_topology(seed)
        assert phi_distribution(graph) == _reference_phi_distribution(graph)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_single_destination_matches_reference(self, seed):
        graph = _random_topology(seed)
        for dest in graph.ases:
            assert phi_for_destination(graph, dest) == _reference_phi_for_destination(
                graph, dest
            )

    def test_path_cap_matches_reference(self):
        graph = _random_topology(9)
        for dest in graph.ases[::7]:
            assert phi_for_destination(
                graph, dest, max_paths=3
            ) == _reference_phi_for_destination(graph, dest, max_paths=3)


def _reports_equal(a, b):
    assert a.eligible == b.eligible
    assert a.affected == b.affected
    assert a.permanently_unreachable == b.permanently_unreachable
    assert a.looped == b.looped
    assert a.blackholed == b.blackholed
    assert a.timeline == b.timeline
    assert a.problem_timeline == b.problem_timeline


class TestTransientEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_single_link_failure_matches_reference(self, protocol, seed):
        graph = _random_topology(seed + 20)
        scenario = single_provider_link_failure(graph, random.Random(seed))
        network, plane = build_network(
            protocol, graph, scenario.destination, seed=seed
        )
        network.start()
        initial_state = network.forwarding_state()
        for a, b in scenario.failed_links:
            network.fail_link(a, b)
        network.run_to_convergence()
        failed_links = frozenset(
            normalize_link(a, b) for a, b in scenario.failed_links
        )
        kwargs = dict(failed_links=failed_links)
        fast = analyze_transient_problems(
            network.trace, initial_state, plane, graph.ases, **kwargs
        )
        slow = _reference_analyze_transient_problems(
            network.trace, initial_state, plane, graph.ases, **kwargs
        )
        _reports_equal(fast, slow)

    def test_detection_instant_and_min_duration_match(self):
        graph = _random_topology(31)
        scenario = single_provider_link_failure(graph, random.Random(8))
        network, plane = build_network("bgp", graph, scenario.destination, seed=8)
        network.start()
        initial_state = network.forwarding_state()
        for a, b in scenario.failed_links:
            network.fail_link(a, b)
        network.run_to_convergence()
        failed_links = frozenset(
            normalize_link(a, b) for a, b in scenario.failed_links
        )
        for kwargs in (
            dict(failed_links=failed_links, include_detection_instant=True),
            dict(failed_links=failed_links, min_duration=5.0),
        ):
            fast = analyze_transient_problems(
                network.trace, initial_state, plane, graph.ases, **kwargs
            )
            slow = _reference_analyze_transient_problems(
                network.trace, initial_state, plane, graph.ases, **kwargs
            )
            _reports_equal(fast, slow)

    def test_empty_trace_matches_reference(self):
        graph = _random_topology(40)
        network, plane = build_network("bgp", graph, graph.ases[0], seed=1)
        network.start()
        initial_state = network.forwarding_state()
        fast = analyze_transient_problems(
            network.trace, initial_state, plane, graph.ases
        )
        slow = _reference_analyze_transient_problems(
            network.trace, initial_state, plane, graph.ases
        )
        _reports_equal(fast, slow)


class TestBatchClassifyEquivalence:
    """classify_batch must agree with classify for every plane."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_full_scan_agrees(self, protocol, seed):
        graph = _random_topology(seed)
        scenario = single_provider_link_failure(graph, random.Random(seed))
        network, plane = build_network(
            protocol, graph, scenario.destination, seed=seed
        )
        network.start()
        state = network.forwarding_state()
        failed_links = frozenset(
            normalize_link(a, b) for a, b in scenario.failed_links
        )
        for links in (frozenset(), failed_links):
            scalar = plane.classify(state, graph.ases, failed_links=links)
            batch = plane.classify_batch(state, graph.ases, failed_links=links)
            for asn in graph.ases:
                assert batch.get(asn) == scalar.get(asn), (protocol, asn)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_dependency_reporting_agrees_with_outcomes(self, protocol):
        """classify_many_recording outcomes match classify, and every
        reported dependency set contains the keys whose change would
        have to re-trigger the source (sanity via re-walk)."""
        graph = _random_topology(2)
        scenario = single_provider_link_failure(graph, random.Random(2))
        network, plane = build_network(protocol, graph, scenario.destination, seed=2)
        network.start()
        state = network.forwarding_state()
        scalar = plane.classify(state, graph.ases)
        recorded = plane.classify_many_recording(state, graph.ases)
        for asn in graph.ases:
            outcome, deps = recorded[asn]
            assert outcome == scalar.get(asn, outcome)
            assert isinstance(deps, set)


class TestUphillViewCacheEquivalence:
    def test_cache_reuses_views_and_invalidates_on_mutation(self):
        import repro.analysis.phi as phi_mod

        graph = _random_topology(4)
        built = []
        original = phi_mod.UphillView

        class CountingView(original):
            def __init__(self, graph, anchor):
                built.append(anchor)
                super().__init__(graph, anchor)

        phi_mod.UphillView = CountingView
        try:
            first = phi_distribution(graph)
            builds_cold = len(built)
            assert builds_cold > 0
            again = phi_distribution(graph)
            assert len(built) == builds_cold  # warm: no rebuilds
            assert [r.phi for r in again] == [r.phi for r in first]

            a, b = graph.c2p_links()[0]
            graph.remove_link(a, b)
            mutated = phi_distribution(graph)
            assert len(built) > builds_cold  # version bump: rebuilt
            assert mutated == _reference_phi_distribution(graph)
        finally:
            phi_mod.UphillView = original

    def test_intelligent_selection_matches_cold_path(self):
        from repro.analysis.phi import (
            conditional_phi_by_provider,
            phi_with_intelligent_selection,
        )

        graph = _random_topology(5)
        # Warm the cache, then verify per-destination results agree
        # with what a fresh graph (cold cache) computes.
        phi_distribution(graph)
        warm = [phi_with_intelligent_selection(graph, d) for d in graph.ases]
        cold_graph = _random_topology(5)
        cold = [
            phi_with_intelligent_selection(cold_graph, d)
            for d in cold_graph.ases
        ]
        assert [(r.destination, r.phi) for r in warm] == [
            (r.destination, r.phi) for r in cold
        ]
        # Mutating a caller's conditional stats must not poison the cache.
        origin = next(a for a in graph.ases if graph.is_multihomed(a))
        stats = conditional_phi_by_provider(graph, origin)
        if stats:
            stats[min(stats)] = (0, 1)
            assert conditional_phi_by_provider(graph, origin) != stats or len(stats) == 1
