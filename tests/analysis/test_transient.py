"""Tests for transient-problem counting over synthetic traces."""

from repro.analysis.transient import analyze_transient_problems
from repro.forwarding.bgp_plane import BGPDataPlane
from repro.sim.tracing import ForwardingTrace


def initial(paths):
    return {(asn, None): path for asn, path in paths.items()}


class TestEligibility:
    def test_pre_event_unreachable_ases_not_counted(self):
        trace = ForwardingTrace()
        # AS 2 has no route even before the event.
        state = initial({1: (9,), 2: None, 9: ()})
        trace.record(1.0, 1, None, None)  # 1 loses its route
        trace.record(2.0, 1, None, (9,))  # and recovers much later
        report = analyze_transient_problems(
            trace, state, BGPDataPlane(9), [1, 2, 9]
        )
        assert report.eligible == {1, 9}
        assert report.affected == {1}

    def test_failed_ases_not_eligible(self):
        trace = ForwardingTrace()
        state = initial({1: (9,), 9: ()})
        report = analyze_transient_problems(
            trace, state, BGPDataPlane(9), [1, 9], failed_ases=frozenset({1})
        )
        assert 1 not in report.eligible


class TestCounting:
    def test_blackhole_interval_counted(self):
        trace = ForwardingTrace()
        state = initial({1: (9,), 9: ()})
        trace.record(10.0, 1, None, None)
        trace.record(15.0, 1, None, (9,))
        report = analyze_transient_problems(trace, state, BGPDataPlane(9), [1, 9])
        assert report.affected == {1}
        assert report.blackholed == {1}
        assert report.looped == set()

    def test_loop_interval_counted(self):
        trace = ForwardingTrace()
        state = initial({1: (2, 9), 2: (9,), 9: ()})
        trace.record(10.0, 2, None, (1, 9))  # 2 now points back at 1
        trace.record(15.0, 2, None, (9,))
        report = analyze_transient_problems(
            trace, state, BGPDataPlane(9), [1, 2, 9]
        )
        assert report.looped == {1, 2}

    def test_min_duration_filters_short_blips(self):
        trace = ForwardingTrace()
        state = initial({1: (9,), 9: ()})
        trace.record(10.0, 1, None, None)
        trace.record(10.4, 1, None, (9,))  # 0.4 s outage
        report = analyze_transient_problems(
            trace, state, BGPDataPlane(9), [1, 9], min_duration=1.0
        )
        assert report.affected == set()
        report = analyze_transient_problems(
            trace, state, BGPDataPlane(9), [1, 9], min_duration=0.2
        )
        assert report.affected == {1}

    def test_permanent_unreachability_excluded(self):
        trace = ForwardingTrace()
        state = initial({1: (9,), 9: ()})
        trace.record(10.0, 1, None, None)  # never recovers
        report = analyze_transient_problems(trace, state, BGPDataPlane(9), [1, 9])
        assert report.affected == set()
        assert report.permanently_unreachable == {1}

    def test_empty_trace_means_no_problems(self):
        trace = ForwardingTrace()
        state = initial({1: (9,), 9: ()})
        report = analyze_transient_problems(trace, state, BGPDataPlane(9), [1, 9])
        assert report.affected_count == 0

    def test_detection_instant_opt_in(self):
        trace = ForwardingTrace()
        state = initial({1: (9,), 9: ()})
        trace.record(5.0, 1, None, (9,))  # irrelevant change
        failed = frozenset({(1, 9)})
        relaxed = analyze_transient_problems(
            trace, state, BGPDataPlane(9), [1, 9], failed_links=failed
        )
        strict = analyze_transient_problems(
            trace,
            state,
            BGPDataPlane(9),
            [1, 9],
            failed_links=failed,
            include_detection_instant=True,
        )
        # With the stale pre-reaction instant included, AS 1 is counted
        # as permanently broken (it never re-routes in this trace) —
        # not as transient — in both modes.
        assert relaxed.permanently_unreachable == {1}
        assert strict.permanently_unreachable == {1}


class TestTimelines:
    def test_problem_timeline_tracks_current_problems(self):
        trace = ForwardingTrace()
        state = initial({1: (9,), 2: (9,), 9: ()})
        trace.record(10.0, 1, None, None)
        trace.record(12.0, 1, None, (9,))
        report = analyze_transient_problems(
            trace, state, BGPDataPlane(9), [1, 2, 9]
        )
        assert report.problem_timeline == [(10.0, 1), (12.0, 0)]

    def test_disruption_duration(self):
        trace = ForwardingTrace()
        state = initial({1: (9,), 9: ()})
        trace.record(10.0, 1, None, None)
        trace.record(13.0, 1, None, (9,))
        report = analyze_transient_problems(trace, state, BGPDataPlane(9), [1, 9])
        assert report.disruption_duration == 3.0

    def test_no_disruption_when_clean(self):
        trace = ForwardingTrace()
        state = initial({1: (9,), 9: ()})
        trace.record(10.0, 1, None, (9,))
        report = analyze_transient_problems(trace, state, BGPDataPlane(9), [1, 9])
        assert report.disruption_duration == 0.0
