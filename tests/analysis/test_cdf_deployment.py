"""Tests for CDF helpers and partial-deployment analysis."""

import pytest

from repro.analysis.cdf import (
    empirical_cdf,
    fraction_at_most,
    fraction_greater,
    mean,
)
from repro.analysis.deployment import (
    full_deployment_fraction,
    partial_deployment_fraction,
)
from repro.topology.generators import chain_topology, example_paper_topology
from repro.topology.graph import ASGraph


class TestCDF:
    def test_empirical_cdf_shape(self):
        cdf = empirical_cdf([0.3, 0.1, 0.2])
        assert cdf == [(0.1, pytest.approx(1 / 3)), (0.2, pytest.approx(2 / 3)), (0.3, 1.0)]

    def test_cdf_is_monotone(self):
        cdf = empirical_cdf([5, 1, 4, 1, 3])
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        values = [v for v, _ in cdf]
        assert values == sorted(values)

    def test_empty(self):
        assert empirical_cdf([]) == []
        assert mean([]) == 0.0
        assert fraction_at_most([], 1) == 0.0
        assert fraction_greater([], 1) == 0.0

    def test_fractions(self):
        data = [0.5, 0.8, 1.0]
        assert fraction_at_most(data, 0.7) == pytest.approx(1 / 3)
        assert fraction_greater(data, 0.7) == pytest.approx(2 / 3)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0


class TestPartialDeployment:
    def test_disjoint_example_reaches_high_fraction(self):
        graph = example_paper_topology()
        partial = partial_deployment_fraction(graph, trials=64, seed=1)
        full = full_deployment_fraction(graph)
        assert 0.0 < partial < full <= 1.0

    def test_chain_has_no_disjoint_paths(self):
        graph = chain_topology(4)
        # Non-tier-1 destinations have no disjoint pairs at all.
        assert full_deployment_fraction(graph, destinations=[1, 2, 3]) == 0.0

    def test_tier1_destination_counts_as_success(self):
        graph = chain_topology(3)
        assert full_deployment_fraction(graph, destinations=[3]) == 1.0
        assert partial_deployment_fraction(graph, destinations=[3], trials=4) == 1.0

    def test_coloring_probability_half_for_single_pair(self):
        # Exactly two disjoint chains: different colors with prob 1/2.
        graph = ASGraph()
        graph.add_c2p(1, 2)
        graph.add_c2p(1, 3)
        graph.add_c2p(2, 4)
        graph.add_c2p(3, 5)
        graph.add_p2p(4, 5)
        fraction = partial_deployment_fraction(
            graph, destinations=[1], trials=4000, seed=3
        )
        assert fraction == pytest.approx(0.5, abs=0.05)

    def test_deterministic_for_seed(self):
        graph = example_paper_topology()
        a = partial_deployment_fraction(graph, trials=16, seed=9)
        b = partial_deployment_fraction(graph, trials=16, seed=9)
        assert a == b
