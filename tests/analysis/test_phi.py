"""Tests for the disjoint-path probability Φ (Figure 1 machinery)."""

import pytest

from repro.analysis.phi import (
    best_blue_provider,
    conditional_phi_by_provider,
    phi_distribution,
    phi_for_destination,
    phi_with_intelligent_selection,
    uphill_paths_to_tier1,
)
from repro.errors import ConfigurationError
from repro.topology.generators import chain_topology, example_paper_topology
from repro.topology.graph import ASGraph


@pytest.fixture
def diamond():
    """Perfectly disjoint diamond: Φ must be 1."""
    graph = ASGraph()
    graph.add_c2p(1, 2)
    graph.add_c2p(1, 3)
    graph.add_c2p(2, 4)
    graph.add_c2p(3, 5)
    graph.add_p2p(4, 5)
    return graph


@pytest.fixture
def pinched():
    """Both chains merge at 6 before the tier-1s: no disjoint pair."""
    graph = ASGraph()
    graph.add_c2p(1, 2)
    graph.add_c2p(1, 3)
    graph.add_c2p(2, 6)
    graph.add_c2p(3, 6)
    graph.add_c2p(6, 7)
    graph.add_c2p(6, 8)
    graph.add_p2p(7, 8)
    return graph


class TestUphillPaths:
    def test_diamond_has_two_paths(self, diamond):
        paths, capped = uphill_paths_to_tier1(diamond, 1)
        assert not capped
        assert sorted(paths) == [(1, 2, 4), (1, 3, 5)]

    def test_cap_is_honored(self, diamond):
        paths, capped = uphill_paths_to_tier1(diamond, 1, max_paths=1)
        assert capped
        assert len(paths) == 1

    def test_invalid_cap(self, diamond):
        with pytest.raises(ConfigurationError):
            uphill_paths_to_tier1(diamond, 1, max_paths=0)

    def test_tier1_start_is_single_trivial_path(self, diamond):
        paths, _ = uphill_paths_to_tier1(diamond, 4)
        assert paths == [(4,)]


class TestPhi:
    def test_diamond_phi_is_one(self, diamond):
        result = phi_for_destination(diamond, 1)
        assert result.phi == 1.0
        assert result.n_paths == 2
        assert result.n_good == 2
        assert result.anchor == 1

    def test_pinched_phi_is_zero(self, pinched):
        # Every chain passes through 6, so no locked choice leaves a
        # disjoint alternative.
        result = phi_for_destination(pinched, 1)
        assert result.phi == 0.0
        assert result.n_paths == 4

    def test_partial_phi(self):
        # 1 has chains via 2 (to tier-1 4) and via 3 (to 4's peer 5),
        # but also a chain via 2 that merges into 3's side.
        graph = ASGraph()
        graph.add_c2p(1, 2)
        graph.add_c2p(1, 3)
        graph.add_c2p(2, 4)
        graph.add_c2p(2, 3)  # merge path: 1-2-3-...
        graph.add_c2p(3, 5)
        graph.add_p2p(4, 5)
        result = phi_for_destination(graph, 1)
        assert 0.0 < result.phi < 1.0

    def test_single_homed_inherits_anchor(self, diamond):
        diamond.add_c2p(10, 1)  # 10 single-homed under the diamond
        result = phi_for_destination(diamond, 10)
        assert result.anchor == 1
        assert result.phi == 1.0

    def test_pure_chain_phi_zero(self):
        graph = chain_topology(4)
        result = phi_for_destination(graph, 1)
        assert result.phi == 0.0
        assert result.anchor is None

    def test_tier1_destination_phi_one(self, diamond):
        result = phi_for_destination(diamond, 4)
        assert result.phi == 1.0

    def test_distribution_covers_all_ases(self, diamond):
        results = phi_distribution(diamond)
        assert len(results) == len(diamond)
        assert all(0.0 <= r.phi <= 1.0 for r in results)

    def test_example_topology_phi(self):
        graph = example_paper_topology()
        result = phi_for_destination(graph, 90)
        # 90's two chains (70-side, 80-side) are fully disjoint.
        assert result.phi == 1.0


class TestIntelligentSelection:
    def test_conditional_stats_sum_to_total(self, diamond):
        stats = conditional_phi_by_provider(diamond, 1)
        total = sum(t for _, t in stats.values())
        assert total == phi_for_destination(diamond, 1).n_paths

    def test_intelligent_at_least_as_good_as_random(self):
        graph = ASGraph()
        # Provider 2 leads to a shared bottleneck, provider 3 is clean:
        # intelligent selection should pick 3.
        graph.add_c2p(1, 2)
        graph.add_c2p(1, 3)
        graph.add_c2p(2, 6)
        graph.add_c2p(6, 7)
        graph.add_c2p(3, 8)
        graph.add_p2p(7, 8)
        random_phi = phi_for_destination(graph, 1).phi
        smart_phi = phi_with_intelligent_selection(graph, 1).phi
        assert smart_phi >= random_phi

    def test_best_blue_provider_prefers_good_side(self, pinched):
        # All chains are bad, so any provider ties; just check it picks
        # one of the real providers.
        best = best_blue_provider(pinched, 1)
        assert best in (2, 3)

    def test_best_blue_provider_none_without_providers(self, diamond):
        assert best_blue_provider(diamond, 4) is None
