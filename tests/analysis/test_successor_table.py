"""Equivalence of the STAMP successor-table engine with the closures.

The table path (flat integer successor tables, incremental outcome
propagation, suffix-shared walks) replaces the closure engine on every
analysis hot path, so these tests pin it to the closure semantics at
three levels: raw walk classification (outcomes *and* dependency
reads), incremental propagation against full re-classification under
random update streams, and whole-analyzer equivalence with the
brute-force reference twins across all three planes — including
episode phase boundaries and restore-induced outcome flips.  The
gate-signature refresh cache is pinned by running identical scenarios
with the cache on and off.
"""

import random

import pytest

import repro.forwarding.stamp_plane as stamp_plane
import repro.forwarding.walk as walk
from repro.analysis.transient import (
    EpisodeSegment,
    _reference_analyze_episode_transient_problems,
    _reference_analyze_transient_problems,
    analyze_episode_transient_problems,
    analyze_transient_problems,
)
from repro.experiments.runner import build_network, run_scenario
from repro.experiments.scenarios import (
    Scenario,
    link_flap_episode,
    single_provider_link_failure,
    staggered_maintenance_episode,
)
from repro.forwarding.stamp_plane import STAMPDataPlane, _SuccessorTable
from repro.stamp.node import STAMPNode
from repro.topology.generators import (
    InternetTopologyConfig,
    generate_internet_topology,
)
from repro.types import Color, Outcome, normalize_link


def _random_topology(seed: int):
    config = InternetTopologyConfig(
        seed=seed, n_tier1=3, n_tier2=8, n_tier3=16, n_stub=30
    )
    graph, _ = generate_internet_topology(config)
    return graph


def _random_stamp_state(rng, n=14, destination=1):
    """A fuzzed STAMP snapshot over ASes 1..n (arbitrary routes/flags)."""
    ases = list(range(1, n + 1))
    state = {}
    for asn in ases:
        for color in (Color.RED, Color.BLUE):
            if rng.random() < 0.2:
                path = None
            else:
                hops = rng.sample([a for a in ases if a != asn], rng.randint(1, 3))
                path = tuple(hops)
            state[(asn, color)] = path
            state[(asn, stamp_plane.unstable_key(color))] = rng.random() < 0.3
    return ases, state


def _closure_results(plane, state, ases, failed_links, failed_ases):
    return plane.classify_many_recording(
        state, ases, failed_links=failed_links, failed_ases=failed_ases
    )


class TestTableWalkEquivalence:
    """Raw table walks match the closure engine, reads included."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_snapshots(self, seed):
        rng = random.Random(f"table:{seed}")
        ases, state = _random_stamp_state(rng)
        plane = STAMPDataPlane(destination=1)
        failed_links = (
            frozenset({normalize_link(*rng.sample(ases, 2))})
            if seed % 2
            else frozenset()
        )
        failed_ases = frozenset({ases[-1]}) if seed % 3 == 0 else frozenset()
        table = _SuccessorTable(plane, state, failed_links, failed_ases)
        assert not table.broken
        expected = _closure_results(plane, state, ases, failed_links, failed_ases)
        got_many = table.classify_many(list(ases), failed_ases)
        for asn in ases:
            exp_out, exp_deps = expected[asn]
            one_out, one_deps = table.classify_one(asn, failed_ases)
            assert one_out is exp_out, asn
            assert set(one_deps) == set(exp_deps), asn
            many_out, many_deps = got_many[asn]
            assert many_out is exp_out, asn
            assert set(many_deps) == set(exp_deps), asn

    @pytest.mark.parametrize("seed", range(4))
    def test_batch_classification_matches_classify(self, seed):
        rng = random.Random(f"batch:{seed}")
        ases, state = _random_stamp_state(rng)
        plane = STAMPDataPlane(destination=1)
        expected = plane.classify(state, ases)
        got = plane.classify_batch(state, ases)
        assert got == expected

    def test_out_of_universe_hop_falls_back(self):
        """A next hop outside the snapshot breaks the table, not results."""
        rng = random.Random("broken")
        ases, state = _random_stamp_state(rng)
        state[(3, Color.RED)] = (999,)  # hop with no state entries
        plane = STAMPDataPlane(destination=1)
        table = _SuccessorTable(plane, state, frozenset(), frozenset())
        assert table.broken
        assert plane._session_table(state, frozenset(), frozenset()) is None
        # classify_batch silently uses the closure engine.
        assert plane.classify_batch(state, ases) == plane.classify(state, ases)


class TestIncrementalPropagation:
    """Propagation-mode tables track full re-classification exactly."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_update_streams(self, seed):
        rng = random.Random(f"prop:{seed}")
        ases, state = _random_stamp_state(rng)
        plane = STAMPDataPlane(destination=1)
        table = _SuccessorTable(plane, state, frozenset(), frozenset())
        table.activate_propagation()
        outcomes = table.source_outcomes(ases)
        assert outcomes == plane.classify_batch(state, ases)
        for _ in range(40):
            # Mutate 1-3 keys, feed the table, and compare against a
            # from-scratch classification of the evolved snapshot.
            for _ in range(rng.randint(1, 3)):
                asn = rng.choice(ases)
                if rng.random() < 0.5:
                    key = (asn, rng.choice((Color.RED, Color.BLUE)))
                    if rng.random() < 0.3:
                        value = None
                    else:
                        hops = rng.sample(
                            [a for a in ases if a != asn], rng.randint(1, 3)
                        )
                        value = tuple(hops)
                else:
                    key = (
                        asn,
                        stamp_plane.unstable_key(
                            rng.choice((Color.RED, Color.BLUE))
                        ),
                    )
                    value = rng.random() < 0.5
                state[key] = value
                table.update(key, value)
            transitions = table.collect_transitions()
            fresh = plane.classify_batch(state, ases)
            # Transitions report exactly the sources whose fate changed.
            changed = {asn for asn, _ in transitions}
            for asn, new in transitions:
                assert fresh[asn] is new
            for asn in ases:
                if outcomes[asn] is not fresh[asn]:
                    assert asn in changed, asn
            outcomes = fresh
            assert table.source_outcomes(ases) == fresh


class TestAnalyzerEquivalence:
    """Analyzer-level equivalence with the brute-force twins."""

    @pytest.mark.parametrize("protocol", ("bgp", "rbgp", "rbgp-norci", "stamp"))
    @pytest.mark.parametrize("seed", (3, 11))
    def test_restore_flip_scenarios(self, protocol, seed):
        """A restore changes outcomes with zero trace changes up front."""
        graph = _random_topology(seed)
        rng = random.Random(f"restore:{seed}")
        base = single_provider_link_failure(graph, rng)
        scenario = Scenario(
            destination=base.destination,
            failed_links=base.failed_links,
            restored_links=((base.destination, graph.providers(base.destination)[0]),)
            if graph.providers(base.destination)
            else (),
        )
        network, plane = build_network(protocol, graph, scenario.destination, seed=seed)
        for a, b in scenario.restored_links:
            network.transport.fail_link(a, b)
        network.start()
        initial_state = network.forwarding_state()
        for a, b in scenario.failed_links:
            network.fail_link(a, b)
        for a, b in scenario.restored_links:
            network.restore_link(a, b)
        network.run_to_convergence()
        failed_links = frozenset(
            normalize_link(a, b) for a, b in scenario.failed_links
        )
        kwargs = dict(failed_links=failed_links)
        incremental = analyze_transient_problems(
            network.trace, initial_state, plane, graph.ases, **kwargs
        )
        reference = _reference_analyze_transient_problems(
            network.trace, initial_state, plane, graph.ases, **kwargs
        )
        assert incremental.eligible == reference.eligible
        assert incremental.affected == reference.affected
        assert incremental.looped == reference.looped
        assert incremental.blackholed == reference.blackholed
        assert (
            incremental.permanently_unreachable
            == reference.permanently_unreachable
        )
        assert incremental.timeline == reference.timeline
        assert incremental.problem_timeline == reference.problem_timeline

    @pytest.mark.parametrize("protocol", ("bgp", "rbgp", "stamp"))
    @pytest.mark.parametrize(
        "builder, kwargs",
        [
            (link_flap_episode, {"period": 30.0, "flaps": 2}),
            (staggered_maintenance_episode, {"window": 40.0, "gap": 15.0}),
        ],
    )
    @pytest.mark.parametrize("seed", (2, 7))
    def test_episode_boundaries_on_random_topologies(
        self, protocol, builder, kwargs, seed
    ):
        """Phase-boundary rescans match the reference across planes."""
        from repro.experiments import runner as runner_mod

        graph = _random_topology(seed + 20)
        episode = builder(graph, random.Random(f"ep:{seed}"), **kwargs)
        network, plane, _ = runner_mod._acquire_started_network(
            graph, episode.destination, protocol, seed, None,
            episode.pre_failed_links,
        )
        segments, _ = runner_mod.collect_episode_segments(network, episode)
        incremental = analyze_episode_transient_problems(
            segments, plane, graph.ases
        )
        reference = _reference_analyze_episode_transient_problems(
            segments, plane, graph.ases
        )
        for got, want in [(incremental.overall, reference.overall)] + list(
            zip(incremental.phases, reference.phases)
        ):
            assert got.eligible == want.eligible
            assert got.affected == want.affected
            assert got.permanently_unreachable == want.permanently_unreachable
            assert got.timeline == want.timeline
            assert got.problem_timeline == want.problem_timeline

    @pytest.mark.parametrize("seed", (4,))
    def test_without_numpy_matches_reference(self, seed, monkeypatch):
        """The pure-Python table path agrees with the reference too."""
        monkeypatch.setattr(walk, "_np", None)
        monkeypatch.setattr(stamp_plane, "_np", None)
        graph = _random_topology(seed)
        scenario = single_provider_link_failure(graph, random.Random("np"))
        network, plane = build_network("stamp", graph, scenario.destination, seed=seed)
        network.start()
        initial_state = network.forwarding_state()
        for a, b in scenario.failed_links:
            network.fail_link(a, b)
        network.run_to_convergence()
        failed_links = frozenset(
            normalize_link(a, b) for a, b in scenario.failed_links
        )
        incremental = analyze_transient_problems(
            network.trace, initial_state, plane, graph.ases,
            failed_links=failed_links,
        )
        reference = _reference_analyze_transient_problems(
            network.trace, initial_state, plane, graph.ases,
            failed_links=failed_links,
        )
        assert incremental.affected == reference.affected
        assert incremental.problem_timeline == reference.problem_timeline


class TestGateSignatureCache:
    """The refresh-elision cache is invisible in every observable."""

    @pytest.mark.parametrize("seed", range(4))
    def test_traces_identical_with_and_without_cache(self, seed):
        graph = _random_topology(seed + 40)
        scenario = single_provider_link_failure(
            graph, random.Random(f"gate:{seed}")
        )

        def run(enabled):
            STAMPNode._gate_sig_enabled = enabled
            try:
                result = run_scenario(graph, scenario, "stamp", seed=seed)
            finally:
                STAMPNode._gate_sig_enabled = True
            return (
                result.affected,
                result.announcements,
                result.withdrawals,
                result.convergence_time,
                result.report.timeline,
                result.report.problem_timeline,
                sorted(result.report.affected),
                sorted(result.report.permanently_unreachable),
            )

        assert run(True) == run(False)
