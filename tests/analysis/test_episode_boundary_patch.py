"""Fuzzed differential wall for cross-boundary session patching.

The episode analyzer carries its walk session, fingerprint store,
successor table, and dependency index *across* phase boundaries as a
patch (:meth:`repro.analysis.transient._IncrementalScan
._patch_segment`) instead of rebuilding per segment.  These tests pin
that machinery against the brute-force reference twin on seeded random
episodes — mixed link/AS fail and restore events, 2–64 phases, silent
restores and re-fails — across every plane, and pin the individual
load-bearing pieces:

* the patched path produces reports identical to the forced-rebuild
  path (and is actually taken);
* a successor table broken *mid-episode* falls back to the closure
  engine and stays correct across later boundaries;
* everything holds with numpy absent (pure-Python table rows);
* property (hypothesis): a boundary delta's invalidation set always
  contains every source whose outcome the delta changed — for the
  STAMP table's ``apply_boundary`` and for every plane's
  ``boundary_touched_keys`` hook against its recorded dependency sets.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.analysis.transient as transient
import repro.forwarding.stamp_plane as stamp_plane
import repro.forwarding.walk as walk
from repro.analysis.transient import (
    EpisodeSegment,
    _IncrementalScan,
    _reference_analyze_episode_transient_problems,
    analyze_episode_transient_problems,
)
from repro.experiments import runner as runner_mod
from repro.experiments.runner import collect_episode_segments
from repro.experiments.scenarios import (
    Episode,
    fail_as,
    fail_link,
    restore_as,
    restore_link,
)
from repro.forwarding.bgp_plane import BGPDataPlane
from repro.forwarding.rbgp_plane import FAILOVER, PRIMARY, RBGPDataPlane
from repro.forwarding.stamp_plane import STAMPDataPlane, _SuccessorTable
from repro.sim.tracing import ForwardingChange, ForwardingTrace
from repro.topology.generators import (
    InternetTopologyConfig,
    generate_internet_topology,
)
from repro.types import Color, Outcome, normalize_link

PLANES = ("bgp", "rbgp", "rbgp-norci", "stamp")


def _random_topology(seed: int):
    config = InternetTopologyConfig(
        seed=seed, n_tier1=3, n_tier2=8, n_tier3=16, n_stub=30
    )
    graph, _ = generate_internet_topology(config)
    return graph


def _random_episode(graph, rng, n_phases: int) -> Episode:
    """A seeded random episode: one event per phase, mixed kinds.

    The first three phases (when there are at least four) are a
    deterministic fail → restore → re-fail of one link, so every
    generated episode of that size exercises a restore boundary and a
    re-fail boundary; the rest is a random walk over feasible events
    (links and ASes fail and come back, never the destination).
    """
    links = sorted(normalize_link(a, b) for a, b, _ in graph.links())
    candidates = [asn for asn in graph.ases if graph.is_multihomed(asn)]
    destination = rng.choice(candidates)
    up_links = set(links)
    down_links: set = set()
    up_ases = {asn for asn in graph.ases if asn != destination}
    down_ases: set = set()
    steps = []
    offset = 0.0

    def push(event):
        steps.append((offset, event))

    def do_fail_link():
        link = rng.choice(sorted(up_links))
        up_links.discard(link)
        down_links.add(link)
        push(fail_link(*link))

    phases = []
    if n_phases >= 4:
        refail = rng.choice(links)
        phases = ["refail-0", "refail-1", "refail-2"]
    while len(phases) < n_phases:
        phases.append("random")
    for kind in phases:
        offset += rng.choice([4.0, 7.0, 12.0])
        if kind == "refail-0" or kind == "refail-2":
            up_links.discard(refail)
            down_links.add(refail)
            push(fail_link(*refail))
            continue
        if kind == "refail-1":
            down_links.discard(refail)
            up_links.add(refail)
            push(restore_link(*refail))
            continue
        roll = rng.random()
        if roll < 0.40 or (not down_links and not down_ases):
            do_fail_link()
        elif roll < 0.65 and down_links:
            link = rng.choice(sorted(down_links))
            down_links.discard(link)
            up_links.add(link)
            push(restore_link(*link))
        elif roll < 0.85 and len(up_ases) > 3:
            asn = rng.choice(sorted(up_ases))
            up_ases.discard(asn)
            down_ases.add(asn)
            push(fail_as(asn))
        elif down_ases:
            asn = rng.choice(sorted(down_ases))
            down_ases.discard(asn)
            up_ases.add(asn)
            push(restore_as(asn))
        else:
            do_fail_link()
    return Episode(destination=destination, steps=tuple(steps))


def _run_segments(graph, episode, protocol: str):
    network, plane, _ = runner_mod._acquire_started_network(
        graph, episode.destination, protocol, 7, None,
        episode.pre_failed_links,
    )
    segments, _ = collect_episode_segments(network, episode)
    return segments, plane


def _report_fields(report):
    return (
        report.eligible,
        report.affected,
        report.looped,
        report.blackholed,
        report.permanently_unreachable,
        report.timeline,
        report.problem_timeline,
    )


def _assert_matches_reference(segments, plane, ases):
    incremental = analyze_episode_transient_problems(segments, plane, ases)
    reference = _reference_analyze_episode_transient_problems(
        segments, plane, ases
    )
    assert _report_fields(incremental.overall) == _report_fields(
        reference.overall
    )
    assert len(incremental.phases) == len(reference.phases)
    for index, (got, want) in enumerate(
        zip(incremental.phases, reference.phases)
    ):
        assert _report_fields(got) == _report_fields(want), index
    return incremental


class TestFuzzedEpisodes:
    """Seeded random episodes diff clean against the reference twin."""

    @pytest.mark.parametrize("protocol", PLANES)
    @pytest.mark.parametrize(
        "seed, n_phases",
        [(0, 2), (1, 5), (2, 9), (3, 17), (4, 33)],
    )
    def test_random_episodes(self, protocol, seed, n_phases):
        graph = _random_topology(seed % 3)
        rng = random.Random(f"fuzz:{protocol}:{seed}:{n_phases}")
        episode = _random_episode(graph, rng, n_phases)
        segments, plane = _run_segments(graph, episode, protocol)
        assert len(segments) == n_phases
        _assert_matches_reference(segments, plane, list(graph.ases))

    @pytest.mark.parametrize("protocol", ("stamp", "bgp"))
    def test_long_horizon_64_phases(self, protocol):
        graph = _random_topology(1)
        rng = random.Random(f"fuzz64:{protocol}")
        episode = _random_episode(graph, rng, 64)
        segments, plane = _run_segments(graph, episode, protocol)
        assert len(segments) == 64
        _assert_matches_reference(segments, plane, list(graph.ases))


class TestPatchedVsRebuilt:
    """``begin_segment``'s patch path equals the rebuild fallback."""

    @pytest.mark.parametrize("protocol", PLANES)
    def test_forced_rebuild_is_identical(self, monkeypatch, protocol):
        graph = _random_topology(2)
        rng = random.Random(f"pvr:{protocol}")
        episode = _random_episode(graph, rng, 9)
        segments, plane = _run_segments(graph, episode, protocol)
        ases = list(graph.ases)

        patches = []
        original = _IncrementalScan._patch_segment

        def spy(self, *args, **kwargs):
            result = original(self, *args, **kwargs)
            patches.append(result)
            return result

        monkeypatch.setattr(_IncrementalScan, "_patch_segment", spy)
        patched = analyze_episode_transient_problems(segments, plane, ases)
        assert patches and any(patches), "patch path was never taken"

        monkeypatch.setattr(
            _IncrementalScan,
            "_patch_segment",
            lambda self, *args, **kwargs: False,
        )
        rebuilt = analyze_episode_transient_problems(segments, plane, ases)
        assert _report_fields(patched.overall) == _report_fields(
            rebuilt.overall
        )
        for got, want in zip(patched.phases, rebuilt.phases):
            assert _report_fields(got) == _report_fields(want)


def _random_stamp_state(rng, n=14, destination=1):
    """A fuzzed STAMP snapshot over ASes 1..n (arbitrary routes/flags)."""
    ases = list(range(1, n + 1))
    state = {}
    for asn in ases:
        for color in (Color.RED, Color.BLUE):
            if rng.random() < 0.2:
                path = None
            else:
                hops = rng.sample(
                    [a for a in ases if a != asn], rng.randint(1, 3)
                )
                path = tuple(hops)
            state[(asn, color)] = path
            state[(asn, stamp_plane.unstable_key(color))] = (
                rng.random() < 0.3
            )
    return ases, state


def _broken_mid_episode_segments():
    """Synthetic STAMP episode whose table breaks in segment 1.

    Segment 1's trace introduces a next hop outside the indexed
    universe (the one snapshot shape the successor table cannot
    represent), forcing the mid-episode fallback to the closure
    engine; segment 2 then crosses another boundary on the closure
    path, exercising the STAMP ``boundary_touched_keys`` hook.
    """
    rng = random.Random("broken-mid")
    ases, state = _random_stamp_state(rng)
    link = normalize_link(2, 5)
    seg0 = EpisodeSegment(
        trace=ForwardingTrace(
            changes=[ForwardingChange(1.0, 4, Color.RED, (1,))]
        ),
        initial_state=dict(state),
        failed_links=frozenset({link}),
        failed_ases=frozenset(),
        start_time=0.0,
    )
    state1 = dict(state)
    state1[(4, Color.RED)] = (1,)
    seg1 = EpisodeSegment(
        trace=ForwardingTrace(
            changes=[
                ForwardingChange(6.0, 3, Color.RED, (999,)),
                ForwardingChange(7.0, 3, Color.RED, (2, 1)),
            ]
        ),
        initial_state=dict(state1),
        failed_links=frozenset(),
        failed_ases=frozenset(),
        start_time=5.0,
    )
    state2 = dict(state1)
    state2[(3, Color.RED)] = (2, 1)
    seg2 = EpisodeSegment(
        trace=ForwardingTrace(
            changes=[ForwardingChange(11.0, 6, Color.BLUE, None)]
        ),
        initial_state=dict(state2),
        failed_links=frozenset({normalize_link(1, 3)}),
        failed_ases=frozenset({7}),
        start_time=10.0,
    )
    return ases, [seg0, seg1, seg2]


class TestBrokenTableMidEpisode:
    def test_fallback_matches_reference(self):
        ases, segments = _broken_mid_episode_segments()
        plane = STAMPDataPlane(destination=1)
        # Sanity: the mid-episode snapshot really is unrepresentable.
        assert (
            plane._session_table(
                segments[1].initial_state
                | {(3, Color.RED): (999,)},
                frozenset(),
                frozenset(),
            )
            is None
        )
        _assert_matches_reference(segments, plane, ases)


class TestNumpyAbsentParity:
    """The boundary-patch path is numpy-optional, byte-for-byte."""

    @pytest.fixture(autouse=True)
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(walk, "_np", None)
        monkeypatch.setattr(stamp_plane, "_np", None)

    def test_fuzzed_stamp_episode(self):
        graph = _random_topology(0)
        rng = random.Random("nonumpy:ep")
        episode = _random_episode(graph, rng, 8)
        segments, plane = _run_segments(graph, episode, "stamp")
        _assert_matches_reference(segments, plane, list(graph.ases))

    def test_broken_table_fallback(self):
        ases, segments = _broken_mid_episode_segments()
        plane = STAMPDataPlane(destination=1)
        _assert_matches_reference(segments, plane, ases)

    def test_apply_boundary_equals_fresh_table(self):
        rng = random.Random("nonumpy:boundary")
        ases, state = _random_stamp_state(rng)
        plane = STAMPDataPlane(destination=1)
        old = frozenset({normalize_link(2, 5)})
        new_links = frozenset({normalize_link(3, 4)})
        new_ases = frozenset({9})
        table = _SuccessorTable(plane, state, old, frozenset())
        table.activate_propagation()
        table.apply_boundary(new_links, new_ases)
        assert not table.broken
        table.collect_transitions()
        fresh = _SuccessorTable(plane, state, new_links, new_ases)
        fresh.activate_propagation()
        assert table.source_outcomes(ases) == fresh.source_outcomes(ases)


def _random_failure_sets(rng, ases, destination):
    links = frozenset(
        normalize_link(*rng.sample(ases, 2))
        for _ in range(rng.randint(0, 3))
    )
    candidates = [asn for asn in ases if asn != destination]
    fases = frozenset(rng.sample(candidates, rng.randint(0, 2)))
    return links, fases


@settings(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_apply_boundary_invalidation_covers_every_changed_source(seed):
    """apply_boundary's transitions are exactly the changed sources.

    Completeness: every source whose fate the failure-set delta
    changed must be reported (with its new fate).  Precision: only
    changed sources are reported.  The patched table must agree with a
    table built from scratch under the new sets for every source.
    """
    rng = random.Random(f"hyp:boundary:{seed}")
    ases, state = _random_stamp_state(rng)
    old_links, old_ases = _random_failure_sets(rng, ases, 1)
    new_links, new_ases = _random_failure_sets(rng, ases, 1)
    plane = STAMPDataPlane(destination=1)

    before = _SuccessorTable(plane, state, old_links, old_ases)
    assert not before.broken
    before.activate_propagation()
    baseline = before.source_outcomes(ases)

    after = _SuccessorTable(plane, state, new_links, new_ases)
    after.activate_propagation()
    expected = after.source_outcomes(ases)

    patched = _SuccessorTable(plane, state, old_links, old_ases)
    patched.activate_propagation()
    patched.apply_boundary(new_links, new_ases)
    assert not patched.broken
    transitions = dict(patched.collect_transitions())

    for asn in ases:
        if baseline[asn] is not expected[asn]:
            assert transitions.get(asn) is expected[asn], asn
    for asn, outcome in transitions.items():
        assert baseline[asn] is not outcome, asn
    assert patched.source_outcomes(ases) == expected


def _random_bgp_state(rng, ases):
    state = {}
    for asn in ases:
        if rng.random() < 0.25:
            state[(asn, None)] = None
        else:
            hops = rng.sample([a for a in ases if a != asn], rng.randint(1, 3))
            state[(asn, None)] = tuple(hops)
    return state


def _random_rbgp_state(rng, ases):
    state = {}
    for asn in ases:
        others = [a for a in ases if a != asn]
        if rng.random() < 0.25:
            state[(asn, PRIMARY)] = None
        else:
            state[(asn, PRIMARY)] = tuple(
                rng.sample(others, rng.randint(1, 3))
            )
        entries = []
        for _ in range(rng.randint(0, 2)):
            path = tuple(rng.sample(others, rng.randint(1, 3)))
            entries.append((path[0], path))
        state[(asn, FAILOVER)] = tuple(entries)
    return state


def _hook_planes():
    graph = _random_topology(0)
    return [
        ("bgp", BGPDataPlane(1), _random_bgp_state),
        ("rbgp", RBGPDataPlane(1, rci=True), _random_rbgp_state),
        (
            "rbgp-norci",
            RBGPDataPlane(1, rci=False, graph=graph),
            _random_rbgp_state,
        ),
        ("stamp", STAMPDataPlane(destination=1), None),
    ]


@settings(
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_boundary_touched_keys_cover_every_changed_source(seed):
    """Soundness contract of every plane's ``boundary_touched_keys``.

    For each source whose outcome differs between the old and new
    failure sets over the same snapshot, the hook must name at least
    one key of the source's *old* recorded dependency set — that is
    exactly what the closure engine's boundary patch re-walks.
    """
    rng = random.Random(f"hyp:hook:{seed}")
    for name, plane, builder in _hook_planes():
        if builder is None:
            ases, state = _random_stamp_state(rng)
        else:
            ases = list(range(1, 15))
            state = builder(rng, ases)
        old_links, old_ases = _random_failure_sets(rng, ases, 1)
        new_links, new_ases = _random_failure_sets(rng, ases, 1)
        touched = plane.boundary_touched_keys(
            state, old_links, old_ases, new_links, new_ases
        )
        assert touched is not None, name
        old_results = plane.classify_many_recording(
            state, ases, failed_links=old_links, failed_ases=old_ases
        )
        new_results = plane.classify_many_recording(
            state, ases, failed_links=new_links, failed_ases=new_ases
        )
        for asn in ases:
            if asn in old_ases or asn in new_ases:
                continue  # toggled sources are queued separately
            old_outcome, old_deps = old_results[asn]
            new_outcome, _ = new_results[asn]
            if old_outcome is new_outcome:
                continue
            assert set(old_deps) & touched, (name, asn)
