"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running test (set REPRO_RUN_SLOW=1 to include)",
    )

from repro.bgp.network import NetworkConfig
from repro.sim.delays import FixedDelay
from repro.sim.timers import MRAIConfig
from repro.topology.generators import (
    InternetTopologyConfig,
    example_paper_topology,
    generate_internet_topology,
)


@pytest.fixture
def example_graph():
    """The hand-built 9-AS topology from the generators module."""
    return example_paper_topology()


@pytest.fixture(scope="session")
def small_internet():
    """A ~90-AS generated Internet-like topology (session-cached)."""
    config = InternetTopologyConfig(
        seed=11, n_tier1=4, n_tier2=12, n_tier3=24, n_stub=50
    )
    graph, tiers = generate_internet_topology(config)
    return graph, tiers


@pytest.fixture(scope="session")
def medium_internet():
    """A ~220-AS generated topology for heavier integration tests."""
    config = InternetTopologyConfig(
        seed=7, n_tier1=5, n_tier2=25, n_tier3=60, n_stub=130
    )
    graph, tiers = generate_internet_topology(config)
    return graph, tiers


@pytest.fixture
def fast_network_config():
    """Simulation config with short MRAI so protocol tests run quickly.

    Dynamics are the same, just compressed in simulated time.
    """
    return NetworkConfig(
        seed=3,
        delay=FixedDelay(0.01),
        mrai=MRAIConfig(base=1.0),
    )


@pytest.fixture
def rng():
    """A deterministic RNG for scenario construction."""
    return random.Random("tests")
