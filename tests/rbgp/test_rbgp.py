"""Tests for the R-BGP implementation (failover paths, RCI, stale FIB)."""

import pytest

from repro.analysis.transient import analyze_transient_problems
from repro.bgp.network import NetworkConfig
from repro.forwarding.rbgp_plane import FAILOVER, PRIMARY, RBGPDataPlane
from repro.rbgp.network import RBGPNetwork
from repro.rbgp.speaker import path_contains_link, path_links
from repro.routing import compute_stable_routes
from repro.topology.generators import example_paper_topology
from repro.types import normalize_link


@pytest.fixture
def graph():
    return example_paper_topology()


def make_network(graph, dest=90, *, rci=True, seed=0):
    net = RBGPNetwork(graph, dest, NetworkConfig(seed=seed), rci=rci)
    net.start()
    return net


class TestPathHelpers:
    def test_path_links(self):
        assert path_links((1, 2, 3)) == {(1, 2), (2, 3)}

    def test_path_contains_link_either_order(self):
        assert path_contains_link((1, 2, 3), normalize_link(3, 2))
        assert not path_contains_link((1, 2, 3), normalize_link(1, 3))


class TestFailoverAdvertisement:
    def test_primary_convergence_matches_bgp(self, graph):
        net = make_network(graph)
        oracle = compute_stable_routes(graph, 90)
        for asn in graph.ases:
            assert net.best_path(asn) == oracle.route(asn).path

    def test_failover_advertised_to_next_hop(self, graph):
        net = make_network(graph)
        # Tier-1 10 routes to 90 via customer 30 and holds disjoint
        # alternates (via 40, or via peer 20); it advertises its most
        # disjoint one to its next hop 30.
        next_hop = net.speakers[10].best.learned_from
        entries = dict(net.speakers[next_hop].failover_state())
        assert 10 in entries
        # The advertised path must avoid the receiving next hop.
        assert next_hop not in entries[10]

    def test_failover_is_disjoint_alternate(self, graph):
        net = make_network(graph)
        speaker = net.speakers[10]
        failover = speaker.compute_failover_route()
        assert failover is not None
        assert failover.learned_from != speaker.best.learned_from

    def test_no_alternate_means_no_failover(self, graph):
        # 70's only candidate alternates all pass through its next hop
        # 90 (the destination) or itself, so it advertises nothing.
        net = make_network(graph)
        assert net.speakers[70].compute_failover_route() is None

    def test_no_failover_for_origin(self, graph):
        net = make_network(graph)
        assert net.speakers[90].compute_failover_route() is None


class TestRCI:
    def test_purge_drops_paths_through_root_cause(self, graph):
        net = make_network(graph, rci=True)
        speaker = net.speakers[30]
        assert any(
            path_contains_link((30,) + r.path, normalize_link(70, 90))
            for r in speaker.adj_rib_in.routes()
        )
        speaker._purge_root_cause(normalize_link(70, 90))
        assert not any(
            path_contains_link((30,) + r.path, normalize_link(70, 90))
            for r in speaker.adj_rib_in.routes()
        )
        assert normalize_link(70, 90) in speaker.known_bad_links

    def test_rci_converges_after_failure(self, graph):
        net = make_network(graph, rci=True)
        net.fail_link(90, 70)
        net.run_to_convergence()
        oracle = compute_stable_routes(graph, 90, failed_links=[(90, 70)])
        for asn in graph.ases:
            expected = oracle.route(asn).path if oracle.route(asn) else None
            assert net.best_path(asn) == expected

    def test_no_rci_converges_to_same_state(self, graph):
        net = make_network(graph, rci=False)
        net.fail_link(90, 70)
        net.run_to_convergence()
        oracle = compute_stable_routes(graph, 90, failed_links=[(90, 70)])
        for asn in graph.ases:
            expected = oracle.route(asn).path if oracle.route(asn) else None
            assert net.best_path(asn) == expected

    def test_rci_uses_fewer_or_equal_updates(self, graph):
        rci = make_network(graph, rci=True)
        base_rci = rci.stats.updates
        rci.fail_link(90, 70)
        rci.run_to_convergence()
        norci = make_network(graph, rci=False)
        base_norci = norci.stats.updates
        norci.fail_link(90, 70)
        norci.run_to_convergence()
        assert (rci.stats.updates - base_rci) <= (norci.stats.updates - base_norci)


class TestStaleFIB:
    def test_fib_retains_path_on_withdrawal_with_rci(self, graph):
        net = make_network(graph, rci=True)
        speaker = net.speakers[70]
        old_fib = speaker.data_plane_path
        assert old_fib is not None
        # Tear down every session: control plane loses all routes, the
        # FIB keeps the stale entry.
        for peer in list(speaker.sessions):
            speaker.on_session_down(peer)
        assert speaker.best is None
        assert speaker.data_plane_path == old_fib

    def test_fib_follows_withdrawal_without_rci(self, graph):
        net = make_network(graph, rci=False)
        speaker = net.speakers[70]
        for peer in list(speaker.sessions):
            speaker.on_session_down(peer)
        assert speaker.best is None
        assert speaker.data_plane_path is None


class TestSingleFailureProtection:
    """R-BGP's headline property: no transient problems under a single
    link failure (with RCI), evaluated end to end."""

    @pytest.mark.parametrize("link", [(90, 70), (90, 80), (70, 30), (80, 60)])
    def test_rci_no_transient_problems(self, graph, link):
        net = make_network(graph, rci=True, seed=4)
        initial = net.forwarding_state()
        net.fail_link(*link)
        net.run_to_convergence()
        plane = RBGPDataPlane(90, rci=True, graph=graph)
        report = analyze_transient_problems(
            net.trace,
            initial,
            plane,
            graph.ases,
            failed_links=frozenset({normalize_link(*link)}),
            min_duration=0.0,
        )
        assert report.affected_count == 0, report.affected
