"""STAMP invariants on generated Internet-like topologies.

These check the paper's structural claims at graph scale rather than on
the hand-built example: blue-path existence (the Lock chain guarantee),
valley-freeness of every selected route, and Theorem 4.1's downhill
disjointness — with the measured allowance for the merge-node wrinkle
documented in EXPERIMENTS.md (an AS holding both a locked blue and a
red customer route forwards both trees, so a small fraction of AS pairs
can share a downhill merge node).
"""

import pytest

from repro.stamp.network import STAMPConfig, STAMPNetwork
from repro.topology.paths import downhill_node_disjoint, is_valley_free
from repro.types import Color


@pytest.fixture(scope="module")
def converged(small_internet):
    graph, tiers = small_internet
    destination = next(
        asn for asn in tiers.stub if graph.is_multihomed(asn)
    )
    net = STAMPNetwork(graph, destination, STAMPConfig(seed=5))
    net.start()
    return graph, net, destination


class TestBluePathExistence:
    def test_blue_everywhere(self, converged):
        graph, net, _ = converged
        missing = [
            asn for asn in graph.ases if net.best_path(asn, Color.BLUE) is None
        ]
        assert not missing, f"ASes without blue paths: {missing}"

    def test_red_reaches_most_ases(self, converged):
        graph, net, _ = converged
        covered = sum(
            1 for asn in graph.ases if net.best_path(asn, Color.RED) is not None
        )
        # Paper 4.2: a red path exists everywhere iff one reaches a
        # tier-1; on well-connected graphs that is the common case.
        assert covered / len(graph) > 0.9

    def test_lock_chain_reaches_a_tier1(self, converged):
        graph, net, destination = converged
        # Walk the locked chain upward from the destination.
        current = destination
        seen = set()
        while not graph.is_tier1(current):
            assert current not in seen, "lock chain looped"
            seen.add(current)
            node = net.nodes[current]
            target = node.locked_blue_provider
            if target is None:
                providers = [
                    p for p in graph.providers(current) if p in node.blue.sessions
                ]
                assert len(providers) == 1, (current, providers)
                target = providers[0]
            current = target


class TestPathQuality:
    def test_all_paths_valley_free(self, converged):
        graph, net, _ = converged
        for asn in graph.ases:
            for color in Color:
                path = net.best_path(asn, color)
                if path is not None:
                    assert is_valley_free(graph, path), (asn, color, path)

    def test_theorem_41_holds_for_almost_all_ases(self, converged):
        graph, net, destination = converged
        violations = []
        total = 0
        for asn in graph.ases:
            if asn == destination:
                continue
            red = net.best_path(asn, Color.RED)
            blue = net.best_path(asn, Color.BLUE)
            if red is None or blue is None:
                continue
            total += 1
            if not downhill_node_disjoint(graph, red, blue):
                violations.append(asn)
        # Merge-node wrinkle: tolerate a small violation fraction, but
        # the theorem must hold for the vast majority.
        assert total > 0
        assert len(violations) / total < 0.1, violations


class TestPermissiveBlueMode:
    def test_permissive_mode_converges_with_blue_everywhere(self, small_internet):
        graph, tiers = small_internet
        destination = next(a for a in tiers.stub if graph.is_multihomed(a))
        net = STAMPNetwork(
            graph,
            destination,
            STAMPConfig(seed=5, permissive_blue=True),
        )
        net.start()
        for asn in graph.ases:
            assert net.best_path(asn, Color.BLUE) is not None

    def test_permissive_mode_never_reduces_red_coverage(self, small_internet):
        graph, tiers = small_internet
        destination = next(a for a in tiers.stub if graph.is_multihomed(a))
        strict = STAMPNetwork(graph, destination, STAMPConfig(seed=5))
        strict.start()
        permissive = STAMPNetwork(
            graph, destination, STAMPConfig(seed=5, permissive_blue=True)
        )
        permissive.start()
        red_strict = sum(
            1 for a in graph.ases if strict.best_path(a, Color.RED) is not None
        )
        red_permissive = sum(
            1 for a in graph.ases if permissive.best_path(a, Color.RED) is not None
        )
        assert red_permissive >= red_strict - len(graph) // 20
