"""Unit tests for STAMP node coordination (selective announcement)."""

import pytest

from repro.bgp.speaker import SpeakerConfig
from repro.sim.delays import FixedDelay
from repro.sim.engine import Engine
from repro.sim.timers import MRAIConfig
from repro.sim.transport import Transport
from repro.stamp.coloring import RandomBlueSelector
from repro.stamp.node import STAMPNode
from repro.topology.graph import ASGraph
from repro.types import Color


def build_node(graph, asn, *, permissive=False, seed=0):
    engine = Engine(seed=seed)
    transport = Transport(engine, FixedDelay(0.01))
    # Register sinks for all the node's neighbors so exports can flow.
    for nbr in graph.neighbors(asn):
        transport.register_receiver(nbr, lambda s, m: None, tag=Color.RED)
        transport.register_receiver(nbr, lambda s, m: None, tag=Color.BLUE)
    node = STAMPNode(
        asn,
        graph,
        engine,
        transport,
        speaker_config=SpeakerConfig(mrai=MRAIConfig(base=1.0)),
        selector=RandomBlueSelector(),
        permissive_blue=permissive,
    )
    return engine, node


@pytest.fixture
def multihomed_graph():
    """AS 1 with providers 2 and 3 (who have provider 4)."""
    graph = ASGraph()
    graph.add_c2p(1, 2)
    graph.add_c2p(1, 3)
    graph.add_c2p(2, 4)
    graph.add_c2p(3, 4)
    return graph


@pytest.fixture
def singlehomed_graph():
    graph = ASGraph()
    graph.add_c2p(1, 2)
    graph.add_c2p(2, 3)
    return graph


class TestOriginColoring:
    def test_origin_splits_colors_between_providers(self, multihomed_graph):
        engine, node = build_node(multihomed_graph, 1)
        node.originate()
        engine.run()
        target = node.locked_blue_provider
        assert target in (2, 3)
        other = 3 if target == 2 else 2
        blue_export = node.blue.export_for(target)
        assert blue_export is not None and blue_export[1] is True  # locked
        assert node.blue.export_for(other) is None
        red_export = node.red.export_for(other)
        assert red_export is not None and red_export[1] is False
        assert node.red.export_for(target) is None

    def test_single_homed_origin_sends_both_colors(self, singlehomed_graph):
        engine, node = build_node(singlehomed_graph, 1)
        node.originate()
        engine.run()
        blue_export = node.blue.export_for(2)
        red_export = node.red.export_for(2)
        assert blue_export is not None and blue_export[1] is True
        assert red_export is not None and red_export[1] is False

    def test_locked_target_stable_across_updates(self, multihomed_graph):
        engine, node = build_node(multihomed_graph, 1)
        node.originate()
        engine.run()
        first = node.locked_blue_provider
        node._refresh_providers  # no-op access; now trigger refresh
        node._refresh_providers(__import__("repro.types", fromlist=["EventType"]).EventType.NO_LOSS)
        assert node.locked_blue_provider == first

    def test_lock_moves_to_survivor_after_failure(self, multihomed_graph):
        engine, node = build_node(multihomed_graph, 1)
        node.originate()
        engine.run()
        target = node.locked_blue_provider
        survivor = 3 if target == 2 else 2
        node.on_session_down(target)
        engine.run()
        # Now effectively single-homed: the survivor gets both colors,
        # blue still carrying the Lock.
        blue_export = node.blue.export_for(survivor)
        assert blue_export is not None and blue_export[1] is True
        red_export = node.red.export_for(survivor)
        assert red_export is not None


class TestInstabilityFlags:
    def test_flags_start_clear(self, multihomed_graph):
        _, node = build_node(multihomed_graph, 1)
        assert not node.unstable[Color.RED]
        assert not node.unstable[Color.BLUE]

    def test_loss_sets_flag_and_clear_resets(self, multihomed_graph):
        from repro.bgp.messages import Announcement, Withdrawal

        engine, node = build_node(multihomed_graph, 1)
        node.red.on_message(2, Announcement(path=(2, 9)))
        engine.run()
        node.red.on_message(2, Withdrawal())
        engine.run()
        assert node.unstable[Color.RED]
        assert not node.unstable[Color.BLUE]
        node.clear_instability()
        assert not node.unstable[Color.RED]


class TestForwardingState:
    def test_state_contains_both_colors_and_flags(self, multihomed_graph):
        _, node = build_node(multihomed_graph, 1)
        state = node.forwarding_state()
        assert (1, Color.RED) in state
        assert (1, Color.BLUE) in state
        assert (1, ("unstable", Color.RED)) in state
