"""Tests for locked-blue-provider selection strategies."""

import random

from repro.stamp.coloring import IntelligentBlueSelector, RandomBlueSelector
from repro.topology.graph import ASGraph


def bottleneck_graph():
    """Provider 2 leads into a bottleneck; provider 3 is clean."""
    graph = ASGraph()
    graph.add_c2p(1, 2)
    graph.add_c2p(1, 3)
    graph.add_c2p(2, 6)
    graph.add_c2p(6, 7)
    graph.add_c2p(3, 8)
    graph.add_p2p(7, 8)
    return graph


class TestRandomSelector:
    def test_choice_is_among_providers(self):
        selector = RandomBlueSelector()
        rng = random.Random(0)
        for _ in range(20):
            assert selector.select(1, [2, 3], is_origin=True, rng=rng) in (2, 3)

    def test_uses_provided_rng(self):
        selector = RandomBlueSelector()
        a = selector.select(1, [2, 3, 4], is_origin=False, rng=random.Random(7))
        b = selector.select(1, [2, 3, 4], is_origin=False, rng=random.Random(7))
        assert a == b


class TestIntelligentSelector:
    def test_origin_picks_clean_provider(self):
        graph = bottleneck_graph()
        selector = IntelligentBlueSelector(graph)
        rng = random.Random(0)
        # Locking via 3 leaves the 2-side free for red: best choice.
        # (Both sides are symmetric in goodness here only if the
        # bottleneck does not matter; verify against phi directly.)
        from repro.analysis.phi import best_blue_provider

        expected = best_blue_provider(graph, 1)
        assert selector.select(1, [2, 3], is_origin=True, rng=rng) == expected

    def test_non_origin_falls_back_to_random(self):
        graph = bottleneck_graph()
        selector = IntelligentBlueSelector(graph)
        picks = {
            selector.select(6, [7], is_origin=False, rng=random.Random(i))
            for i in range(5)
        }
        assert picks == {7}

    def test_choice_restricted_to_live_providers(self):
        graph = bottleneck_graph()
        selector = IntelligentBlueSelector(graph)
        # If the statically-best provider is not offered (session down),
        # the selector must pick among the live ones.
        pick = selector.select(1, [2], is_origin=True, rng=random.Random(0))
        assert pick == 2

    def test_cache_is_stable(self):
        graph = bottleneck_graph()
        selector = IntelligentBlueSelector(graph)
        rng = random.Random(0)
        first = selector.select(1, [2, 3], is_origin=True, rng=rng)
        second = selector.select(1, [2, 3], is_origin=True, rng=rng)
        assert first == second
